//! # cachecraft — reconstructed caching for GPU memory protection
//!
//! A from-scratch reproduction of *CacheCraft: Enhancing GPU Performance
//! under Memory Protection through Reconstructed Caching* (MICRO 2024).
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`ecc`] — ECC codecs (SEC-DED, Reed–Solomon, CRC, implicit memory
//!   tagging) and inline-ECC memory layouts.
//! * [`sim`] — a trace-driven, cycle-approximate GPU memory-subsystem
//!   simulator (SIMT cores, sectored L1/L2, crossbar, FR-FCFS controllers,
//!   GDDR6/HBM2 DRAM timing).
//! * [`workloads`] — deterministic kernel-trace generators spanning the
//!   locality spectrum of GPU benchmark suites.
//! * [`schemes`] — the protection schemes: ECC-off, naive inline ECC, a
//!   dedicated ECC cache, and CacheCraft itself, plus the reliability
//!   pipeline and storage accounting.
//! * [`harness`] — the experiment harness regenerating every table and
//!   figure of the evaluation.
//! * [`telemetry`] — observability probes: latency histograms,
//!   cycle-resolved time-series, Chrome-trace export, run manifests.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use cachecraft::schemes::factory::{run_scheme, SchemeKind};
//! use cachecraft::sim::config::GpuConfig;
//! use cachecraft::workloads::{SizeClass, Workload};
//!
//! let cfg = GpuConfig::tiny();
//! let trace = Workload::VecAdd.generate(SizeClass::Tiny, 42);
//! let stats = run_scheme(&cfg, SchemeKind::NoProtection, &trace);
//! assert!(!stats.timed_out);
//! ```

#![warn(missing_docs)]

pub use ccraft_core as schemes;
pub use ccraft_ecc as ecc;
pub use ccraft_harness as harness;
pub use ccraft_sim as sim;
pub use ccraft_telemetry as telemetry;
pub use ccraft_workloads as workloads;
