//! DRAM channel model: address mapping, bank/row state, and timing.
//!
//! The model is *cycle-approximate*: it enforces the first-order GDDR/HBM
//! constraints that memory-system studies depend on — row activate /
//! precharge / CAS latencies, `tRAS` minimum row-open time, write recovery,
//! per-bank command serialization, a shared bidirectional data bus with
//! read↔write turnaround penalties, and all-bank refresh — while omitting
//! second-order constraints (`tFAW`, bank-group `tCCD_L/S` distinction,
//! per-rank structure). DESIGN.md §5 records these approximations.
//!
//! A channel exposes one operation, [`DramChannel::try_issue`]: given a
//! request and the current cycle, either commit it (returning its data
//! completion time and the row-buffer outcome) or report that it cannot
//! start this cycle. The FR-FCFS controller in [`crate::mem_ctrl`] drives
//! this interface.

use crate::config::{DramTiming, MemConfig};
use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// How channel-local atom indices map onto (bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapOrder {
    /// Row-major: consecutive atoms fill a DRAM row, banks interleave at
    /// row granularity (`[row][bank][col]`). Streams enjoy long row hits;
    /// bank-level parallelism comes from concurrent streams. This is the
    /// layout CacheCraft's row co-location (C1) assumes.
    RoBaCo,
    /// Fine bank interleave: banks rotate every 128-byte line
    /// (`[row][colhi][bank][collo]`). Maximizes single-stream bank
    /// parallelism at the cost of row locality. Used as an ablation.
    RoCoBa,
}

/// Decomposed DRAM coordinates of one atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Bank index within the channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column (atom offset within the row).
    pub col: u64,
}

/// Maps channel-local atoms to DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAddressMap {
    order: MapOrder,
    banks: u32,
    row_atoms: u64,
}

impl DramAddressMap {
    /// Atoms per line used by the fine-interleave order.
    const LINE_ATOMS: u64 = 4;

    /// Creates a map.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `row_atoms` is not a positive multiple
    /// of 4.
    pub fn new(order: MapOrder, banks: u32, row_atoms: u64) -> Self {
        assert!(banks > 0, "banks must be positive");
        assert!(
            row_atoms >= Self::LINE_ATOMS && row_atoms.is_multiple_of(Self::LINE_ATOMS),
            "row_atoms must be a positive multiple of 4"
        );
        DramAddressMap {
            order,
            banks,
            row_atoms,
        }
    }

    /// Permutation-based bank hashing (Zhang et al., MICRO'00): XOR the
    /// low row bits into the bank index. Bijective per row; it breaks the
    /// pathological case where same-aligned arrays land on the same bank
    /// in lock-step. All real GPU memory controllers hash banks this way.
    fn hash_bank(&self, bank_raw: u64, row: u64) -> u32 {
        if self.banks.is_power_of_two() {
            ((bank_raw ^ row) & (self.banks as u64 - 1)) as u32
        } else {
            // Non-power-of-two bank counts skip hashing (keeps bijectivity).
            (bank_raw % self.banks as u64) as u32
        }
    }

    /// Decomposes an atom index.
    pub fn decompose(&self, atom: u64) -> DramCoord {
        match self.order {
            MapOrder::RoBaCo => {
                let col = atom % self.row_atoms;
                let bank_raw = (atom / self.row_atoms) % self.banks as u64;
                let row = atom / (self.row_atoms * self.banks as u64);
                DramCoord {
                    bank: self.hash_bank(bank_raw, row),
                    row,
                    col,
                }
            }
            MapOrder::RoCoBa => {
                let lo = atom % Self::LINE_ATOMS;
                let rest = atom / Self::LINE_ATOMS;
                let bank_raw = rest % self.banks as u64;
                let rest = rest / self.banks as u64;
                let cols_hi = self.row_atoms / Self::LINE_ATOMS;
                let col = (rest % cols_hi) * Self::LINE_ATOMS + lo;
                let row = rest / cols_hi;
                DramCoord {
                    bank: self.hash_bank(bank_raw, row),
                    row,
                    col,
                }
            }
        }
    }
}

/// Row-buffer outcome of an access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank had no open row (first access or after refresh).
    Empty,
    /// A different row was open and had to be precharged.
    Conflict,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next command.
    ready_at: Cycle,
    /// When the currently open row was activated (for tRAS).
    row_opened_at: Cycle,
    /// End of the last write burst to this bank (for tWR).
    last_write_end: Cycle,
}

impl Bank {
    fn new() -> Self {
        Bank {
            open_row: None,
            ready_at: 0,
            row_opened_at: 0,
            last_write_end: 0,
        }
    }
}

/// Direction of the last data-bus transfer, for turnaround penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDir {
    Idle,
    Read,
    Write,
}

/// Result of a successful issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueInfo {
    /// Cycle at which the last data beat is on the bus (read data arrives /
    /// write completes).
    pub data_ready: Cycle,
    /// Row-buffer outcome.
    pub row_outcome: RowOutcome,
}

/// One DRAM channel: banks plus the shared data bus.
#[derive(Debug, Clone)]
pub struct DramChannel {
    map: DramAddressMap,
    timing: DramTiming,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    bus_dir: BusDir,
    next_refresh: Cycle,
    /// Oracle state: last `tick_refresh` cycle. The lazy refresh catch-up
    /// is only correct for non-decreasing `now`; the oracle enforces the
    /// documented precondition.
    #[cfg(feature = "check-invariants")]
    last_refresh_tick: Cycle,
    /// Row outcome counters: hit / empty / conflict.
    pub row_hits: u64,
    /// Accesses that found the bank with no open row.
    pub row_empties: u64,
    /// Accesses that required a precharge of another row.
    pub row_conflicts: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Row activations (Empty and Conflict accesses both activate).
    pub activates: u64,
    /// Row precharges (Conflict accesses and refresh-closed rows).
    pub precharges: u64,
}

impl DramChannel {
    /// Creates a channel from the memory configuration.
    pub fn new(mem: &MemConfig, order: MapOrder) -> Self {
        let map = DramAddressMap::new(order, mem.banks, mem.row_atoms());
        DramChannel {
            map,
            timing: mem.timing,
            banks: vec![Bank::new(); mem.banks as usize],
            bus_free_at: 0,
            bus_dir: BusDir::Idle,
            next_refresh: if mem.timing.t_refi == 0 {
                Cycle::MAX
            } else {
                mem.timing.t_refi as Cycle
            },
            #[cfg(feature = "check-invariants")]
            last_refresh_tick: 0,
            row_hits: 0,
            row_empties: 0,
            row_conflicts: 0,
            refreshes: 0,
            activates: 0,
            precharges: 0,
        }
    }

    /// The address map in use.
    pub fn address_map(&self) -> DramAddressMap {
        self.map
    }

    /// Peeks at the row-buffer outcome the access *would* have, without
    /// changing any state. Used by FR-FCFS to prefer row hits.
    pub fn peek_outcome(&self, atom: u64) -> RowOutcome {
        self.row_outcome_at(self.map.decompose(atom))
    }

    /// [`peek_outcome`](Self::peek_outcome) for a pre-decomposed
    /// coordinate: the memory controller caches each request's
    /// [`DramCoord`] at enqueue time so the per-cycle FR-FCFS scan does
    /// no address arithmetic.
    pub fn row_outcome_at(&self, coord: DramCoord) -> RowOutcome {
        match self.banks[coord.bank as usize].open_row {
            Some(r) if r == coord.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Empty,
        }
    }

    /// Performs pending refresh bookkeeping. Must be called with a
    /// monotonically non-decreasing `now` before issuing in that cycle.
    pub fn tick_refresh(&mut self, now: Cycle) {
        #[cfg(feature = "check-invariants")]
        {
            assert!(
                now >= self.last_refresh_tick,
                "invariant violated: tick_refresh called with non-monotonic \
                 now ({now} < {})",
                self.last_refresh_tick
            );
            self.last_refresh_tick = now;
        }
        while now >= self.next_refresh {
            let start = self.next_refresh;
            let end = start + self.timing.t_rfc as Cycle;
            for bank in &mut self.banks {
                bank.ready_at = bank.ready_at.max(end);
                if bank.open_row.take().is_some() {
                    self.precharges += 1;
                }
            }
            self.refreshes += 1;
            self.next_refresh += self.timing.t_refi as Cycle;
        }
    }

    /// Attempts to issue the access *this cycle*. On success, commits bank
    /// and bus state and returns the completion time; on failure (bank or
    /// bus constraint not yet met) returns `None` and changes nothing.
    pub fn try_issue(&mut self, atom: u64, is_write: bool, now: Cycle) -> Option<IssueInfo> {
        self.try_issue_at(self.map.decompose(atom), is_write, now)
    }

    /// [`try_issue`](Self::try_issue) for a pre-decomposed coordinate
    /// (see [`row_outcome_at`](Self::row_outcome_at)).
    pub fn try_issue_at(
        &mut self,
        coord: DramCoord,
        is_write: bool,
        now: Cycle,
    ) -> Option<IssueInfo> {
        let t = self.timing;
        let bank = &self.banks[coord.bank as usize];
        if bank.ready_at > now {
            return None;
        }
        let outcome = match bank.open_row {
            Some(r) if r == coord.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Empty,
        };
        // Command-to-data latency for this access.
        let col_delay: Cycle = match outcome {
            RowOutcome::Hit => 0,
            RowOutcome::Empty => t.t_rcd as Cycle,
            RowOutcome::Conflict => {
                // Precharge legality: tRAS since activate, tWR since the
                // last write burst to this bank.
                let pre_ok = (bank.row_opened_at + t.t_ras as Cycle)
                    .max(bank.last_write_end + t.t_wr as Cycle);
                if pre_ok > now {
                    return None;
                }
                (t.t_rp + t.t_rcd) as Cycle
            }
        };
        let cas = t.cas as Cycle;
        let data_start = now + col_delay + cas;
        // Bus availability, including direction turnaround.
        let dir = if is_write {
            BusDir::Write
        } else {
            BusDir::Read
        };
        let turnaround: Cycle = match (self.bus_dir, dir) {
            (BusDir::Read, BusDir::Write) => t.t_rtw as Cycle,
            (BusDir::Write, BusDir::Read) => t.t_wtr as Cycle,
            _ => 0,
        };
        if self.bus_free_at + turnaround > data_start {
            return None;
        }
        let data_end = data_start + t.burst_cycles as Cycle;
        // Oracle: re-assert protocol legality of the issue we are about to
        // commit. These are the DDR constraints the mirror
        // (`issue_blocked_until`) reasons about; an issue slipping through
        // with one unmet means the model itself is broken.
        #[cfg(feature = "check-invariants")]
        {
            assert!(
                bank.ready_at <= now,
                "invariant violated: issuing to bank {} before ready_at \
                 ({} > {now})",
                coord.bank,
                bank.ready_at
            );
            match outcome {
                RowOutcome::Conflict => {
                    assert!(
                        now >= bank.row_opened_at + t.t_ras as Cycle,
                        "invariant violated: precharge before tRAS elapsed \
                         (bank {}, cycle {now})",
                        coord.bank
                    );
                    assert!(
                        now >= bank.last_write_end + t.t_wr as Cycle,
                        "invariant violated: precharge before tWR elapsed \
                         (bank {}, cycle {now})",
                        coord.bank
                    );
                }
                RowOutcome::Empty => {
                    assert_eq!(
                        col_delay, t.t_rcd as Cycle,
                        "invariant violated: activate without tRCD delay"
                    );
                }
                RowOutcome::Hit => {}
            }
            assert!(
                self.bus_free_at + turnaround <= data_start,
                "invariant violated: data burst overlaps bus occupancy \
                 (bus free at {} + turnaround {turnaround} > data start \
                  {data_start})",
                self.bus_free_at
            );
            assert!(
                now < self.next_refresh,
                "invariant violated: issue at {now} with stale refresh \
                 bookkeeping (refresh window opened at {})",
                self.next_refresh
            );
        }
        // Commit.
        let bank = &mut self.banks[coord.bank as usize];
        match outcome {
            RowOutcome::Hit => {
                self.row_hits += 1;
            }
            RowOutcome::Empty => {
                self.row_empties += 1;
                self.activates += 1;
                bank.row_opened_at = now;
                bank.open_row = Some(coord.row);
            }
            RowOutcome::Conflict => {
                self.row_conflicts += 1;
                self.precharges += 1;
                self.activates += 1;
                bank.row_opened_at = now + t.t_rp as Cycle;
                bank.open_row = Some(coord.row);
            }
        }
        // The bank can take its next column command after this access'
        // command sequence plus one burst slot (serializes same-bank
        // columns at burst rate).
        bank.ready_at = now + col_delay + t.burst_cycles as Cycle;
        if is_write {
            bank.last_write_end = data_end;
        }
        self.bus_free_at = data_end;
        self.bus_dir = dir;
        Some(IssueInfo {
            data_ready: data_end,
            row_outcome: outcome,
        })
    }

    /// The cycle the next refresh window opens (`Cycle::MAX` when refresh
    /// is disabled). Refresh is the only event that changes bank state
    /// without an issue, so scan-skipping bounds must be capped here.
    pub fn next_refresh_at(&self) -> Cycle {
        self.next_refresh
    }

    /// Earliest cycle at which [`try_issue_at`](Self::try_issue_at) for
    /// this access could stop failing on its *currently first-failing*
    /// constraint, assuming no intervening issue or refresh changes
    /// channel state. Mirrors `try_issue_at`'s checks exactly — the two
    /// must stay in sync; the memory controller uses the minimum over its
    /// scheduling window to skip provably-futile scans.
    pub fn issue_blocked_until(&self, coord: DramCoord, is_write: bool, now: Cycle) -> Cycle {
        let t = self.timing;
        let bank = &self.banks[coord.bank as usize];
        if bank.ready_at > now {
            return bank.ready_at;
        }
        let outcome = match bank.open_row {
            Some(r) if r == coord.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Empty,
        };
        let col_delay: Cycle = match outcome {
            RowOutcome::Hit => 0,
            RowOutcome::Empty => t.t_rcd as Cycle,
            RowOutcome::Conflict => {
                let pre_ok = (bank.row_opened_at + t.t_ras as Cycle)
                    .max(bank.last_write_end + t.t_wr as Cycle);
                if pre_ok > now {
                    return pre_ok;
                }
                (t.t_rp + t.t_rcd) as Cycle
            }
        };
        let cas = t.cas as Cycle;
        let dir = if is_write {
            BusDir::Write
        } else {
            BusDir::Read
        };
        let turnaround: Cycle = match (self.bus_dir, dir) {
            (BusDir::Read, BusDir::Write) => t.t_rtw as Cycle,
            (BusDir::Write, BusDir::Read) => t.t_wtr as Cycle,
            _ => 0,
        };
        if self.bus_free_at + turnaround > now + col_delay + cas {
            // First cycle n with bus_free_at + turnaround <= n + col_delay
            // + cas; no underflow because the guard implies the sum on the
            // left exceeds col_delay + cas.
            return self.bus_free_at + turnaround - col_delay - cas;
        }
        // No constraint blocks: issueable this cycle.
        now
    }

    /// Total accesses classified so far.
    pub fn total_accesses(&self) -> u64 {
        self.row_hits + self.row_empties + self.row_conflicts
    }

    /// Row-hit rate in [0, 1]; 1.0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            1.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn channel() -> DramChannel {
        // tiny(): t_rcd=5, t_rp=5, t_ras=12, cas=5, burst=1, refresh off,
        // 4 banks, 64-atom rows.
        DramChannel::new(&GpuConfig::tiny().mem, MapOrder::RoBaCo)
    }

    #[test]
    fn robaco_decomposition() {
        let map = DramAddressMap::new(MapOrder::RoBaCo, 4, 64);
        assert_eq!(
            map.decompose(0),
            DramCoord {
                bank: 0,
                row: 0,
                col: 0
            }
        );
        assert_eq!(
            map.decompose(63),
            DramCoord {
                bank: 0,
                row: 0,
                col: 63
            }
        );
        assert_eq!(
            map.decompose(64),
            DramCoord {
                bank: 1,
                row: 0,
                col: 0
            }
        );
        // Row 1: bank hashing XORs the row into the raw bank index.
        assert_eq!(
            map.decompose(64 * 4),
            DramCoord {
                bank: 1,
                row: 1,
                col: 0
            }
        );
        assert_eq!(
            map.decompose(64 * 4 + 65),
            DramCoord {
                bank: 0,
                row: 1,
                col: 1
            }
        );
    }

    #[test]
    fn rocoba_decomposition() {
        let map = DramAddressMap::new(MapOrder::RoCoBa, 4, 64);
        // Atoms 0..4 in bank 0, atoms 4..8 in bank 1, ...
        assert_eq!(map.decompose(0).bank, 0);
        assert_eq!(map.decompose(3).bank, 0);
        assert_eq!(map.decompose(4).bank, 1);
        assert_eq!(map.decompose(15).bank, 3);
        assert_eq!(map.decompose(16).bank, 0);
        assert_eq!(map.decompose(16).col, 4);
        // Row increments after banks * row_atoms atoms.
        assert_eq!(map.decompose(4 * 64).row, 1);
    }

    #[test]
    fn decomposition_is_injective_within_capacity() {
        for order in [MapOrder::RoBaCo, MapOrder::RoCoBa] {
            let map = DramAddressMap::new(order, 4, 64);
            let mut seen = crate::fxmap::FxHashSet::default();
            for atom in 0..(4 * 64 * 8) {
                let c = map.decompose(atom);
                assert!(c.col < 64);
                assert!(c.bank < 4);
                assert!(
                    seen.insert((c.bank, c.row, c.col)),
                    "{order:?}: collision at {atom}"
                );
            }
        }
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut ch = channel();
        let info = ch.try_issue(0, false, 0).expect("issue");
        assert_eq!(info.row_outcome, RowOutcome::Empty);
        // tRCD + CAS + burst = 5 + 5 + 1.
        assert_eq!(info.data_ready, 11);
    }

    #[test]
    fn second_access_same_row_is_hit() {
        let mut ch = channel();
        ch.try_issue(0, false, 0).unwrap();
        // Bank busy until col_delay + burst = 6; bus busy until 11.
        let info = ch.try_issue(1, false, 6).expect("issue");
        assert_eq!(info.row_outcome, RowOutcome::Hit);
        // data at 6 + CAS + burst = 12 (pipelines right behind first burst).
        assert_eq!(info.data_ready, 12);
    }

    #[test]
    fn row_conflict_waits_for_tras() {
        let mut ch = channel();
        ch.try_issue(0, false, 0).unwrap(); // opens row 0 of bank 0 at t=0
                                            // Same hashed bank, different row: atom 320 = row 1, raw bank 1,
                                            // hashed bank 1^1 = 0 — conflicts with atom 0's bank.
                                            // tRAS=12: precharge not allowed before cycle 12.
        assert!(ch.try_issue(320, false, 6).is_none());
        let info = ch.try_issue(320, false, 12).expect("issue");
        assert_eq!(info.row_outcome, RowOutcome::Conflict);
        // tRP + tRCD + CAS + burst = 5+5+5+1 after t=12.
        assert_eq!(info.data_ready, 12 + 16);
    }

    #[test]
    fn different_banks_overlap() {
        let mut ch = channel();
        ch.try_issue(0, false, 0).unwrap(); // bank 0
                                            // Bank 1 (atom 64) can activate in parallel; only bus conflicts.
        let info = ch.try_issue(64, false, 1).expect("issue");
        assert_eq!(info.row_outcome, RowOutcome::Empty);
        assert_eq!(info.data_ready, 1 + 5 + 5 + 1);
    }

    #[test]
    fn bus_conflict_blocks_issue() {
        let mut ch = channel();
        // Two banks, data would collide on the bus at the same cycle.
        ch.try_issue(0, false, 0).unwrap(); // data 10..11
                                            // bank 1 at now=0: data would start at 10 too -> bus_free 11 > 10.
        assert!(ch.try_issue(64, false, 0).is_none());
        assert!(ch.try_issue(64, false, 1).is_some());
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut ch = channel();
        ch.try_issue(0, true, 0).unwrap(); // write: data 10..11, dir=Write
                                           // Read on another bank at now=5: data_start = 5+5+5 = 15,
                                           // needs bus_free(11) + tWTR(3) = 14 <= 15: OK.
        let info = ch.try_issue(64, false, 5).expect("issue");
        assert_eq!(info.data_ready, 16);
        // Immediately after, same-direction has no extra penalty.
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut ch = channel();
        ch.try_issue(0, true, 0).unwrap(); // write ends at 11
                                           // Conflict in same bank: precharge needs tRAS(12) and
                                           // last_write_end(11) + tWR(6) = 17.
        assert!(ch.try_issue(320, false, 12).is_none());
        assert!(ch.try_issue(320, false, 16).is_none());
        assert!(ch.try_issue(320, false, 17).is_some());
    }

    #[test]
    fn refresh_closes_rows_and_stalls_banks() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.timing.t_refi = 100;
        cfg.mem.timing.t_rfc = 20;
        let mut ch = DramChannel::new(&cfg.mem, MapOrder::RoBaCo);
        ch.try_issue(0, false, 0).unwrap();
        assert_eq!(ch.peek_outcome(1), RowOutcome::Hit);
        ch.tick_refresh(100);
        assert_eq!(ch.refreshes, 1);
        // Row closed by refresh; bank stalled until 120.
        assert_eq!(ch.peek_outcome(1), RowOutcome::Empty);
        assert!(ch.try_issue(1, false, 110).is_none());
        assert!(ch.try_issue(1, false, 120).is_some());
    }

    #[test]
    fn peek_matches_issue_outcome() {
        let mut ch = channel();
        assert_eq!(ch.peek_outcome(0), RowOutcome::Empty);
        ch.try_issue(0, false, 0).unwrap();
        assert_eq!(ch.peek_outcome(1), RowOutcome::Hit);
        assert_eq!(ch.peek_outcome(320), RowOutcome::Conflict);
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = channel();
        ch.try_issue(0, false, 0).unwrap();
        let mut now = 6;
        ch.try_issue(1, false, now).unwrap();
        now = 20;
        ch.try_issue(320, false, now).unwrap();
        assert_eq!(ch.row_empties, 1);
        assert_eq!(ch.row_hits, 1);
        assert_eq!(ch.row_conflicts, 1);
        assert!((ch.row_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        // Row-state transitions: empty and conflict both activate, only
        // the conflict precharged.
        assert_eq!(ch.activates, 2);
        assert_eq!(ch.precharges, 1);
    }

    #[test]
    fn refresh_precharges_open_rows() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.timing.t_refi = 100;
        cfg.mem.timing.t_rfc = 20;
        let mut ch = DramChannel::new(&cfg.mem, MapOrder::RoBaCo);
        ch.try_issue(0, false, 0).unwrap(); // opens one row
        ch.tick_refresh(100);
        assert_eq!(ch.precharges, 1);
        // A second refresh with no rows open precharges nothing.
        ch.tick_refresh(200);
        assert_eq!(ch.precharges, 1);
    }
}
