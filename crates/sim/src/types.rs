//! Fundamental address and identifier types shared across the simulator.
//!
//! The simulator distinguishes three address spaces, and mixing them up is
//! the classic source of silent simulation bugs, so each gets its own type:
//!
//! * [`LogicalAtom`] — a software-visible global index of one 32-byte atom.
//!   Traces are expressed in this space.
//! * [`PhysLoc`] — a `(channel, channel-local physical atom)` pair, produced
//!   by the protection scheme's address mapping. The caches, crossbar and
//!   memory controllers all operate in this space; channel-local physical
//!   indices include inline-ECC carve-outs.
//! * DRAM geometry (bank/row/column) — derived from `PhysLoc` by
//!   [`crate::dram::DramAddressMap`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation time in core-clock cycles.
pub type Cycle = u64;

/// Bytes per atom — the DRAM access granularity and cache sector size.
pub const ATOM_BYTES: u64 = 32;

/// Atoms per 128-byte cache line.
pub const ATOMS_PER_LINE: u64 = 4;

/// A software-visible global 32-byte-atom index (dense, no ECC holes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct LogicalAtom(pub u64);

impl LogicalAtom {
    /// The atom containing the given logical byte address.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> Self {
        LogicalAtom(addr / ATOM_BYTES)
    }

    /// First byte address of this atom.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 * ATOM_BYTES
    }
}

impl fmt::Display for LogicalAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A channel-local *physical* atom location: the address space the memory
/// controllers and L2 slices operate in. Physical indices include
/// inline-ECC atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysLoc {
    /// Memory channel / L2 slice index.
    pub channel: u16,
    /// Channel-local physical atom index.
    pub atom: u64,
}

impl PhysLoc {
    /// Creates a location.
    #[inline]
    pub fn new(channel: u16, atom: u64) -> Self {
        PhysLoc { channel, atom }
    }

    /// The 128-byte line this atom belongs to (channel-local line index).
    #[inline]
    pub fn line(self) -> u64 {
        self.atom / ATOMS_PER_LINE
    }

    /// Sector slot within the line (0..4).
    #[inline]
    pub fn sector_in_line(self) -> usize {
        (self.atom % ATOMS_PER_LINE) as usize
    }
}

impl fmt::Display for PhysLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}:{:#x}", self.channel, self.atom)
    }
}

/// Identifier of a streaming multiprocessor.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct SmId(pub u16);

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM{}", self.0)
    }
}

/// Warp index local to one SM.
pub type WarpIdx = u16;

/// Kind of memory access carried through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load; the requesting warp blocks until data returns.
    Read,
    /// A store. `full` marks stores that overwrite the entire 32-byte atom
    /// (no fetch-on-write needed).
    Write {
        /// Whether the store covers the whole atom.
        full: bool,
    },
}

impl AccessKind {
    /// `true` for either write flavour.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write { .. })
    }
}

/// Classification of DRAM transactions for traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Demand or fetch-on-write data read.
    DataRead,
    /// Data write-back.
    DataWrite,
    /// ECC atom read (demand-fill verify or read-modify-write).
    EccRead,
    /// ECC atom write.
    EccWrite,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::DataRead,
        TrafficClass::DataWrite,
        TrafficClass::EccRead,
        TrafficClass::EccWrite,
    ];

    /// Index of this class in [`TrafficClass::ALL`] (the enum is declared
    /// in `ALL` order, so this is just the discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` for the two ECC classes.
    pub fn is_ecc(self) -> bool {
        matches!(self, TrafficClass::EccRead | TrafficClass::EccWrite)
    }

    /// `true` for the two read classes.
    pub fn is_read(self) -> bool {
        matches!(self, TrafficClass::DataRead | TrafficClass::EccRead)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::DataRead => "data-read",
            TrafficClass::DataWrite => "data-write",
            TrafficClass::EccRead => "ecc-read",
            TrafficClass::EccWrite => "ecc-write",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_atom_byte_math() {
        assert_eq!(LogicalAtom::from_byte_addr(0), LogicalAtom(0));
        assert_eq!(LogicalAtom::from_byte_addr(31), LogicalAtom(0));
        assert_eq!(LogicalAtom::from_byte_addr(32), LogicalAtom(1));
        assert_eq!(LogicalAtom(3).byte_addr(), 96);
    }

    #[test]
    fn phys_loc_line_geometry() {
        let loc = PhysLoc::new(2, 13);
        assert_eq!(loc.line(), 3);
        assert_eq!(loc.sector_in_line(), 1);
        assert_eq!(PhysLoc::new(0, 0).sector_in_line(), 0);
        assert_eq!(PhysLoc::new(0, 7).line(), 1);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write { full: true }.is_write());
        assert!(AccessKind::Write { full: false }.is_write());
    }

    #[test]
    fn traffic_class_predicates() {
        assert!(TrafficClass::EccRead.is_ecc());
        assert!(TrafficClass::EccWrite.is_ecc());
        assert!(!TrafficClass::DataRead.is_ecc());
        assert!(TrafficClass::DataRead.is_read());
        assert!(TrafficClass::EccRead.is_read());
        assert!(!TrafficClass::DataWrite.is_read());
        assert_eq!(TrafficClass::ALL.len(), 4);
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(LogicalAtom(255).to_string(), "L0xff");
        assert_eq!(PhysLoc::new(1, 16).to_string(), "ch1:0x10");
        assert_eq!(SmId(3).to_string(), "SM3");
        assert_eq!(TrafficClass::EccWrite.to_string(), "ecc-write");
    }
}
