//! Aggregate simulation results.
//!
//! [`SimStats`] is the single artifact a simulation run produces: cycle
//! count, throughput, cache behaviour, DRAM traffic broken down by
//! [`TrafficClass`], row-buffer locality, and the protection scheme's own
//! counters. It is `serde`-serializable so the experiment harness can emit
//! machine-readable results.

use crate::protection::ProtectionStats;
use crate::types::{Cycle, TrafficClass, ATOM_BYTES};
use ccraft_telemetry::{Histogram, Timeline};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Complete results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Kernel name.
    pub kernel: String,
    /// Protection scheme name.
    pub scheme: String,
    /// Total simulated cycles (including the end-of-kernel flush).
    pub cycles: Cycle,
    /// Cycles until the last warp retired (excludes the flush tail).
    pub exec_cycles: Cycle,
    /// `true` if the run hit the cycle limit before completing.
    pub timed_out: bool,
    /// Trace ops retired.
    pub ops: u64,
    /// Total warp memory accesses issued (post-coalescing).
    pub accesses: u64,
    /// L1 hits/misses/writes summed over SMs.
    pub l1_read_hits: u64,
    /// L1 read misses.
    pub l1_read_misses: u64,
    /// L2 read hits summed over slices.
    pub l2_read_hits: u64,
    /// L2 read misses.
    pub l2_read_misses: u64,
    /// L2 demand fills completed.
    pub l2_fills: u64,
    /// Data write-backs from L2 to DRAM.
    pub l2_writebacks: u64,
    /// DRAM transactions per class (see [`TrafficClass::ALL`] order).
    pub dram: [u64; 4],
    /// DRAM row-buffer hits / empties / conflicts.
    pub row_hits: u64,
    /// Row-empty accesses.
    pub row_empties: u64,
    /// Row conflicts.
    pub row_conflicts: u64,
    /// All-bank refresh operations across channels.
    pub refreshes: u64,
    /// Mean DRAM read latency (enqueue to data), cycles.
    // lint: allow(float-stats) reason=derived once at end of run from integer latency sums; never accumulated on the hot path
    pub mean_read_latency: f64,
    /// Protection-scheme counters.
    pub protection: ProtectionStats,
    /// DRAM read-latency histogram, merged over channels. Only present
    /// when the run was telemetry-enabled; `None` serializes to nothing,
    /// keeping disabled-run output bit-identical to earlier versions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency_hist: Option<Histogram>,
    /// Cycle-resolved epoch time-series. Only present when the run was
    /// telemetry-enabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeline: Option<Timeline>,
    /// In-situ fault-injection counters. Only present when the run was
    /// configured with a [`crate::faults::FaultConfig`]; absent (and
    /// serialized to nothing) otherwise, keeping injection-free output
    /// bit-identical to earlier versions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<crate::faults::FaultStats>,
}

impl SimStats {
    /// Instructions (trace ops) per cycle over the execution phase — the
    /// throughput metric used for "normalized performance" figures.
    pub fn ipc(&self) -> f64 {
        if self.exec_cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.exec_cycles as f64
        }
    }

    /// DRAM transactions of one class.
    pub fn dram_count(&self, class: TrafficClass) -> u64 {
        self.dram[class.index()]
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.iter().sum::<u64>() * ATOM_BYTES
    }

    /// ECC share of total DRAM traffic, in [0, 1].
    pub fn ecc_traffic_fraction(&self) -> f64 {
        let total: u64 = self.dram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let ecc = self.dram_count(TrafficClass::EccRead) + self.dram_count(TrafficClass::EccWrite);
        ecc as f64 / total as f64
    }

    /// DRAM row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_empties + self.row_conflicts;
        if total == 0 {
            1.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// L2 read hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_read_hits + self.l2_read_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_read_hits as f64 / total as f64
        }
    }

    /// L1 read hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_read_hits + self.l1_read_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_read_hits as f64 / total as f64
        }
    }

    /// Achieved DRAM bandwidth in bytes per cycle.
    pub fn dram_bw_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes() as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} / {}: {} cycles (exec {}), IPC {:.3}{}",
            self.kernel,
            self.scheme,
            self.cycles,
            self.exec_cycles,
            self.ipc(),
            if self.timed_out { " [TIMED OUT]" } else { "" }
        )?;
        writeln!(
            f,
            "  L1 hit {:.1}%  L2 hit {:.1}%  row hit {:.1}%  mean rd lat {:.0}",
            100.0 * self.l1_hit_rate(),
            100.0 * self.l2_hit_rate(),
            100.0 * self.row_hit_rate(),
            self.mean_read_latency
        )?;
        write!(
            f,
            "  DRAM: dR {} dW {} eR {} eW {} ({:.1}% ECC, {:.1} B/cyc)",
            self.dram[0],
            self.dram[1],
            self.dram[2],
            self.dram[3],
            100.0 * self.ecc_traffic_fraction(),
            self.dram_bw_bytes_per_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            kernel: "k".into(),
            scheme: "s".into(),
            cycles: 1000,
            exec_cycles: 800,
            timed_out: false,
            ops: 400,
            accesses: 1200,
            l1_read_hits: 600,
            l1_read_misses: 400,
            l2_read_hits: 300,
            l2_read_misses: 100,
            l2_fills: 100,
            l2_writebacks: 50,
            dram: [100, 50, 20, 10],
            row_hits: 120,
            row_empties: 30,
            row_conflicts: 30,
            refreshes: 4,
            mean_read_latency: 75.0,
            protection: ProtectionStats::default(),
            latency_hist: None,
            timeline: None,
            faults: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(s.dram_count(TrafficClass::DataRead), 100);
        assert_eq!(s.dram_count(TrafficClass::EccWrite), 10);
        assert_eq!(s.dram_bytes(), 180 * 32);
        assert!((s.ecc_traffic_fraction() - 30.0 / 180.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 120.0 / 180.0).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.l1_hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.dram_bw_bytes_per_cycle() - 5.76).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let mut s = sample();
        s.exec_cycles = 0;
        s.cycles = 0;
        s.dram = [0; 4];
        s.row_hits = 0;
        s.row_empties = 0;
        s.row_conflicts = 0;
        s.l1_read_hits = 0;
        s.l1_read_misses = 0;
        s.l2_read_hits = 0;
        s.l2_read_misses = 0;
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.ecc_traffic_fraction(), 0.0);
        assert_eq!(s.row_hit_rate(), 1.0);
        assert_eq!(s.l1_hit_rate(), 1.0);
        assert_eq!(s.dram_bw_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn disabled_telemetry_fields_are_absent_from_json() {
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(!json.contains("latency_hist"));
        assert!(!json.contains("timeline"));
        assert!(!json.contains("faults"));
        // And JSON without them deserializes to None (old outputs load).
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.latency_hist, None);
        assert_eq!(back.timeline, None);
        assert_eq!(back.faults, None);
    }

    #[test]
    fn fault_stats_round_trip_when_present() {
        let mut s = sample();
        s.faults = Some(crate::faults::FaultStats {
            data_reads: 100,
            ecc_reads: 20,
            injected: 5,
            benign: 1,
            corrected: 2,
            due: 1,
            sdc: 1,
        });
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("faults"));
        assert!(json.contains("sdc"));
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn telemetry_fields_round_trip_when_present() {
        let mut s = sample();
        let mut h = Histogram::new();
        for v in [11u64, 30, 95, 200] {
            h.record(v);
        }
        s.latency_hist = Some(h);
        let mut sampler = ccraft_telemetry::Sampler::new(128);
        sampler.register("ipc");
        sampler.register("dram.reads");
        sampler.sample(&[0.5, 12.0]);
        sampler.sample(&[0.75, 9.0]);
        s.timeline = Some(sampler.finish());
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("latency_hist"));
        assert!(json.contains("timeline"));
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let t = back.timeline.unwrap();
        assert_eq!(t.epochs(), 2);
        assert_eq!(t.series("ipc").unwrap().points, vec![0.5, 0.75]);
        let h = back.latency_hist.unwrap();
        assert!(h.p99() >= h.p50());
        assert!(h.p50() >= 1);
    }

    #[test]
    fn display_contains_key_numbers() {
        let text = sample().to_string();
        assert!(text.contains("IPC 0.500"));
        assert!(text.contains("dR 100"));
        assert!(!text.contains("TIMED OUT"));
    }
}
