//! The L2 slice: one bank of the shared last-level cache, co-located with
//! its memory controller.
//!
//! GPUs partition the L2 by memory channel; each slice serves exactly the
//! addresses of its channel, so a slice and its controller form a closed
//! pair. The slice is sectored (128-byte lines, 32-byte sectors),
//! write-back, write-allocate, with sector-granularity MSHRs.
//!
//! Protection hooks (see [`crate::protection`]) fire on demand fills and
//! dirty write-backs; the ECC traffic they generate shares this slice's
//! controller queues with demand traffic — which is precisely the contention
//! CacheCraft attacks.

use crate::cache::{CacheStats, LookupResult, SectorCache};
use crate::config::GpuConfig;
use crate::dram::MapOrder;
use crate::fxmap::FxHashMap;
use crate::mem_ctrl::{Completion, DramRequest, DramTag, IssueEvent, McStats, MemCtrl};
use crate::msg::{L2Request, L2Response};
use crate::protection::ProtectionScheme;
use crate::types::{AccessKind, Cycle, PhysLoc, TrafficClass};
use std::collections::VecDeque;

/// Requests the slice pipeline processes per cycle.
pub const SLICE_PORTS: usize = 2;

/// Write-back tasks and pending fills processed per cycle.
const WB_TASKS_PER_CYCLE: usize = 4;

#[derive(Debug)]
struct Mshr {
    atom: u64,
    /// Readers to notify on fill: `(sm, l1_mshr)`.
    waiters: Vec<(u16, u32)>,
    /// DRAM pieces still outstanding (data + ECC fetches).
    pieces_left: u32,
    /// Install the sector dirty (fetch-on-write merge happened).
    dirty_after_fill: bool,
}

/// A deferred write-back: data write plus the ECC traffic planned for it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WbTask {
    data_atom: Option<u64>,
    ecc_reads: Vec<u64>,
    ecc_writes: Vec<u64>,
}

/// Per-slice statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct L2SliceStats {
    /// Sectored-cache counters.
    pub cache: CacheStats,
    /// Cycles a request stalled because MSHRs or controller queues were
    /// full.
    pub pipeline_stalls: u64,
    /// Demand fills completed.
    pub fills: u64,
    /// Write-backs issued to DRAM (data atoms).
    pub writebacks: u64,
}

/// One L2 slice plus its memory controller.
#[derive(Debug)]
pub struct L2Slice {
    channel: u16,
    cache: SectorCache,
    latency: u32,
    in_q: VecDeque<L2Request>,
    in_cap: usize,
    resp_q: VecDeque<(Cycle, L2Response)>,
    mshrs: Vec<Option<Mshr>>,
    mshr_index: FxHashMap<u64, usize>,
    free_mshrs: Vec<usize>,
    pending_wb: VecDeque<WbTask>,
    mc: MemCtrl,
    stats: L2SliceStats,
    /// Reused scratch for DRAM completions (hot-path allocation avoidance).
    comp_buf: Vec<Completion>,
    /// Oracle counter: MSHRs allocated (fill conservation).
    #[cfg(feature = "check-invariants")]
    mshr_allocs: u64,
}

impl L2Slice {
    /// Builds the slice for `channel`. `l2_tax_bytes` shrinks the cache by
    /// the capacity the protection scheme repurposes (CacheCraft fragment
    /// store).
    ///
    /// # Panics
    ///
    /// Panics if the tax leaves no valid cache geometry.
    pub fn new(cfg: &GpuConfig, channel: u16, order: MapOrder, l2_tax_bytes: u64) -> Self {
        let cap = cfg.l2.capacity_bytes.saturating_sub(l2_tax_bytes);
        assert!(cap > 0, "protection tax consumed the whole L2 slice");
        // Keep the configured (power-of-two) set count and absorb the tax
        // by reducing associativity, so capacity is honoured exactly.
        let line = cfg.l2.line_bytes;
        let sets = cfg.l2.sets();
        let ways = (cap / (line * sets)) as u32;
        assert!(ways > 0, "protection tax leaves less than one way");
        L2Slice {
            channel,
            cache: SectorCache::new_hashed(sets, ways, 4),
            latency: cfg.l2.latency,
            in_q: VecDeque::with_capacity(cfg.l2.input_queue),
            in_cap: cfg.l2.input_queue,
            resp_q: VecDeque::new(),
            mshrs: (0..cfg.l2.mshrs).map(|_| None).collect(),
            mshr_index: FxHashMap::default(),
            free_mshrs: (0..cfg.l2.mshrs).rev().collect(),
            pending_wb: VecDeque::new(),
            mc: MemCtrl::new(&cfg.mem, order),
            stats: L2SliceStats::default(),
            comp_buf: Vec::new(),
            #[cfg(feature = "check-invariants")]
            mshr_allocs: 0,
        }
    }

    /// Capacity in bytes actually used by the cache after the tax.
    pub fn cache_capacity(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    /// `true` when the slice can take another request from the crossbar.
    pub fn can_accept(&self) -> bool {
        self.in_q.len() < self.in_cap
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the input queue is full or the request targets another
    /// channel.
    pub fn push(&mut self, req: L2Request) {
        assert!(self.can_accept(), "L2 slice input queue overflow");
        assert_eq!(
            req.loc.channel, self.channel,
            "request routed to wrong slice"
        );
        self.in_q.push_back(req);
    }

    /// Residency probe used by protection schemes (valid data atoms only).
    pub fn probe(&self, atom: u64) -> bool {
        self.cache.probe(atom)
    }

    // Invariant: callers check MSHR availability before allocating.
    #[allow(clippy::expect_used)]
    fn alloc_mshr(&mut self, m: Mshr) -> usize {
        // lint: allow(panic-freedom) reason=both call sites check free_mshrs availability in the same cycle before allocating
        let idx = self.free_mshrs.pop().expect("caller checked availability");
        self.mshr_index.insert(m.atom, idx);
        self.mshrs[idx] = Some(m);
        #[cfg(feature = "check-invariants")]
        {
            self.mshr_allocs += 1;
        }
        idx
    }

    /// Plans and queues the write-back of dirty atoms evicted together.
    /// `evicted_set` lists all dirty atoms leaving in this eviction so the
    /// reconstruction residency check can count them as available.
    fn queue_writebacks(
        &mut self,
        dirty_atoms: &[u64],
        evicted_set: &[u64],
        scheme: &mut dyn ProtectionScheme,
        now: Cycle,
    ) {
        for &atom in dirty_atoms {
            let cache = &self.cache;
            let plan = scheme.writeback(PhysLoc::new(self.channel, atom), now, &mut |a| {
                cache.probe(a) || evicted_set.contains(&a)
            });
            self.pending_wb.push_back(WbTask {
                data_atom: Some(atom),
                ecc_reads: plan.ecc_reads,
                ecc_writes: plan.ecc_writes,
            });
        }
    }

    /// Installs a completed fill, handling any eviction it causes.
    // Invariant: the fill's MSHR slot stays occupied until installed.
    #[allow(clippy::expect_used)]
    fn install_fill(&mut self, mshr_idx: usize, scheme: &mut dyn ProtectionScheme, now: Cycle) {
        // lint: allow(panic-freedom) reason=the fill's MSHR slot stays occupied until installed; fills are only generated for allocated slots
        let m = self.mshrs[mshr_idx].take().expect("mshr present");
        self.mshr_index.remove(&m.atom);
        self.free_mshrs.push(mshr_idx);
        let evicted = self.cache.fill(m.atom, m.dirty_after_fill);
        self.stats.fills += 1;
        if let Some(ev) = evicted {
            let dirty = ev.dirty_atoms.clone();
            self.queue_writebacks(&dirty, &dirty, scheme, now);
        }
        for (sm, l1_mshr) in m.waiters {
            self.resp_q.push_back((
                now + self.latency as Cycle,
                L2Response {
                    loc: PhysLoc::new(self.channel, m.atom),
                    dest: crate::types::SmId(sm),
                    l1_mshr,
                },
            ));
        }
    }

    /// Attempts to issue the head write-back task (all-or-nothing).
    // Invariant: guarded by a non-empty writeback queue check.
    #[allow(clippy::expect_used)]
    fn try_issue_wb(&mut self, now: Cycle) -> bool {
        let Some(task) = self.pending_wb.front() else {
            return false;
        };
        let writes_needed = task.data_atom.is_some() as usize + task.ecc_writes.len();
        let reads_needed = task.ecc_reads.len();
        if self.mc.write_free() < writes_needed || self.mc.read_free() < reads_needed {
            return false;
        }
        // lint: allow(panic-freedom) reason=the queue was peeked non-empty at the top of this function and nothing pops between
        let task = self.pending_wb.pop_front().expect("checked nonempty");
        if let Some(atom) = task.data_atom {
            self.mc.push(
                DramRequest {
                    atom,
                    class: TrafficClass::DataWrite,
                    tag: DramTag::Write,
                },
                now,
            );
            self.stats.writebacks += 1;
        }
        for atom in task.ecc_reads {
            self.mc.push(
                DramRequest {
                    atom,
                    class: TrafficClass::EccRead,
                    tag: DramTag::RmwRead,
                },
                now,
            );
        }
        for atom in task.ecc_writes {
            self.mc.push(
                DramRequest {
                    atom,
                    class: TrafficClass::EccWrite,
                    tag: DramTag::Write,
                },
                now,
            );
        }
        true
    }

    /// Processes one request from the input queue. Returns `false` when the
    /// head request must stall (left at the front).
    // Invariant: `mshr_index` only maps to occupied MSHR slots.
    #[allow(clippy::expect_used)]
    fn process_request(&mut self, scheme: &mut dyn ProtectionScheme, now: Cycle) -> bool {
        let Some(&req) = self.in_q.front() else {
            return false;
        };
        let atom = req.loc.atom;
        match req.kind {
            AccessKind::Read => {
                match self.cache.lookup_read(atom) {
                    LookupResult::Hit => {
                        self.resp_q.push_back((
                            now + self.latency as Cycle,
                            L2Response {
                                loc: req.loc,
                                dest: req.src,
                                l1_mshr: req.l1_mshr,
                            },
                        ));
                    }
                    LookupResult::SectorMiss | LookupResult::LineMiss => {
                        if let Some(&idx) = self.mshr_index.get(&atom) {
                            // Merge into the in-flight miss.
                            // lint: allow(panic-freedom) reason=mshr_index only maps atoms to occupied slots; entries are removed before the slot is freed
                            let m = self.mshrs[idx].as_mut().expect("indexed mshr");
                            m.waiters.push((req.src.0, req.l1_mshr));
                        } else {
                            // Need an MSHR plus room for data + up to the
                            // plan's ECC fetches (bounded by 2 in practice;
                            // reserve conservatively before consulting the
                            // scheme, which mutates its state).
                            if self.free_mshrs.is_empty() || self.mc.read_free() < 3 {
                                self.stats.pipeline_stalls += 1;
                                return false;
                            }
                            let plan = scheme.demand_fill(req.loc, now);
                            debug_assert!(plan.ecc_fetches.len() <= 2);
                            let pieces = 1 + plan.ecc_fetches.len() as u32;
                            let idx = self.alloc_mshr(Mshr {
                                atom,
                                waiters: vec![(req.src.0, req.l1_mshr)],
                                pieces_left: pieces,
                                dirty_after_fill: false,
                            });
                            self.mc.push(
                                DramRequest {
                                    atom,
                                    class: TrafficClass::DataRead,
                                    tag: DramTag::DemandData { mshr: idx },
                                },
                                now,
                            );
                            for ecc in plan.ecc_fetches {
                                self.mc.push(
                                    DramRequest {
                                        atom: ecc,
                                        class: TrafficClass::EccRead,
                                        tag: DramTag::DemandEcc { mshr: idx },
                                    },
                                    now,
                                );
                            }
                        }
                    }
                }
            }
            AccessKind::Write { full } => {
                match self.cache.lookup_write(atom) {
                    LookupResult::Hit => {}
                    _ if full => {
                        // Write-allocate without fetch: install dirty.
                        if let Some(&idx) = self.mshr_index.get(&atom) {
                            // A fetch is in flight; merge the write into it.
                            // lint: allow(panic-freedom) reason=mshr_index only maps atoms to occupied slots; entries are removed before the slot is freed
                            let m = self.mshrs[idx].as_mut().expect("indexed mshr");
                            m.dirty_after_fill = true;
                        } else {
                            let evicted = self.cache.fill(atom, true);
                            if let Some(ev) = evicted {
                                let dirty = ev.dirty_atoms.clone();
                                self.queue_writebacks(&dirty, &dirty, scheme, now);
                            }
                        }
                    }
                    _ => {
                        // Partial write to a non-resident sector:
                        // fetch-on-write.
                        if let Some(&idx) = self.mshr_index.get(&atom) {
                            // lint: allow(panic-freedom) reason=mshr_index only maps atoms to occupied slots; entries are removed before the slot is freed
                            let m = self.mshrs[idx].as_mut().expect("indexed mshr");
                            m.dirty_after_fill = true;
                        } else {
                            if self.free_mshrs.is_empty() || self.mc.read_free() < 3 {
                                self.stats.pipeline_stalls += 1;
                                return false;
                            }
                            let plan = scheme.demand_fill(req.loc, now);
                            let pieces = 1 + plan.ecc_fetches.len() as u32;
                            let idx = self.alloc_mshr(Mshr {
                                atom,
                                waiters: Vec::new(),
                                pieces_left: pieces,
                                dirty_after_fill: true,
                            });
                            self.mc.push(
                                DramRequest {
                                    atom,
                                    class: TrafficClass::DataRead,
                                    tag: DramTag::DemandData { mshr: idx },
                                },
                                now,
                            );
                            for ecc in plan.ecc_fetches {
                                self.mc.push(
                                    DramRequest {
                                        atom: ecc,
                                        class: TrafficClass::EccRead,
                                        tag: DramTag::DemandEcc { mshr: idx },
                                    },
                                    now,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.in_q.pop_front();
        true
    }

    /// Advances the slice and its controller one cycle.
    pub fn tick(&mut self, scheme: &mut dyn ProtectionScheme, now: Cycle) {
        let mut mc_t = ccraft_telemetry::profiler::PhaseTimer::start(self.mc.profile_enabled());
        self.mc.tick(now);
        self.mc.profile_add_tick_ns(mc_t.lap());
        // 1. Handle DRAM completions (through a reused scratch buffer —
        //    this runs every cycle for every slice).
        let mut comps = std::mem::take(&mut self.comp_buf);
        self.mc.pop_completions_into(now, &mut comps);
        for c in comps.drain(..) {
            match c.req.tag {
                DramTag::DemandData { mshr } | DramTag::DemandEcc { mshr } => {
                    if matches!(c.req.tag, DramTag::DemandEcc { .. }) {
                        scheme.ecc_arrived(PhysLoc::new(self.channel, c.req.atom), now);
                    }
                    // The MSHR may have been freed if a full-line write
                    // raced ahead; guard accordingly.
                    if let Some(m) = self.mshrs[mshr].as_mut() {
                        m.pieces_left -= 1;
                        if m.pieces_left == 0 {
                            self.install_fill(mshr, scheme, now);
                        }
                    }
                }
                DramTag::RmwRead => {}
                DramTag::Write => unreachable!("writes produce no completions"),
            }
        }
        self.comp_buf = comps;
        // 2. Issue deferred write-backs.
        for _ in 0..WB_TASKS_PER_CYCLE {
            if !self.try_issue_wb(now) {
                break;
            }
        }
        // 3. Drain protection-scheme ECC writes with leftover write slots,
        //    keeping one slot in reserve for data write-backs.
        let budget = self.mc.write_free().saturating_sub(1);
        if budget > 0 {
            for atom in scheme.drain_ecc_writes(self.channel, now, budget) {
                self.mc.push(
                    DramRequest {
                        atom,
                        class: TrafficClass::EccWrite,
                        tag: DramTag::Write,
                    },
                    now,
                );
            }
        }
        // 4. Pipeline: up to SLICE_PORTS requests.
        for _ in 0..SLICE_PORTS {
            if !self.process_request(scheme, now) {
                break;
            }
        }
    }

    /// Pops responses that are ready at `now`.
    pub fn pop_responses(&mut self, now: Cycle) -> Vec<L2Response> {
        let mut out = Vec::new();
        self.pop_responses_into(now, &mut out);
        out
    }

    /// Like [`pop_responses`](Self::pop_responses) into a caller-owned
    /// buffer (cleared first) so the cycle loop can reuse one allocation.
    pub fn pop_responses_into(&mut self, now: Cycle, out: &mut Vec<L2Response>) {
        out.clear();
        while let Some(&(ready, resp)) = self.resp_q.front() {
            if ready <= now {
                out.push(resp);
                self.resp_q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Queues write-backs for every dirty atom still resident (end-of-kernel
    /// flush), leaving the cache clean.
    pub fn flush_dirty(&mut self, scheme: &mut dyn ProtectionScheme, now: Cycle) {
        let dirty: Vec<u64> = self
            .cache
            .iter_valid()
            .filter(|&(_, d)| d)
            .map(|(a, _)| a)
            .collect();
        self.queue_writebacks(&dirty, &dirty, scheme, now);
        for &a in &dirty {
            self.cache.clean(a);
        }
    }

    /// Earliest cycle at which this slice has (or may have) work, for
    /// idle fast-forwarding. `Some(c <= now)` means busy this cycle;
    /// `Some(c > now)` is the earliest pending response or DRAM
    /// completion; `None` means nothing queued or in flight. An MSHR is
    /// never outstanding without a matching controller event, so the two
    /// checks below cover the whole slice.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.in_q.is_empty() || !self.pending_wb.is_empty() {
            return Some(now);
        }
        let resp = self.resp_q.front().map(|&(ready, _)| ready);
        match (resp, self.mc.next_event(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// `true` when no work remains anywhere in the slice.
    pub fn is_idle(&self) -> bool {
        self.in_q.is_empty()
            && self.resp_q.is_empty()
            && self.pending_wb.is_empty()
            && self.mshr_index.is_empty()
            && self.mc.is_idle()
    }

    /// Slice statistics (cache counters folded in).
    pub fn stats(&self) -> L2SliceStats {
        let mut s = self.stats;
        s.cache = self.cache.stats();
        s
    }

    /// Memory-controller statistics.
    pub fn mc_stats(&self) -> McStats {
        self.mc.stats()
    }

    /// Structural coherence and fill conservation for the slice's MSHR
    /// file and queues, checked once per cycle by the oracle.
    ///
    /// # Panics
    ///
    /// Panics on an MSHR leak, a dangling or mismatched index entry, a
    /// zero-piece MSHR that should already have installed, or an
    /// over-capacity input queue.
    #[cfg(feature = "check-invariants")]
    pub fn assert_coherent(&self) {
        assert!(
            self.in_q.len() <= self.in_cap,
            "invariant violated: L2 slice {} input queue over capacity",
            self.channel
        );
        assert_eq!(
            self.free_mshrs.len() + self.mshr_index.len(),
            self.mshrs.len(),
            "invariant violated: L2 slice {} MSHR leak (free + indexed != total)",
            self.channel
        );
        for (&atom, &idx) in &self.mshr_index {
            match self.mshrs[idx].as_ref() {
                Some(m) => {
                    assert_eq!(
                        m.atom, atom,
                        "invariant violated: L2 slice {} mshr_index atom mismatch \
                         at slot {idx}",
                        self.channel
                    );
                    assert!(
                        m.pieces_left >= 1,
                        "invariant violated: L2 slice {} MSHR {idx} has zero pieces \
                         left but was not installed",
                        self.channel
                    );
                }
                None => panic!(
                    "invariant violated: L2 slice {} mshr_index maps atom {atom} \
                     to empty slot {idx}",
                    self.channel
                ),
            }
        }
        assert_eq!(
            self.mshr_allocs,
            self.stats.fills + self.mshr_index.len() as u64,
            "invariant violated: L2 slice {} fill conservation \
             (allocated MSHRs != fills installed + outstanding)",
            self.channel
        );
    }

    /// MSHRs currently tracking an in-flight miss (telemetry accessor).
    pub fn mshrs_in_use(&self) -> usize {
        self.mshr_index.len()
    }

    /// Total MSHR slots.
    pub fn mshr_capacity(&self) -> usize {
        self.mshrs.len()
    }

    /// Controller queue depths `(reads, writes)` (telemetry accessor).
    pub fn mc_queue_depth(&self) -> (usize, usize) {
        (self.mc.read_q_len(), self.mc.write_q_len())
    }

    /// Turns on the controller's latency histograms (telemetry only).
    pub fn enable_mc_latency_hist(&mut self) {
        self.mc.enable_latency_hist();
    }

    /// The controller's read-latency histogram, when enabled.
    pub fn mc_read_latency_hist(&self) -> Option<&ccraft_telemetry::Histogram> {
        self.mc.read_latency_hist()
    }

    /// Turns on per-transaction DRAM issue tracing (telemetry only).
    pub fn enable_mc_issue_trace(&mut self) {
        self.mc.enable_issue_trace();
    }

    /// Drains collected DRAM issue events (empty when tracing is off).
    pub fn take_mc_issue_events(&mut self) -> Vec<IssueEvent> {
        self.mc.take_issue_events()
    }

    /// Turns on controller self-profiling (observation only).
    pub fn enable_mc_profile(&mut self) {
        self.mc.enable_profile();
    }

    /// The controller's self-profile, when enabled.
    pub fn mc_profile(&self) -> Option<&crate::mem_ctrl::McProfile> {
        self.mc.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::NO_L1_MSHR;
    use crate::protection::{ChannelInterleave, NoProtection};
    use crate::types::SmId;

    fn slice_and_scheme() -> (L2Slice, NoProtection) {
        let cfg = GpuConfig::tiny();
        let slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
        let scheme = NoProtection::new(ChannelInterleave::new(
            cfg.mem.channels,
            cfg.mem.interleave_atoms,
        ));
        (slice, scheme)
    }

    fn read_req(atom: u64) -> L2Request {
        L2Request {
            loc: PhysLoc::new(0, atom),
            kind: AccessKind::Read,
            src: SmId(0),
            l1_mshr: 1,
        }
    }

    fn write_req(atom: u64, full: bool) -> L2Request {
        L2Request {
            loc: PhysLoc::new(0, atom),
            kind: AccessKind::Write { full },
            src: SmId(0),
            l1_mshr: NO_L1_MSHR,
        }
    }

    fn run_until_idle(
        slice: &mut L2Slice,
        scheme: &mut dyn ProtectionScheme,
        start: Cycle,
    ) -> (Vec<L2Response>, Cycle) {
        let mut responses = Vec::new();
        let mut now = start;
        loop {
            slice.tick(scheme, now);
            responses.extend(slice.pop_responses(now));
            now += 1;
            if slice.is_idle() && slice.pop_responses(now).is_empty() {
                break;
            }
            assert!(now < 100_000, "livelock");
        }
        (responses, now)
    }

    #[test]
    fn read_miss_fills_and_responds() {
        let (mut slice, mut scheme) = slice_and_scheme();
        slice.push(read_req(0));
        let (resps, _) = run_until_idle(&mut slice, &mut scheme, 0);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].l1_mshr, 1);
        assert_eq!(slice.stats().fills, 1);
        // Second read is a hit.
        slice.push(read_req(0));
        let (resps, _) = run_until_idle(&mut slice, &mut scheme, 1000);
        assert_eq!(resps.len(), 1);
        assert_eq!(slice.stats().cache.read_hits, 1);
    }

    #[test]
    fn concurrent_misses_merge_in_mshr() {
        let (mut slice, mut scheme) = slice_and_scheme();
        slice.push(read_req(0));
        slice.push(read_req(0));
        slice.push(read_req(0));
        let (resps, _) = run_until_idle(&mut slice, &mut scheme, 0);
        assert_eq!(resps.len(), 3, "all waiters answered");
        // Only one DRAM read happened.
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataRead), 1);
    }

    #[test]
    fn full_write_allocates_without_fetch() {
        let (mut slice, mut scheme) = slice_and_scheme();
        slice.push(write_req(4, true));
        let (_, _) = run_until_idle(&mut slice, &mut scheme, 0);
        assert!(slice.probe(4));
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataRead), 0);
    }

    #[test]
    fn partial_write_fetches_on_write() {
        let (mut slice, mut scheme) = slice_and_scheme();
        slice.push(write_req(4, false));
        let (resps, _) = run_until_idle(&mut slice, &mut scheme, 0);
        assert!(resps.is_empty(), "stores produce no responses");
        assert!(slice.probe(4));
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataRead), 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = GpuConfig::tiny();
        let mut slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
        let mut scheme = NoProtection::new(ChannelInterleave::new(2, 8));
        // tiny L2 slice: 16 KiB = 128 lines (set indices are hashed, so
        // guarantee evictions by writing more distinct lines than the whole
        // slice holds). Interleave pushes with ticks to respect the input
        // queue bound.
        let mut now = 0;
        for i in 0..160u64 {
            slice.push(write_req(i * 4, true));
            slice.tick(&mut scheme, now);
            now += 1;
        }
        let (_, _) = run_until_idle(&mut slice, &mut scheme, now);
        assert!(slice.stats().writebacks >= 1);
        assert!(slice.mc_stats().class_count(TrafficClass::DataWrite) >= 1);
    }

    #[test]
    fn flush_writes_all_dirty_data() {
        let (mut slice, mut scheme) = slice_and_scheme();
        for i in 0..4u64 {
            slice.push(write_req(i, true));
        }
        let (_, end) = run_until_idle(&mut slice, &mut scheme, 0);
        slice.flush_dirty(&mut scheme, end);
        let (_, _) = run_until_idle(&mut slice, &mut scheme, end);
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataWrite), 4);
    }

    #[test]
    fn write_merges_into_inflight_fetch() {
        let (mut slice, mut scheme) = slice_and_scheme();
        slice.push(read_req(0));
        slice.push(write_req(0, true));
        let (resps, _) = run_until_idle(&mut slice, &mut scheme, 0);
        assert_eq!(resps.len(), 1);
        // One fetch, sector ends dirty: flushing must produce one write.
        slice.flush_dirty(&mut scheme, 10_000);
        let (_, _) = run_until_idle(&mut slice, &mut scheme, 10_000);
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataRead), 1);
        assert_eq!(slice.mc_stats().class_count(TrafficClass::DataWrite), 1);
    }

    #[test]
    fn l2_tax_shrinks_cache() {
        let cfg = GpuConfig::tiny();
        let full = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
        let taxed = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 8 << 10);
        assert_eq!(full.cache_capacity(), 16 << 10);
        assert_eq!(taxed.cache_capacity(), 8 << 10);
    }

    #[test]
    #[should_panic(expected = "wrong slice")]
    fn rejects_misrouted_request() {
        let (mut slice, _) = slice_and_scheme();
        slice.push(L2Request {
            loc: PhysLoc::new(1, 0),
            kind: AccessKind::Read,
            src: SmId(0),
            l1_mshr: 0,
        });
    }

    #[test]
    fn responses_respect_latency() {
        let (mut slice, mut scheme) = slice_and_scheme();
        // Prefill.
        slice.push(read_req(0));
        let (_, end) = run_until_idle(&mut slice, &mut scheme, 0);
        // A hit at cycle `end` must not respond before end + latency (8).
        slice.push(read_req(0));
        slice.tick(&mut scheme, end);
        for now in end..end + 8 {
            assert!(
                slice.pop_responses(now).is_empty(),
                "early response at {now}"
            );
        }
        assert_eq!(slice.pop_responses(end + 8).len(), 1);
    }
}
