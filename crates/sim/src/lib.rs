//! # ccraft-sim — a trace-driven GPU memory-subsystem simulator
//!
//! The infrastructure substrate of the CacheCraft reproduction: a
//! cycle-approximate model of a GPU's memory hierarchy built for studying
//! memory-protection schemes. SIMT cores replay coalesced kernel traces;
//! requests flow through sectored L1s, a crossbar, channel-sliced L2 banks
//! with MSHRs, and FR-FCFS memory controllers over a banked GDDR6/HBM2
//! DRAM timing model.
//!
//! Memory protection is injected through the
//! [`ProtectionScheme`](protection::ProtectionScheme) trait, consulted for
//! address mapping, demand-fill ECC fetches, and write-back ECC traffic.
//! The scheme implementations (inline ECC baselines and CacheCraft itself)
//! live in the `ccraft-core` crate; this crate ships only the ECC-off
//! baseline ([`protection::NoProtection`]).
//!
//! ## Quick start
//!
//! ```
//! use ccraft_sim::config::GpuConfig;
//! use ccraft_sim::dram::MapOrder;
//! use ccraft_sim::gpu::simulate;
//! use ccraft_sim::protection::{ChannelInterleave, NoProtection};
//! use ccraft_sim::trace::{KernelTrace, WarpOp, WarpTrace};
//! use ccraft_sim::types::LogicalAtom;
//!
//! let cfg = GpuConfig::tiny();
//! let trace = KernelTrace::new(
//!     "hello",
//!     vec![WarpTrace::new(vec![WarpOp::Load {
//!         atoms: (0..4).map(LogicalAtom).collect(),
//!     }])],
//! );
//! let mut scheme = NoProtection::new(ChannelInterleave::new(
//!     cfg.mem.channels,
//!     cfg.mem.interleave_atoms,
//! ));
//! let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
//! assert!(!stats.timed_out);
//! assert_eq!(stats.dram[0], 4); // four data-read atoms
//! ```
//!
//! ## Fidelity
//!
//! DESIGN.md §5 lists the modelling approximations (single clock domain,
//! no `tFAW`/bank-group timing, posted stores, trace-driven cores). They
//! are chosen so that the quantities this reproduction reasons about —
//! bandwidth demand, row-buffer locality, queue contention, cache reach —
//! behave faithfully.
// Library crates must not abort the process on recoverable conditions:
// panicking escapes are denied outside tests, and the few justified
// invariant panics carry scoped `#[allow]`s with a safety comment.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod dram;
pub mod energy;
pub mod faults;
pub mod fxmap;
pub mod gpu;
#[cfg(feature = "check-invariants")]
pub mod invariants;
pub mod l1;
pub mod l2;
pub mod mem_ctrl;
pub mod msg;
pub mod protection;
mod shard;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod types;
pub mod xbar;

pub use config::GpuConfig;
pub use faults::{FaultConfig, FaultInjector, FaultRate, FaultStats, ProtectionCodec};
pub use gpu::{
    simulate, simulate_instrumented, simulate_profiled, simulate_with_exec,
    simulate_with_telemetry, ExecConfig, SimOutput,
};
pub use stats::SimStats;
pub use types::{Cycle, LogicalAtom, PhysLoc, TrafficClass};
