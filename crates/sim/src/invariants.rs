//! Runtime invariant oracle (`check-invariants` builds only).
//!
//! The simulator's performance model leans on *memoized idleness*: the
//! cycle loop jumps over spans that [`crate::gpu`]'s `idle_wake` proves
//! idle, sleeping SMs skip their scheduler scans, and the memory
//! controller skips FR-FCFS scans while `scan_asleep_until` holds. Each
//! memo is an unchecked claim in the default build. Under the
//! `check-invariants` feature this module (plus `#[cfg]`-gated hooks in
//! `gpu.rs`, `mem_ctrl.rs`, `dram.rs`, `l1.rs`, `l2.rs` and `xbar.rs`)
//! turns every claim into an assertion:
//!
//! * **Memo conservativeness** — the loop *ticks through* predicted-idle
//!   spans instead of jumping, and the [`Oracle`] asserts that the
//!   machine's progress signature (every counter that moves only when
//!   real work happens) stays frozen until the predicted wake cycle. A
//!   component that acts earlier than its `next_event` /
//!   `next_timed_event` promised is caught on the very next cycle.
//! * **Mirror exactness** — `DramChannel::issue_blocked_until` must agree
//!   with `DramChannel::try_issue_at` in both directions on every issue
//!   attempt, and a sleeping controller scan must find nothing issuable.
//! * **Conservation** — requests in equal requests out plus requests in
//!   flight, at the crossbar, the L1/L2 MSHR files and the controller
//!   queues.
//! * **Protocol timing** — every committed DRAM issue re-asserts the
//!   tRCD/tRP/tRAS/tWR/turnaround/refresh constraints it claims to obey,
//!   and cycle time is checked monotonic.
//!
//! Ticking through idle spans is stats-neutral for completed runs (the
//! design invariant the oracle exists to check), so `SimStats` from an
//! instrumented run are bit-identical to the default build's — the
//! golden-regression values must reproduce under the feature. One
//! documented exception: a run that *times out* mid-span may count
//! refresh operations the jumping build never reached; no pinned test
//! exercises that corner.

use crate::l2::L2Slice;
use crate::sm::SmCore;
use crate::types::Cycle;
use crate::xbar::Crossbar;

/// FNV-1a fold used for the progress signature. Any change to any folded
/// counter changes the signature with overwhelming probability; the
/// signature is only ever compared against itself within one run, so the
/// hash needs no cross-platform stability beyond determinism.
fn fold(sig: u64, v: u64) -> u64 {
    (sig ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Fingerprint of all machine state that moves only when *real work*
/// happens. Stall/idle accounting, refresh catch-up and busy-cycle
/// counters are deliberately excluded — those legitimately advance while
/// the machine is provably idle. Everything else (issue counters, cache
/// hit/miss counters, DRAM transaction counts, queue depths, MSHR
/// occupancy, crossbar transport counters) must be frozen across a
/// predicted-idle span.
pub fn progress_signature(sms: &[SmCore], xbar: &Crossbar, slices: &[L2Slice]) -> u64 {
    let mut sig = 0xcbf2_9ce4_8422_2325;
    for sm in sms {
        sig = fold(sig, sm.stats().issued_ops);
        let l1 = sm.l1.stats();
        sig = fold(sig, l1.read_hits);
        sig = fold(sig, l1.read_misses);
        sig = fold(sig, l1.writes);
    }
    let x = xbar.stats();
    sig = fold(sig, x.requests);
    sig = fold(sig, x.responses);
    sig = fold(sig, x.rejects);
    sig = fold(sig, xbar.queued_requests() as u64);
    sig = fold(sig, xbar.queued_responses() as u64);
    for slice in slices {
        let s = slice.stats();
        sig = fold(sig, s.fills);
        sig = fold(sig, s.writebacks);
        sig = fold(sig, s.cache.read_hits);
        sig = fold(sig, s.cache.read_misses);
        sig = fold(sig, s.cache.write_hits);
        sig = fold(sig, s.cache.write_misses);
        sig = fold(sig, s.cache.evictions);
        let mc = slice.mc_stats();
        for c in mc.count {
            sig = fold(sig, c);
        }
        sig = fold(sig, mc.row_hits);
        sig = fold(sig, mc.row_empties);
        sig = fold(sig, mc.row_conflicts);
        let (r, w) = slice.mc_queue_depth();
        sig = fold(sig, r as u64);
        sig = fold(sig, w as u64);
        sig = fold(sig, slice.mshrs_in_use() as u64);
    }
    sig
}

/// A predicted-idle span under verification: the loop claimed nothing
/// makes progress strictly before `until`, with the machine fingerprint
/// `sig` at prediction time.
#[derive(Debug, Clone, Copy)]
struct IdleSpan {
    until: Cycle,
    sig: u64,
}

/// Per-run oracle state owned by the cycle loop.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Cycle of the previous `check_cycle` call, for monotonicity.
    last_now: Option<Cycle>,
    /// Currently-verified idle span, when one is predicted.
    span: Option<IdleSpan>,
}

impl Oracle {
    /// Fresh oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Registers an idle-span prediction: nothing may make progress at
    /// any cycle up to (and at the start of) `until`. Called where the
    /// default build would jump.
    pub fn begin_idle_span(&mut self, until: Cycle, sig: u64) {
        self.span = Some(IdleSpan { until, sig });
    }

    /// Top-of-cycle check: cycle time is strictly monotonic, per-cycle
    /// structural invariants hold everywhere, and — inside a
    /// predicted-idle span — the progress signature is frozen.
    ///
    /// # Panics
    ///
    /// Panics on any invariant violation.
    pub fn check_cycle(&mut self, now: Cycle, sms: &[SmCore], xbar: &Crossbar, slices: &[L2Slice]) {
        if let Some(prev) = self.last_now {
            assert!(
                now > prev,
                "invariant violated: non-monotonic cycle time ({now} after {prev})"
            );
        }
        self.last_now = Some(now);
        xbar.assert_conserved();
        for sm in sms {
            sm.l1.assert_coherent();
        }
        for slice in slices {
            slice.assert_coherent();
        }
        if let Some(span) = self.span {
            if now <= span.until {
                let cur = progress_signature(sms, xbar, slices);
                assert_eq!(
                    cur, span.sig,
                    "invariant violated: progress during predicted-idle span \
                     (cycle {now}, span was predicted idle until {})",
                    span.until
                );
            }
            if now >= span.until {
                self.span = None;
            }
        }
    }
}
