//! Protocol messages between the L1s and the L2 slices.

use crate::types::{AccessKind, PhysLoc, SmId};

/// Sentinel for requests with no L1 MSHR (posted stores).
pub const NO_L1_MSHR: u32 = u32::MAX;

/// A request travelling SM→L2 through the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Request {
    /// Physical location (channel selects the slice).
    pub loc: PhysLoc,
    /// Read or write (with full/partial sector coverage).
    pub kind: AccessKind,
    /// Requesting SM.
    pub src: SmId,
    /// L1 MSHR slot awaiting the response ([`NO_L1_MSHR`] for stores).
    pub l1_mshr: u32,
}

/// A read response travelling L2→SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Response {
    /// The location that was read.
    pub loc: PhysLoc,
    /// Destination SM.
    pub dest: SmId,
    /// L1 MSHR slot to complete.
    pub l1_mshr: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_construction() {
        let req = L2Request {
            loc: PhysLoc::new(1, 42),
            kind: AccessKind::Read,
            src: SmId(3),
            l1_mshr: 7,
        };
        assert_eq!(req.loc.channel, 1);
        assert!(!req.kind.is_write());
        let resp = L2Response {
            loc: req.loc,
            dest: req.src,
            l1_mshr: req.l1_mshr,
        };
        assert_eq!(resp.dest, SmId(3));
        assert_ne!(resp.l1_mshr, NO_L1_MSHR);
    }
}
