//! Streaming-multiprocessor core model: warp scheduling and trace replay.
//!
//! Each SM hosts a set of resident warps replaying [`WarpTrace`]s. Per
//! cycle the SM can issue one instruction: compute ops retire by simply
//! making the warp busy for their latency; memory ops are streamed through
//! the load/store unit into the L1 at one coalesced access per cycle.
//! Loads block their warp until all sectors return (latency is hidden by
//! switching to other warps — the GPU execution model); stores are posted.
//!
//! Two hardware warp schedulers are modelled: greedy-then-oldest (GTO, the
//! common default) and round-robin.

use crate::config::{CoreConfig, SchedulerPolicy};
use crate::l1::{L1Access, L1Cache};
use crate::trace::{WarpOp, WarpTrace};
use crate::types::{AccessKind, Cycle, SmId, WarpIdx};

#[derive(Debug)]
struct WarpState {
    trace: WarpTrace,
    /// Next op index.
    pc: usize,
    /// Warp unavailable until this cycle (compute latency).
    ready_at: Cycle,
    /// Outstanding load sectors.
    outstanding: u32,
    /// Accesses of the current memory op not yet handed to the L1.
    issuing_from: usize,
}

impl WarpState {
    /// Fully retired: all ops issued, trailing compute latency elapsed,
    /// and no loads outstanding.
    fn done(&self, now: Cycle) -> bool {
        self.pc >= self.trace.len() && self.outstanding == 0 && self.ready_at <= now
    }

    /// Ready to be picked by the scheduler this cycle.
    fn ready(&self, now: Cycle) -> bool {
        self.pc < self.trace.len() && self.ready_at <= now && self.outstanding == 0
    }
}

/// Per-SM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued (trace ops started).
    pub issued_ops: u64,
    /// Cycles in which no warp could issue.
    pub idle_cycles: u64,
    /// Cycles with at least one unfinished warp.
    pub active_cycles: u64,
    /// Idle cycles where no warp was ready (all blocked on memory or
    /// compute latency) — the latency-bound stall reason.
    pub stall_no_ready_warp: u64,
    /// Idle cycles where a ready warp could not issue its memory op
    /// because the LSU was streaming another op — the structural hazard.
    pub stall_lsu_busy: u64,
}

/// One SM: warps plus its private L1.
#[derive(Debug)]
pub struct SmCore {
    id: SmId,
    warps: Vec<WarpState>,
    policy: SchedulerPolicy,
    /// GTO current warp / RR rotation pointer.
    cursor: usize,
    /// Warp currently streaming a memory op through the LSU, if any.
    lsu_warp: Option<usize>,
    /// The SM's L1 cache.
    pub l1: L1Cache,
    stats: SmStats,
}

impl SmCore {
    /// Builds an SM with the given resident warp traces (one entry per
    /// hardware warp slot; pad with empty traces for idle slots).
    pub fn new(id: SmId, cfg: &CoreConfig, l1: L1Cache, traces: Vec<WarpTrace>) -> Self {
        assert!(
            traces.len() <= cfg.warps_per_sm as usize,
            "more traces than warp slots"
        );
        let warps = traces
            .into_iter()
            .map(|trace| WarpState {
                trace,
                pc: 0,
                ready_at: 0,
                outstanding: 0,
                issuing_from: 0,
            })
            .collect();
        SmCore {
            id,
            warps,
            policy: cfg.scheduler,
            cursor: 0,
            lsu_warp: None,
            l1,
            stats: SmStats::default(),
        }
    }

    /// The SM identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// `true` when every warp has retired all its ops (including trailing
    /// compute latency) as of `now`.
    pub fn all_warps_done(&self, now: Cycle) -> bool {
        self.warps.iter().all(|w| w.done(now))
    }

    /// Applies completed-load notifications from the L1.
    fn apply_completions(&mut self) {
        let warps = &mut self.warps;
        for warp in self.l1.drain_completions() {
            let w = &mut warps[warp as usize];
            debug_assert!(w.outstanding > 0, "completion for idle warp");
            w.outstanding -= 1;
        }
    }

    /// Streams accesses of the LSU-resident memory op into the L1.
    fn pump_lsu(&mut self) {
        let Some(widx) = self.lsu_warp else { return };
        let w = &mut self.warps[widx];
        let op = &w.trace.ops()[w.pc];
        let (atoms, kind): (&[crate::types::LogicalAtom], AccessKind) = match op {
            WarpOp::Load { atoms } => (atoms, AccessKind::Read),
            WarpOp::Store { atoms, full } => (atoms, AccessKind::Write { full: *full }),
            WarpOp::Compute { .. } => unreachable!("compute op in LSU"),
        };
        // One access per cycle through the LSU.
        if w.issuing_from <= atoms.len() && self.l1.can_accept() {
            let i = w.issuing_from - 1;
            let atom = atoms[i];
            self.l1.push(L1Access {
                warp: widx as WarpIdx,
                atom,
                kind,
            });
            if kind == AccessKind::Read {
                w.outstanding += 1;
            }
            w.issuing_from += 1;
            if w.issuing_from > atoms.len() {
                // All accesses dispatched: retire the op from the front end.
                w.pc += 1;
                w.issuing_from = 0;
                self.lsu_warp = None;
            }
        }
    }

    /// Picks a warp to issue this cycle, per the scheduling policy.
    fn pick_warp(&self, now: Cycle) -> Option<usize> {
        let n = self.warps.len();
        if n == 0 {
            return None;
        }
        match self.policy {
            SchedulerPolicy::GreedyThenOldest => {
                if self.cursor < n && self.warps[self.cursor].ready(now) {
                    return Some(self.cursor);
                }
                (0..n).find(|&i| self.warps[i].ready(now))
            }
            SchedulerPolicy::RoundRobin => (1..=n)
                .map(|k| (self.cursor + k) % n)
                .find(|&i| self.warps[i].ready(now)),
        }
    }

    /// Advances the SM one cycle. `map` and `send` are forwarded to the L1
    /// (protection address translation and crossbar injection).
    ///
    /// Returns `true` when the issue stage found no ready warp — the only
    /// state from which the SM may be quiescent, so the cycle loop probes
    /// [`next_event`](Self::next_event) for its sleep memo only then
    /// instead of paying the scan on every busy tick.
    pub fn tick(
        &mut self,
        now: Cycle,
        map: &mut dyn FnMut(crate::types::LogicalAtom) -> crate::types::PhysLoc,
        send: &mut dyn FnMut(crate::msg::L2Request) -> bool,
    ) -> bool {
        self.l1.tick(now, map, send);
        self.apply_completions();
        if !self.all_warps_done(now) {
            self.stats.active_cycles += 1;
        }
        // Continue streaming the in-flight memory op.
        self.pump_lsu();
        // Issue stage.
        let Some(widx) = self.pick_warp(now) else {
            if !self.all_warps_done(now) {
                self.stats.idle_cycles += 1;
                self.stats.stall_no_ready_warp += 1;
            }
            return true;
        };
        let w = &mut self.warps[widx];
        match &w.trace.ops()[w.pc] {
            WarpOp::Compute { cycles } => {
                w.ready_at = now + *cycles as Cycle;
                w.pc += 1;
                self.stats.issued_ops += 1;
                self.cursor = widx;
            }
            WarpOp::Load { .. } | WarpOp::Store { .. } => {
                if self.lsu_warp.is_none() {
                    w.issuing_from = 1;
                    self.lsu_warp = Some(widx);
                    self.stats.issued_ops += 1;
                    self.cursor = widx;
                    self.pump_lsu();
                } else {
                    // LSU busy: structural hazard, no issue this cycle.
                    self.stats.idle_cycles += 1;
                    self.stats.stall_lsu_busy += 1;
                }
            }
        }
        false
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Total ops across all resident warp traces (for progress accounting).
    pub fn total_trace_ops(&self) -> u64 {
        self.warps.iter().map(|w| w.trace.len() as u64).sum()
    }

    /// Earliest cycle at which this SM can make progress, for idle
    /// fast-forwarding. `Some(c <= now)` means the SM would do real work
    /// this cycle (LSU streaming, a ready warp, pending L1 work);
    /// `Some(c > now)` is the next compute-latency or L1-hit maturation;
    /// `None` means nothing will ever happen without an external response
    /// (or the SM is fully done). Warps blocked on outstanding loads carry
    /// no event of their own — their wakeup is the response chain through
    /// the crossbar/L2/DRAM, which reports its own events.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.lsu_warp.is_some() {
            return Some(now);
        }
        let mut wake = self.l1.next_event(now);
        if matches!(wake, Some(c) if c <= now) {
            return wake;
        }
        for w in &self.warps {
            if w.outstanding > 0 {
                continue;
            }
            if w.ready_at > now {
                wake = Some(wake.map_or(w.ready_at, |c| c.min(w.ready_at)));
            } else if w.pc < w.trace.len() {
                // Ready to issue this very cycle.
                return Some(now);
            }
        }
        wake
    }

    /// Accounts for `span` skipped idle cycles starting at `now`, exactly
    /// as `span` individual [`tick`](Self::tick)s would have: the caller
    /// (the idle fast-forward in the cycle loop) guarantees that during
    /// the span no warp becomes ready, the LSU is free, and the L1 has
    /// nothing to do — so each skipped cycle would have counted one
    /// active cycle, one idle cycle, and one no-ready-warp stall, and
    /// nothing else.
    pub fn account_idle_span(&mut self, now: Cycle, span: u64) {
        if span == 0 || self.all_warps_done(now) {
            return;
        }
        self.account_stalled_span(span);
    }

    /// [`account_idle_span`](Self::account_idle_span) without the doneness
    /// check: the caller has already established (and may have cached)
    /// that the SM has unfinished warps throughout the span. Used by the
    /// per-SM sleep memo in the cycle loop, where re-scanning all warps
    /// every skipped cycle would defeat the optimization.
    pub fn account_stalled_span(&mut self, span: u64) {
        self.stats.active_cycles += span;
        self.stats.idle_cycles += span;
        self.stats.stall_no_ready_warp += span;
    }

    /// A cycle strictly before which this SM provably cannot have retired
    /// every warp: the sharded execution engine runs whole epochs only
    /// while `epoch_end <= done_horizon`, so the single-threaded loop's
    /// per-cycle `all_warps_done` scan (and the flush/drain endgame behind
    /// it) can be skipped for the entire epoch without changing when it
    /// first returns true.
    ///
    /// The bound is conservative, never optimistic: a warp with `rem` ops
    /// left cannot retire them faster than two per cycle (an LSU retire
    /// plus a compute issue in the same tick is the maximum front-end
    /// advance), and no warp finishes before its pending compute latency
    /// expires. Warps blocked on outstanding loads contribute only `now` —
    /// a response could land any cycle.
    pub fn done_horizon(&self, now: Cycle) -> Cycle {
        let mut horizon = now;
        for w in &self.warps {
            let rem = w.trace.len().saturating_sub(w.pc) as u64;
            let earliest = if rem == 0 {
                if w.outstanding > 0 {
                    now
                } else {
                    w.ready_at.max(now)
                }
            } else {
                w.ready_at.max(now + rem.div_ceil(2))
            };
            horizon = horizon.max(earliest);
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::msg::L2Request;
    use crate::types::{LogicalAtom, PhysLoc};

    fn mk_sm(traces: Vec<WarpTrace>) -> SmCore {
        let cfg = GpuConfig::tiny();
        let l1 = L1Cache::new(SmId(0), &cfg.l1);
        SmCore::new(SmId(0), &cfg.core, l1, traces)
    }

    fn identity(atom: LogicalAtom) -> PhysLoc {
        PhysLoc::new(0, atom.0)
    }

    /// Runs the SM, answering every L2 read after `mem_latency` cycles.
    fn run_with_memory(sm: &mut SmCore, limit: Cycle, mem_latency: Cycle) -> Cycle {
        let mut pending: Vec<(Cycle, L2Request)> = Vec::new();
        for now in 0..limit {
            // Deliver matured responses.
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, req) = pending.remove(i);
                    sm.l1.accept_response(crate::msg::L2Response {
                        loc: req.loc,
                        dest: req.src,
                        l1_mshr: req.l1_mshr,
                    });
                } else {
                    i += 1;
                }
            }
            let mut newly = Vec::new();
            sm.tick(now, &mut identity, &mut |req| {
                if !req.kind.is_write() {
                    newly.push((now + mem_latency, req));
                }
                true
            });
            pending.extend(newly);
            if sm.all_warps_done(now) && pending.is_empty() {
                return now;
            }
        }
        panic!("SM did not finish within {limit} cycles");
    }

    #[test]
    fn compute_only_warp_finishes_in_sum_of_latencies() {
        let trace = WarpTrace::new(vec![
            WarpOp::Compute { cycles: 10 },
            WarpOp::Compute { cycles: 5 },
        ]);
        let mut sm = mk_sm(vec![trace]);
        let end = run_with_memory(&mut sm, 1000, 1);
        // Issue at 0, ready at 10, issue at 10, ready at 15.
        assert!((14..=16).contains(&end), "end={end}");
        assert_eq!(sm.stats().issued_ops, 2);
    }

    #[test]
    fn load_blocks_until_response() {
        let trace = WarpTrace::new(vec![
            WarpOp::Load {
                atoms: vec![LogicalAtom(0)],
            },
            WarpOp::Compute { cycles: 1 },
        ]);
        let mut sm = mk_sm(vec![trace]);
        let end = run_with_memory(&mut sm, 1000, 50);
        assert!(end >= 50, "load latency not respected: end={end}");
    }

    #[test]
    fn stores_are_posted() {
        let trace = WarpTrace::new(vec![
            WarpOp::Store {
                atoms: vec![LogicalAtom(0)],
                full: true,
            },
            WarpOp::Compute { cycles: 1 },
        ]);
        let mut sm = mk_sm(vec![trace]);
        // Even with huge memory latency the warp never waits on the store.
        let end = run_with_memory(&mut sm, 100, 10_000);
        assert!(end < 20, "store must not block: end={end}");
    }

    #[test]
    fn multiple_warps_overlap_memory_latency() {
        // 4 warps each loading a distinct atom with 100-cycle memory: TLP
        // should overlap the latencies rather than serializing 4 x 100.
        let mk = |i: u64| {
            WarpTrace::new(vec![WarpOp::Load {
                atoms: vec![LogicalAtom(i * 1000)],
            }])
        };
        let mut sm = mk_sm((0..4).map(mk).collect());
        let end = run_with_memory(&mut sm, 10_000, 100);
        assert!(end < 200, "latency not overlapped: end={end}");
    }

    #[test]
    fn gto_prefers_current_warp() {
        // Warp 0: two compute ops; warp 1: one compute op. GTO sticks with
        // warp 0 until it stalls.
        let t0 = WarpTrace::new(vec![
            WarpOp::Compute { cycles: 0 },
            WarpOp::Compute { cycles: 0 },
        ]);
        let t1 = WarpTrace::new(vec![WarpOp::Compute { cycles: 0 }]);
        let mut sm = mk_sm(vec![t0, t1]);
        sm.tick(0, &mut identity, &mut |_| true);
        sm.tick(1, &mut identity, &mut |_| true);
        // After two cycles warp 0 (cursor) should have issued both its ops.
        assert_eq!(sm.warps[0].pc, 2);
        assert_eq!(sm.warps[1].pc, 0);
    }

    #[test]
    fn round_robin_alternates() {
        let mk = || {
            WarpTrace::new(vec![
                WarpOp::Compute { cycles: 0 },
                WarpOp::Compute { cycles: 0 },
            ])
        };
        let cfg = GpuConfig::tiny();
        let mut core_cfg = cfg.core;
        core_cfg.scheduler = SchedulerPolicy::RoundRobin;
        let l1 = L1Cache::new(SmId(0), &cfg.l1);
        let mut sm = SmCore::new(SmId(0), &core_cfg, l1, vec![mk(), mk()]);
        sm.tick(0, &mut identity, &mut |_| true);
        sm.tick(1, &mut identity, &mut |_| true);
        assert_eq!(sm.warps[0].pc, 1);
        assert_eq!(sm.warps[1].pc, 1);
    }

    #[test]
    fn lsu_structural_hazard_serializes_memory_ops() {
        // Two warps with multi-atom loads: the second cannot start
        // streaming until the first finishes dispatching.
        let mk = |base: u64| {
            WarpTrace::new(vec![WarpOp::Load {
                atoms: (0..4).map(|i| LogicalAtom(base + i * 1000)).collect(),
            }])
        };
        let mut sm = mk_sm(vec![mk(0), mk(100_000)]);
        let mut sent_at: Vec<Cycle> = Vec::new();
        for now in 0..20 {
            sm.tick(now, &mut identity, &mut |req| {
                if !req.kind.is_write() {
                    sent_at.push(now);
                    let _ = req;
                }
                true
            });
        }
        // 8 accesses, at most one per cycle.
        assert_eq!(sent_at.len(), 8);
        for w in sent_at.windows(2) {
            assert!(w[1] > w[0], "more than one LSU access in a cycle");
        }
    }

    #[test]
    fn stall_reasons_partition_idle_cycles() {
        // One warp blocked on a long load: every idle cycle while it waits
        // is a "no ready warp" stall. Two warps with back-to-back memory
        // ops add "LSU busy" structural stalls.
        let t0 = WarpTrace::new(vec![WarpOp::Load {
            atoms: (0..4).map(|i| LogicalAtom(i * 1000)).collect(),
        }]);
        let t1 = WarpTrace::new(vec![WarpOp::Load {
            atoms: (0..4).map(|i| LogicalAtom(100_000 + i * 1000)).collect(),
        }]);
        let mut sm = mk_sm(vec![t0, t1]);
        let _ = run_with_memory(&mut sm, 10_000, 100);
        let s = sm.stats();
        assert!(s.stall_no_ready_warp > 0, "{s:?}");
        assert!(s.stall_lsu_busy > 0, "{s:?}");
        assert_eq!(
            s.idle_cycles,
            s.stall_no_ready_warp + s.stall_lsu_busy,
            "{s:?}"
        );
    }

    #[test]
    fn empty_sm_is_done_immediately() {
        let sm = mk_sm(vec![]);
        assert!(sm.all_warps_done(0));
        assert_eq!(sm.total_trace_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "more traces than warp slots")]
    fn rejects_too_many_traces() {
        let cfg = GpuConfig::tiny();
        let traces = (0..cfg.core.warps_per_sm + 1)
            .map(|_| WarpTrace::new(vec![WarpOp::Compute { cycles: 1 }]))
            .collect();
        let l1 = L1Cache::new(SmId(0), &cfg.l1);
        let _ = SmCore::new(SmId(0), &cfg.core, l1, traces);
    }
}
