//! Per-channel memory controller: FR-FCFS scheduling over the DRAM model.
//!
//! Each controller owns one [`DramChannel`] and two bounded queues (reads
//! and writes). Scheduling is First-Ready, First-Come-First-Served within a
//! configurable scan window: row-buffer hits that can issue this cycle are
//! preferred; otherwise the oldest issuable request goes. Writes are
//! buffered and drained in batches between the configured watermarks, the
//! standard technique for amortizing bus-turnaround penalties.
//!
//! ECC transactions travel through the same queues as data (that is the
//! whole point of the inline-ECC performance problem) and are distinguished
//! only by their [`TrafficClass`] for accounting and by their [`DramTag`]
//! for completion routing.

use crate::config::MemConfig;
use crate::dram::{DramChannel, MapOrder, RowOutcome};
use crate::types::{Cycle, TrafficClass};
use ccraft_telemetry::profiler::{MemoStats, PhaseTimer};
use ccraft_telemetry::Histogram;
use std::collections::VecDeque;

/// Self-profiling state for one controller, attached by
/// [`MemCtrl::enable_profile`]. Observation only: nothing in here feeds
/// back into scheduling, and with the profile absent every probe site is
/// a single branch.
#[derive(Debug, Clone, Default)]
pub struct McProfile {
    /// Scan-sleep memo effectiveness: hit = a busy tick short-circuited
    /// by `scan_asleep_until`, miss = a tick that actually scanned.
    pub scan_memo: MemoStats,
    /// Window entries examined per performed first-ready scan.
    pub scan_depth: Histogram,
    /// Host nanoseconds inside `tick` (set by the owning slice, which
    /// times the call; includes the FR-FCFS section below).
    pub host_tick_ns: u64,
    /// Host nanoseconds inside the FR-FCFS pick/issue section (DRAM
    /// bank-state probes + issue bookkeeping).
    pub host_sched_ns: u64,
}

/// Completion routing information carried by a DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramTag {
    /// Demand data read feeding L2 MSHR `mshr`.
    DemandData {
        /// Slice-local MSHR index awaiting this data.
        mshr: usize,
    },
    /// Demand ECC read gating the fill of L2 MSHR `mshr`.
    DemandEcc {
        /// Slice-local MSHR index awaiting this ECC atom.
        mshr: usize,
    },
    /// Read-modify-write ECC read; fire-and-forget for timing purposes.
    RmwRead,
    /// Any write (data or ECC); no completion routing.
    Write,
}

/// One DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Channel-local physical atom.
    pub atom: u64,
    /// Traffic class for accounting.
    pub class: TrafficClass,
    /// Completion routing.
    pub tag: DramTag,
}

impl DramRequest {
    /// `true` when the transaction is a write.
    pub fn is_write(&self) -> bool {
        !self.class.is_read()
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: DramRequest,
    enqueued: Cycle,
    /// Decomposed once at enqueue: the FR-FCFS scan probes bank state for
    /// every window entry every cycle, and the divisions in
    /// [`DramAddressMap::decompose`] dominate that loop if done inline.
    coord: crate::dram::DramCoord,
}

/// A completed read, handed back to the L2 slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub req: DramRequest,
    /// Cycle at which data became available.
    pub done: Cycle,
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McStats {
    /// Transactions per class: indexed by [`TrafficClass::ALL`] order.
    pub count: [u64; 4],
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-empty accesses.
    pub row_empties: u64,
    /// Row conflicts.
    pub row_conflicts: u64,
    /// Sum of read queueing+service latency (enqueue to data).
    pub read_latency_sum: u64,
    /// Number of reads in the latency sum.
    pub read_latency_count: u64,
    /// Cycles in which at least one queue was non-empty.
    pub busy_cycles: u64,
    /// All-bank refresh operations performed.
    pub refreshes: u64,
    /// Row activations (see [`DramChannel`]).
    pub activates: u64,
    /// Row precharges.
    pub precharges: u64,
}

impl McStats {
    /// Transactions of one class.
    pub fn class_count(&self, class: TrafficClass) -> u64 {
        self.count[class.index()]
    }

    /// Mean read latency in cycles (0 when no reads completed).
    pub fn mean_read_latency(&self) -> f64 {
        if self.read_latency_count == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.read_latency_count as f64
        }
    }

    /// Row-hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_empties + self.row_conflicts;
        if total == 0 {
            1.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// One DRAM transaction as issued to the channel, for trace-event export.
/// Only collected when [`MemCtrl::enable_issue_trace`] was called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// Channel-local atom.
    pub atom: u64,
    /// Traffic class of the transaction.
    pub class: TrafficClass,
    /// Cycle the command issued.
    pub start: Cycle,
    /// Cycle the last data beat was on the bus.
    pub end: Cycle,
    /// Row-buffer outcome.
    pub row: RowOutcome,
    /// Cycles the request waited in the controller queue before issue.
    pub queued: Cycle,
}

/// The per-channel memory controller.
#[derive(Debug)]
pub struct MemCtrl {
    chan: DramChannel,
    read_q: VecDeque<Pending>,
    write_q: VecDeque<Pending>,
    read_cap: usize,
    write_cap: usize,
    drain_high: usize,
    drain_low: usize,
    window: usize,
    draining: bool,
    /// Scan-skip memo: until this cycle, every window entry is provably
    /// blocked (bank/precharge/bus constraint not yet expired), so
    /// `pick_and_issue` scans are futile and skipped. Reset on every
    /// push (new entries may issue immediately) and recomputed each time
    /// a full scan of both queues fails; capped at the next refresh,
    /// the only event that changes bank state without an issue.
    scan_asleep_until: Cycle,
    /// (data_ready, completion) pairs not yet collected.
    inflight: Vec<Completion>,
    /// Minimum `done` over `inflight` (`Cycle::MAX` when empty), so the
    /// per-cycle completion pop can skip the scan while nothing is due.
    earliest_done: Cycle,
    stats: McStats,
    /// Oracle counter: read requests accepted (conservation check).
    #[cfg(feature = "check-invariants")]
    pushed_reads: u64,
    /// Oracle counter: write requests accepted (conservation check).
    #[cfg(feature = "check-invariants")]
    pushed_writes: u64,
    /// Oracle counter: completions handed back (conservation check).
    #[cfg(feature = "check-invariants")]
    popped_reads: u64,
    /// Telemetry: read-latency histogram (enqueue to data), when enabled.
    read_lat_hist: Option<Histogram>,
    /// Telemetry: write service-latency histogram, when enabled.
    write_lat_hist: Option<Histogram>,
    /// Telemetry: per-transaction issue events, when enabled.
    issue_trace: Option<Vec<IssueEvent>>,
    /// Self-profiling state, when enabled (boxed: cold by default).
    profile: Option<Box<McProfile>>,
}

impl MemCtrl {
    /// Creates a controller for one channel.
    pub fn new(mem: &MemConfig, order: MapOrder) -> Self {
        MemCtrl {
            chan: DramChannel::new(mem, order),
            read_q: VecDeque::with_capacity(mem.read_queue),
            write_q: VecDeque::with_capacity(mem.write_queue),
            read_cap: mem.read_queue,
            write_cap: mem.write_queue,
            drain_high: mem.write_drain_high,
            drain_low: mem.write_drain_low,
            window: mem.sched_window,
            draining: false,
            scan_asleep_until: 0,
            inflight: Vec::new(),
            earliest_done: Cycle::MAX,
            stats: McStats::default(),
            #[cfg(feature = "check-invariants")]
            pushed_reads: 0,
            #[cfg(feature = "check-invariants")]
            pushed_writes: 0,
            #[cfg(feature = "check-invariants")]
            popped_reads: 0,
            read_lat_hist: None,
            write_lat_hist: None,
            issue_trace: None,
            profile: None,
        }
    }

    /// Turns on self-profiling (scan-memo hit rates, scan-depth
    /// histogram, host-time attribution). Observation only.
    pub fn enable_profile(&mut self) {
        self.profile = Some(Box::default());
    }

    /// True when self-profiling is on (the owning slice checks this
    /// before timing the `tick` call).
    pub fn profile_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Adds externally measured host time for this controller's `tick`
    /// (no-op when profiling is off).
    pub fn profile_add_tick_ns(&mut self, ns: u64) {
        if let Some(p) = &mut self.profile {
            p.host_tick_ns = p.host_tick_ns.saturating_add(ns);
        }
    }

    /// The collected self-profile, when enabled.
    pub fn profile(&self) -> Option<&McProfile> {
        self.profile.as_deref()
    }

    /// Turns on the read/write latency histograms. Telemetry only; has no
    /// effect on scheduling or timing.
    pub fn enable_latency_hist(&mut self) {
        self.read_lat_hist = Some(Histogram::new());
        self.write_lat_hist = Some(Histogram::new());
    }

    /// The read-latency histogram, when enabled and non-empty.
    pub fn read_latency_hist(&self) -> Option<&Histogram> {
        self.read_lat_hist.as_ref()
    }

    /// The write service-latency histogram, when enabled.
    pub fn write_latency_hist(&self) -> Option<&Histogram> {
        self.write_lat_hist.as_ref()
    }

    /// Turns on per-transaction issue-event collection (drain with
    /// [`take_issue_events`](Self::take_issue_events)).
    pub fn enable_issue_trace(&mut self) {
        self.issue_trace = Some(Vec::new());
    }

    /// Drains collected issue events (empty when tracing is off).
    pub fn take_issue_events(&mut self) -> Vec<IssueEvent> {
        match &mut self.issue_trace {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Current read-queue depth (telemetry accessor).
    pub fn read_q_len(&self) -> usize {
        self.read_q.len()
    }

    /// Current write-queue depth (telemetry accessor).
    pub fn write_q_len(&self) -> usize {
        self.write_q.len()
    }

    /// Space available in the read queue.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.read_cap
    }

    /// Space available in the write queue.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.write_cap
    }

    /// Free read-queue slots (for all-or-nothing multi-request issue).
    pub fn read_free(&self) -> usize {
        self.read_cap - self.read_q.len()
    }

    /// Free write-queue slots.
    pub fn write_free(&self) -> usize {
        self.write_cap - self.write_q.len()
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the corresponding queue is full; callers must check
    /// [`can_accept_read`](Self::can_accept_read) /
    /// [`can_accept_write`](Self::can_accept_write) first.
    pub fn push(&mut self, req: DramRequest, now: Cycle) {
        let coord = self.chan.address_map().decompose(req.atom);
        // A fresh entry may be issueable sooner than the sleeping scan's
        // bound. Fold in its own blocked-until (valid because pushes do
        // not touch channel state) instead of resetting the memo: in the
        // steady state a request arrives almost every cycle, and a full
        // reset would make the memo useless exactly when it matters.
        if self.scan_asleep_until > now {
            let entry_bound = self.chan.issue_blocked_until(coord, req.is_write(), now);
            self.scan_asleep_until = self.scan_asleep_until.min(entry_bound.max(now));
        }
        let pending = Pending {
            req,
            enqueued: now,
            coord,
        };
        if req.is_write() {
            assert!(self.can_accept_write(), "write queue overflow");
            self.write_q.push_back(pending);
            #[cfg(feature = "check-invariants")]
            {
                self.pushed_writes += 1;
            }
        } else {
            assert!(self.can_accept_read(), "read queue overflow");
            self.read_q.push_back(pending);
            #[cfg(feature = "check-invariants")]
            {
                self.pushed_reads += 1;
            }
        }
    }

    /// `true` when all queues and in-flight transactions are empty.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.inflight.is_empty()
    }

    /// Outstanding transactions (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.read_q.len() + self.write_q.len() + self.inflight.len()
    }

    fn pick_and_issue(&mut self, now: Cycle, from_writes: bool) -> bool {
        let q = if from_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        if q.is_empty() {
            return false;
        }
        let window = self.window.min(q.len());
        // First-ready: prefer the oldest row hit that can issue now, else
        // the oldest request of any kind that can issue now.
        let mut fallback: Option<usize> = None;
        let mut chosen: Option<usize> = None;
        for (i, pending) in q.iter().enumerate().take(window) {
            match self.chan.row_outcome_at(pending.coord) {
                RowOutcome::Hit => {
                    chosen = Some(i);
                    break;
                }
                _ if fallback.is_none() => fallback = Some(i),
                _ => {}
            }
        }
        if let Some(p) = &mut self.profile {
            // Entries examined: the scan stops at the first row hit.
            p.scan_depth.record(match chosen {
                Some(i) => (i + 1) as u64,
                None => window as u64,
            });
        }
        // Try the row-hit candidate first, then the oldest request, then
        // the rest of the window in age order. The two candidates are
        // distinct by construction (`chosen` is a hit, `fallback` only
        // records non-hits), so a plain skip in the final scan reproduces
        // the old dedup'd order without allocating.
        if let Some(i) = chosen {
            if self.try_issue_at(now, from_writes, i) {
                return true;
            }
        }
        if let Some(i) = fallback {
            if self.try_issue_at(now, from_writes, i) {
                return true;
            }
        }
        for i in 0..window {
            if Some(i) == chosen || Some(i) == fallback {
                continue;
            }
            if self.try_issue_at(now, from_writes, i) {
                return true;
            }
        }
        false
    }

    /// Attempts to issue queue entry `i`; on success removes it and does
    /// all completion/stat/trace bookkeeping.
    fn try_issue_at(&mut self, now: Cycle, from_writes: bool, i: usize) -> bool {
        let q = if from_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        let pending = q[i];
        // Mirror cross-check: `issue_blocked_until` must agree with
        // `try_issue_at` in both directions, on every attempt. This is
        // the load-bearing equivalence behind the scan-skip memo and the
        // idle fast-forward — a divergent mirror silently changes timing.
        #[cfg(feature = "check-invariants")]
        let predicted = self
            .chan
            .issue_blocked_until(pending.coord, pending.req.is_write(), now);
        let Some(info) = self
            .chan
            .try_issue_at(pending.coord, pending.req.is_write(), now)
        else {
            #[cfg(feature = "check-invariants")]
            assert!(
                predicted > now,
                "invariant violated: issue_blocked_until said atom {} was \
                 issueable at {now} but try_issue_at refused",
                pending.req.atom
            );
            return false;
        };
        #[cfg(feature = "check-invariants")]
        assert!(
            predicted <= now,
            "invariant violated: issue_blocked_until said atom {} was blocked \
             until {predicted} but try_issue_at issued at {now}",
            pending.req.atom
        );
        let q = if from_writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        q.remove(i);
        self.stats.count[pending.req.class.index()] += 1;
        if !pending.req.is_write() {
            self.stats.read_latency_sum += info.data_ready - pending.enqueued;
            self.stats.read_latency_count += 1;
            if let Some(h) = &mut self.read_lat_hist {
                h.record(info.data_ready - pending.enqueued);
            }
            self.inflight.push(Completion {
                req: pending.req,
                done: info.data_ready,
            });
            self.earliest_done = self.earliest_done.min(info.data_ready);
        } else if let Some(h) = &mut self.write_lat_hist {
            h.record(info.data_ready - pending.enqueued);
        }
        if let Some(buf) = &mut self.issue_trace {
            buf.push(IssueEvent {
                atom: pending.req.atom,
                class: pending.req.class,
                start: now,
                end: info.data_ready,
                row: info.row_outcome,
                queued: now - pending.enqueued,
            });
        }
        true
    }

    /// Advances the controller one cycle: refresh bookkeeping, write-drain
    /// hysteresis, and at most one command issued.
    pub fn tick(&mut self, now: Cycle) {
        self.chan.tick_refresh(now);
        #[cfg(feature = "check-invariants")]
        self.assert_conserved();
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            self.stats.busy_cycles += 1;
        }
        // Write-drain hysteresis.
        if self.write_q.len() >= self.drain_high {
            self.draining = true;
        } else if self.write_q.len() <= self.drain_low {
            self.draining = false;
        }
        // Scan-skip: while every window entry is provably blocked, both
        // pick_and_issue calls below would fail without side effects, so
        // skip them entirely (see `scan_asleep_until`).
        if now < self.scan_asleep_until {
            if let Some(p) = &mut self.profile {
                if !self.read_q.is_empty() || !self.write_q.is_empty() {
                    p.scan_memo.hit();
                }
            }
            #[cfg(feature = "check-invariants")]
            self.assert_scan_asleep(now);
            return;
        }
        let mut sched_t = PhaseTimer::start(self.profile.is_some());
        if let Some(p) = &mut self.profile {
            if !self.read_q.is_empty() || !self.write_q.is_empty() {
                p.scan_memo.miss();
            }
        }
        let serve_writes = self.draining || self.read_q.is_empty();
        let issued = if serve_writes {
            // Opportunistically serve a read if no write could issue.
            self.pick_and_issue(now, true) || self.pick_and_issue(now, false)
        } else {
            self.pick_and_issue(now, false) || self.pick_and_issue(now, true)
        };
        if !issued && (!self.read_q.is_empty() || !self.write_q.is_empty()) {
            self.scan_asleep_until = self.earliest_possible_issue(now);
        }
        if let Some(p) = &mut self.profile {
            p.host_sched_ns = p.host_sched_ns.saturating_add(sched_t.lap());
        }
    }

    /// Scan-sleep verification: while `scan_asleep_until` claims every
    /// window entry is blocked, re-scan both queues through the
    /// side-effect-free mirror and panic if anything could in fact issue
    /// (the mirror itself is cross-checked against `try_issue_at` on
    /// every real attempt, so this closes the loop on the memo).
    #[cfg(feature = "check-invariants")]
    fn assert_scan_asleep(&self, now: Cycle) {
        for p in self.read_q.iter().take(self.window) {
            assert!(
                self.chan.issue_blocked_until(p.coord, false, now) > now,
                "invariant violated: scan asleep until {} but read atom {} is \
                 issueable at {now}",
                self.scan_asleep_until,
                p.req.atom
            );
        }
        for p in self.write_q.iter().take(self.window) {
            assert!(
                self.chan.issue_blocked_until(p.coord, true, now) > now,
                "invariant violated: scan asleep until {} but write atom {} is \
                 issueable at {now}",
                self.scan_asleep_until,
                p.req.atom
            );
        }
    }

    /// Queue-capacity bounds, completion-memo coherence, and request
    /// conservation, checked every tick.
    #[cfg(feature = "check-invariants")]
    fn assert_conserved(&self) {
        assert!(
            self.read_q.len() <= self.read_cap && self.write_q.len() <= self.write_cap,
            "invariant violated: controller queue over capacity"
        );
        let min_done = self
            .inflight
            .iter()
            .map(|c| c.done)
            .min()
            .unwrap_or(Cycle::MAX);
        assert!(
            self.earliest_done <= min_done,
            "invariant violated: earliest_done memo ({}) is later than an \
             in-flight completion ({min_done}) — completions would be delayed",
            self.earliest_done
        );
        let mut issued_reads = 0u64;
        let mut issued_writes = 0u64;
        for class in TrafficClass::ALL {
            if class.is_read() {
                issued_reads += self.stats.count[class.index()];
            } else {
                issued_writes += self.stats.count[class.index()];
            }
        }
        assert_eq!(
            self.pushed_reads,
            self.read_q.len() as u64 + self.inflight.len() as u64 + self.popped_reads,
            "invariant violated: read conservation (pushed != queued + \
             in flight + completed)"
        );
        assert_eq!(
            issued_reads,
            self.inflight.len() as u64 + self.popped_reads,
            "invariant violated: issued reads do not match in-flight plus \
             completed"
        );
        assert_eq!(
            self.pushed_writes,
            self.write_q.len() as u64 + issued_writes,
            "invariant violated: write conservation (pushed != queued + issued)"
        );
    }

    /// Conservative lower bound on the next cycle any window entry could
    /// issue, given that a full scan just failed at `now`. Exact under
    /// the constraint model: a failed attempt changes no state, and every
    /// entry's first-failing constraint holds until its reported expiry
    /// unless an issue (none can happen before the bound, by induction)
    /// or a refresh (the bound is capped at it) intervenes.
    fn earliest_possible_issue(&self, now: Cycle) -> Cycle {
        let mut bound = self.chan.next_refresh_at();
        for p in self.read_q.iter().take(self.window) {
            bound = bound.min(self.chan.issue_blocked_until(p.coord, false, now));
        }
        for p in self.write_q.iter().take(self.window) {
            bound = bound.min(self.chan.issue_blocked_until(p.coord, true, now));
        }
        // Never stall the scan at or before `now` (defensive: a bound in
        // the past would otherwise disable the memo's monotone progress).
        bound.max(now + 1)
    }

    /// Collects read completions whose data is available by `now`.
    pub fn pop_completions(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        self.pop_completions_into(now, &mut done);
        done
    }

    /// Like [`pop_completions`](Self::pop_completions) but fills a
    /// caller-owned buffer (cleared first), so the per-cycle hot path can
    /// reuse one allocation.
    pub fn pop_completions_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.clear();
        if now < self.earliest_done {
            return;
        }
        let mut i = 0;
        let mut next = Cycle::MAX;
        while i < self.inflight.len() {
            if self.inflight[i].done <= now {
                out.push(self.inflight.swap_remove(i));
            } else {
                next = next.min(self.inflight[i].done);
                i += 1;
            }
        }
        self.earliest_done = next;
        #[cfg(feature = "check-invariants")]
        {
            self.popped_reads += out.len() as u64;
        }
        // Deterministic order regardless of swap_remove shuffling.
        out.sort_by_key(|c| (c.done, c.req.atom));
    }

    /// Earliest cycle at which this controller has (or may have) work, for
    /// idle fast-forwarding. `Some(c)` with `c <= now` means the
    /// controller is busy right now (a queue is non-empty); `Some(c)` with
    /// `c > now` is the earliest in-flight read completion; `None` means
    /// fully idle with nothing in flight. Refresh needs no event: the
    /// channel catches up lazily and lands in the same state as long as no
    /// request issues in between, which queue-emptiness guarantees.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            return Some(now);
        }
        (self.earliest_done != Cycle::MAX).then_some(self.earliest_done)
    }

    /// Controller statistics (row counters folded in from the channel).
    pub fn stats(&self) -> McStats {
        let mut s = self.stats;
        s.row_hits = self.chan.row_hits;
        s.row_empties = self.chan.row_empties;
        s.row_conflicts = self.chan.row_conflicts;
        s.refreshes = self.chan.refreshes;
        s.activates = self.chan.activates;
        s.precharges = self.chan.precharges;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn ctrl() -> MemCtrl {
        MemCtrl::new(&GpuConfig::tiny().mem, MapOrder::RoBaCo)
    }

    fn read(atom: u64) -> DramRequest {
        DramRequest {
            atom,
            class: TrafficClass::DataRead,
            tag: DramTag::DemandData { mshr: 0 },
        }
    }

    fn write(atom: u64) -> DramRequest {
        DramRequest {
            atom,
            class: TrafficClass::DataWrite,
            tag: DramTag::Write,
        }
    }

    fn run(mc: &mut MemCtrl, from: Cycle, to: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in from..to {
            mc.tick(now);
            done.extend(mc.pop_completions(now));
        }
        done
    }

    #[test]
    fn single_read_completes() {
        let mut mc = ctrl();
        mc.push(read(0), 0);
        let done = run(&mut mc, 0, 40);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].req.atom, 0);
        // tRCD(5) + CAS(5) + burst(1) = issue at 0, data at 11.
        assert_eq!(done[0].done, 11);
        assert!(mc.is_idle());
    }

    #[test]
    fn row_hits_preferred_over_older_conflict() {
        let mut mc = ctrl();
        // Open row 0 of bank 0.
        mc.push(read(0), 0);
        let _ = run(&mut mc, 0, 15);
        // Conflict request (hashed bank 0, row 1 = atom 320) enqueued first, then a
        // row hit (atom 1). FR-FCFS issues the hit first.
        mc.push(read(320), 15);
        mc.push(read(1), 15);
        let done = run(&mut mc, 15, 80);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].req.atom, 1, "row hit should complete first");
        assert_eq!(done[1].req.atom, 320);
    }

    #[test]
    fn writes_buffered_until_watermark() {
        let mut mc = ctrl();
        // tiny(): drain_high=12. Pushing 3 writes with pending reads keeps
        // the controller serving reads; writes drain only when reads dry up.
        mc.push(write(0), 0);
        mc.push(write(1), 0);
        mc.push(read(64), 0);
        // Read issues first (cycle 0) and completes at tRCD+CAS+burst = 11.
        let done = run(&mut mc, 0, 14);
        assert_eq!(done.len(), 1, "read served first");
        // After reads dry up, writes drain opportunistically.
        let _ = run(&mut mc, 14, 80);
        assert!(mc.is_idle());
        let s = mc.stats();
        assert_eq!(s.class_count(TrafficClass::DataWrite), 2);
        assert_eq!(s.class_count(TrafficClass::DataRead), 1);
    }

    #[test]
    fn drain_mode_batches_writes() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.write_drain_high = 4;
        cfg.mem.write_drain_low = 1;
        let mut mc = MemCtrl::new(&cfg.mem, MapOrder::RoBaCo);
        for i in 0..5 {
            mc.push(write(i), 0);
        }
        mc.push(read(64), 0);
        // With the write queue above the watermark the controller enters
        // drain mode: the very first transaction issued is a write, even
        // though a read is waiting.
        mc.tick(0);
        let s = mc.stats();
        assert_eq!(s.class_count(TrafficClass::DataWrite), 1, "{s:?}");
        assert_eq!(s.class_count(TrafficClass::DataRead), 0, "{s:?}");
        // And the whole batch eventually drains.
        for now in 1..120 {
            mc.tick(now);
            let _ = mc.pop_completions(now);
        }
        assert!(mc.is_idle());
        assert_eq!(mc.stats().class_count(TrafficClass::DataWrite), 5);
    }

    #[test]
    fn queue_capacity_respected() {
        let mut mc = ctrl();
        let cap = GpuConfig::tiny().mem.read_queue;
        for i in 0..cap as u64 {
            assert!(mc.can_accept_read());
            mc.push(read(i), 0);
        }
        assert!(!mc.can_accept_read());
        assert!(mc.can_accept_write());
    }

    #[test]
    #[should_panic(expected = "read queue overflow")]
    fn push_past_capacity_panics() {
        let mut mc = ctrl();
        for i in 0..=GpuConfig::tiny().mem.read_queue as u64 {
            mc.push(read(i), 0);
        }
    }

    #[test]
    fn streaming_reads_are_mostly_row_hits() {
        let mut mc = ctrl();
        let mut now = 0;
        let mut completed = 0;
        let mut next = 0u64;
        while completed < 64 {
            while next < 64 && mc.can_accept_read() {
                mc.push(read(next), now);
                next += 1;
            }
            mc.tick(now);
            completed += mc.pop_completions(now).len();
            now += 1;
            assert!(now < 10_000, "livelock");
        }
        let s = mc.stats();
        assert_eq!(s.row_empties, 1);
        assert_eq!(s.row_conflicts, 0);
        assert_eq!(s.row_hits, 63);
        assert!(s.row_hit_rate() > 0.98);
    }

    #[test]
    fn mean_read_latency_tracks_queueing() {
        let mut mc = ctrl();
        mc.push(read(0), 0);
        mc.push(read(320), 0); // conflict: will wait
        let _ = run(&mut mc, 0, 100);
        let s = mc.stats();
        assert_eq!(s.read_latency_count, 2);
        assert!(s.mean_read_latency() > 11.0);
    }

    #[test]
    fn ecc_traffic_counted_separately() {
        let mut mc = ctrl();
        mc.push(
            DramRequest {
                atom: 5,
                class: TrafficClass::EccRead,
                tag: DramTag::RmwRead,
            },
            0,
        );
        mc.push(
            DramRequest {
                atom: 6,
                class: TrafficClass::EccWrite,
                tag: DramTag::Write,
            },
            0,
        );
        let _ = run(&mut mc, 0, 60);
        let s = mc.stats();
        assert_eq!(s.class_count(TrafficClass::EccRead), 1);
        assert_eq!(s.class_count(TrafficClass::EccWrite), 1);
        assert_eq!(s.class_count(TrafficClass::DataRead), 0);
    }

    #[test]
    fn latency_hist_matches_sum_when_enabled() {
        let mut mc = ctrl();
        mc.enable_latency_hist();
        mc.push(read(0), 0);
        mc.push(read(320), 0); // conflict: queues behind the first read
        mc.push(write(64), 0);
        let _ = run(&mut mc, 0, 120);
        let s = mc.stats();
        let h = mc.read_latency_hist().expect("enabled");
        assert_eq!(h.count, s.read_latency_count);
        assert_eq!(h.sum, s.read_latency_sum);
        assert!(h.p99() >= h.p50());
        assert!(h.p50() >= 1);
        let w = mc.write_latency_hist().expect("enabled");
        assert_eq!(w.count, 1);
    }

    #[test]
    fn issue_trace_records_every_transaction() {
        let mut mc = ctrl();
        mc.enable_issue_trace();
        mc.push(read(0), 0);
        mc.push(write(64), 0);
        let mut events = Vec::new();
        for now in 0..80 {
            mc.tick(now);
            let _ = mc.pop_completions(now);
            events.extend(mc.take_issue_events());
        }
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.end > e.start));
        assert!(events.iter().any(|e| e.class == TrafficClass::DataRead));
        assert!(events.iter().any(|e| e.class == TrafficClass::DataWrite));
        // Disabled controller yields nothing.
        let mut quiet = ctrl();
        quiet.push(read(0), 0);
        let _ = run(&mut quiet, 0, 40);
        assert!(quiet.take_issue_events().is_empty());
        assert!(quiet.read_latency_hist().is_none());
    }

    #[test]
    fn completions_sorted_by_time() {
        let mut mc = ctrl();
        mc.push(read(64), 0); // bank 1
        mc.push(read(0), 0); // bank 0
        let done = run(&mut mc, 0, 60);
        assert_eq!(done.len(), 2);
        assert!(done[0].done <= done[1].done);
    }
}
