//! A generic set-associative, sectored cache model.
//!
//! Used for the per-SM L1, the per-channel L2 slice, and (by the protection
//! crate) dedicated ECC caches and fragment stores. The model tracks tags,
//! per-sector valid/dirty bits and LRU state — no data contents, since this
//! is a timing simulator (functional ECC behaviour is verified separately).
//!
//! A *line* groups `atoms_per_line` consecutive 32-byte atoms under one tag
//! (4 for the GPU caches, 1 for ECC-atom-granularity structures). Addresses
//! are channel-local physical atom indices.

use std::fmt;

/// Result of a read lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The requested atom is valid in the cache.
    Hit,
    /// The line is resident but this sector is not valid (sector miss).
    SectorMiss,
    /// No line with this tag is resident.
    LineMiss,
}

/// A victim evicted to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// First atom of the evicted line.
    pub base_atom: u64,
    /// Atom indices (absolute) that were valid and dirty.
    pub dirty_atoms: Vec<u64>,
}

/// Aggregate counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read lookups that hit a valid sector.
    pub read_hits: u64,
    /// Read lookups that missed (sector or line).
    pub read_misses: u64,
    /// Write lookups that found the sector valid or the line resident.
    pub write_hits: u64,
    /// Write lookups that found no resident line.
    pub write_misses: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Evictions that carried at least one dirty sector.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Read hit rate in [0, 1]; 1 when there were no reads.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            1.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    /// Line-granularity tag (atom / atoms_per_line); `u64::MAX` = invalid.
    tag: u64,
    valid: u8,
    dirty: u8,
    last_use: u64,
}

const INVALID: u64 = u64::MAX;

impl Line {
    fn empty() -> Self {
        Line {
            tag: INVALID,
            valid: 0,
            dirty: 0,
            last_use: 0,
        }
    }
}

/// The cache model. See the module docs for the addressing convention.
#[derive(Clone)]
pub struct SectorCache {
    sets: u64,
    ways: u32,
    atoms_per_line: u64,
    /// XOR-fold higher tag bits into the set index (GPU L2s hash their set
    /// selection; essential when the address stream is strided, e.g. the
    /// row-tail ECC atoms of a co-located inline layout).
    hashed: bool,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

impl SectorCache {
    /// Creates a cache with plain modulo set indexing.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a positive power of two, `ways` is positive,
    /// and `atoms_per_line` is 1, 2 or 4.
    pub fn new(sets: u64, ways: u32, atoms_per_line: u64) -> Self {
        Self::build(sets, ways, atoms_per_line, false)
    }

    /// Creates a cache with a hashed (XOR-folded) set index.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn new_hashed(sets: u64, ways: u32, atoms_per_line: u64) -> Self {
        Self::build(sets, ways, atoms_per_line, true)
    }

    fn build(sets: u64, ways: u32, atoms_per_line: u64, hashed: bool) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        assert!(
            matches!(atoms_per_line, 1 | 2 | 4),
            "atoms_per_line must be 1, 2 or 4"
        );
        SectorCache {
            sets,
            ways,
            atoms_per_line,
            hashed,
            lines: vec![Line::empty(); (sets * ways as u64) as usize],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Builds a cache from a capacity in bytes (32 B per atom), modulo
    /// indexing.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two.
    pub fn with_capacity(capacity_bytes: u64, ways: u32, atoms_per_line: u64) -> Self {
        let line_bytes = atoms_per_line * crate::types::ATOM_BYTES;
        let sets = capacity_bytes / (line_bytes * ways as u64);
        Self::new(sets, ways, atoms_per_line)
    }

    /// Builds a hashed-index cache from a capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two.
    pub fn with_capacity_hashed(capacity_bytes: u64, ways: u32, atoms_per_line: u64) -> Self {
        let line_bytes = atoms_per_line * crate::types::ATOM_BYTES;
        let sets = capacity_bytes / (line_bytes * ways as u64);
        Self::new_hashed(sets, ways, atoms_per_line)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * self.atoms_per_line * crate::types::ATOM_BYTES
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn tag_of(&self, atom: u64) -> u64 {
        atom / self.atoms_per_line
    }

    fn sector_of(&self, atom: u64) -> u8 {
        1 << (atom % self.atoms_per_line)
    }

    fn set_range(&self, tag: u64) -> std::ops::Range<usize> {
        let set = if self.hashed {
            let bits = self.sets.trailing_zeros().max(1);
            let shr = |t: u64, s: u32| if s < 64 { t >> s } else { 0 };
            let folded = tag ^ shr(tag, bits) ^ shr(tag, 2 * bits) ^ shr(tag, 3 * bits);
            (folded & (self.sets - 1)) as usize
        } else {
            (tag & (self.sets - 1)) as usize
        };
        let start = set * self.ways as usize;
        start..start + self.ways as usize
    }

    fn find(&self, tag: u64) -> Option<usize> {
        self.set_range(tag).find(|&i| self.lines[i].tag == tag)
    }

    fn touch(&mut self, idx: usize) {
        self.stamp += 1;
        self.lines[idx].last_use = self.stamp;
    }

    /// Non-destructive residency probe: is the atom valid right now?
    /// Does not update LRU or statistics.
    pub fn probe(&self, atom: u64) -> bool {
        let tag = self.tag_of(atom);
        self.find(tag)
            .is_some_and(|i| self.lines[i].valid & self.sector_of(atom) != 0)
    }

    /// Read lookup: updates LRU and hit/miss statistics.
    pub fn lookup_read(&mut self, atom: u64) -> LookupResult {
        let tag = self.tag_of(atom);
        match self.find(tag) {
            Some(i) if self.lines[i].valid & self.sector_of(atom) != 0 => {
                self.touch(i);
                self.stats.read_hits += 1;
                LookupResult::Hit
            }
            Some(i) => {
                self.touch(i);
                self.stats.read_misses += 1;
                LookupResult::SectorMiss
            }
            None => {
                self.stats.read_misses += 1;
                LookupResult::LineMiss
            }
        }
    }

    /// Write lookup. On a resident line the sector is made valid and dirty
    /// (a full-sector overwrite; partial writes must be preceded by a fill,
    /// which the caller decides via [`LookupResult`]).
    ///
    /// Returns `Hit` when the line was resident (sector state updated),
    /// `LineMiss` otherwise (nothing changed; caller allocates via
    /// [`fill`](Self::fill)).
    pub fn lookup_write(&mut self, atom: u64) -> LookupResult {
        let tag = self.tag_of(atom);
        match self.find(tag) {
            Some(i) => {
                let s = self.sector_of(atom);
                self.lines[i].valid |= s;
                self.lines[i].dirty |= s;
                self.touch(i);
                self.stats.write_hits += 1;
                LookupResult::Hit
            }
            None => {
                self.stats.write_misses += 1;
                LookupResult::LineMiss
            }
        }
    }

    /// Installs the atom (valid, optionally dirty), allocating its line if
    /// needed. Returns the eviction performed to make room, if any.
    // Invariant: every set has ways > 0, so a victim always exists.
    #[allow(clippy::expect_used)]
    pub fn fill(&mut self, atom: u64, dirty: bool) -> Option<Eviction> {
        let tag = self.tag_of(atom);
        let s = self.sector_of(atom);
        if let Some(i) = self.find(tag) {
            self.lines[i].valid |= s;
            if dirty {
                self.lines[i].dirty |= s;
            }
            self.touch(i);
            return None;
        }
        // Victim: invalid way if any, else LRU.
        let range = self.set_range(tag);
        let victim = range
            .clone()
            .find(|&i| self.lines[i].tag == INVALID)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].last_use)
                    // lint: allow(panic-freedom) reason=set_range is never empty: ways >= 1 is enforced by GpuConfig::validate before the first cycle
                    .expect("ways > 0")
            });
        let evicted = if self.lines[victim].tag != INVALID {
            self.stats.evictions += 1;
            let line = self.lines[victim];
            let base = line.tag * self.atoms_per_line;
            let dirty_atoms: Vec<u64> = (0..self.atoms_per_line)
                .filter(|&k| line.valid & line.dirty & (1 << k) != 0)
                .map(|k| base + k)
                .collect();
            if !dirty_atoms.is_empty() {
                self.stats.dirty_evictions += 1;
            }
            Some(Eviction {
                base_atom: base,
                dirty_atoms,
            })
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: s,
            dirty: if dirty { s } else { 0 },
            last_use: 0,
        };
        self.touch(victim);
        evicted
    }

    /// Marks a resident atom clean (after its write-back completed).
    /// No-op when not resident.
    pub fn clean(&mut self, atom: u64) {
        let tag = self.tag_of(atom);
        if let Some(i) = self.find(tag) {
            self.lines[i].dirty &= !self.sector_of(atom);
        }
    }

    /// Invalidates a single atom (other sectors of the line survive).
    /// Returns `true` if it was valid and dirty.
    pub fn invalidate(&mut self, atom: u64) -> bool {
        let tag = self.tag_of(atom);
        if let Some(i) = self.find(tag) {
            let s = self.sector_of(atom);
            let was_dirty = self.lines[i].valid & self.lines[i].dirty & s != 0;
            self.lines[i].valid &= !s;
            self.lines[i].dirty &= !s;
            if self.lines[i].valid == 0 {
                self.lines[i] = Line::empty();
            }
            was_dirty
        } else {
            false
        }
    }

    /// Iterates over all currently valid atoms (for drain/flush logic),
    /// yielding `(atom, dirty)`.
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.lines.iter().flat_map(move |line| {
            (0..self.atoms_per_line).filter_map(move |k| {
                if line.tag != INVALID && line.valid & (1 << k) != 0 {
                    Some((
                        line.tag * self.atoms_per_line + k,
                        line.dirty & (1 << k) != 0,
                    ))
                } else {
                    None
                }
            })
        })
    }

    /// Number of currently valid atoms.
    pub fn valid_atoms(&self) -> usize {
        self.iter_valid().count()
    }
}

impl fmt::Debug for SectorCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SectorCache")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("atoms_per_line", &self.atoms_per_line)
            .field("valid_atoms", &self.valid_atoms())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SectorCache::new(4, 2, 4);
        assert_eq!(c.lookup_read(5), LookupResult::LineMiss);
        assert!(c.fill(5, false).is_none());
        assert_eq!(c.lookup_read(5), LookupResult::Hit);
        assert!(c.probe(5));
        // Sibling sector of the same line: line resident, sector missing.
        assert_eq!(c.lookup_read(6), LookupResult::SectorMiss);
        assert!(!c.probe(6));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways, 1 atom/line: third distinct fill evicts the LRU.
        let mut c = SectorCache::new(1, 2, 1);
        c.fill(10, false);
        c.fill(20, false);
        c.lookup_read(10); // 10 is now MRU
        let ev = c.fill(30, false).expect("eviction");
        assert_eq!(ev.base_atom, 20);
        assert!(c.probe(10));
        assert!(!c.probe(20));
        assert!(c.probe(30));
    }

    #[test]
    fn dirty_eviction_reports_dirty_atoms() {
        let mut c = SectorCache::new(1, 1, 4);
        c.fill(0, false);
        c.fill(1, true);
        c.fill(2, false);
        // New line in the single way evicts line 0 with atom 1 dirty.
        let ev = c.fill(100, false).expect("eviction");
        assert_eq!(ev.base_atom, 0);
        assert_eq!(ev.dirty_atoms, vec![1]);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = SectorCache::new(2, 2, 4);
        c.fill(8, false);
        assert_eq!(c.lookup_write(9), LookupResult::Hit); // same line
        let dirty: Vec<u64> = c.iter_valid().filter(|&(_, d)| d).map(|(a, _)| a).collect();
        assert_eq!(dirty, vec![9]);
        // Clean it back.
        c.clean(9);
        assert!(c.iter_valid().all(|(_, d)| !d));
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = SectorCache::new(2, 2, 4);
        assert_eq!(c.lookup_write(3), LookupResult::LineMiss);
        assert!(!c.probe(3));
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn invalidate_single_sector() {
        let mut c = SectorCache::new(2, 2, 4);
        c.fill(0, true);
        c.fill(1, false);
        assert!(c.invalidate(0)); // was dirty
        assert!(!c.invalidate(0)); // already gone
        assert!(!c.probe(0));
        assert!(c.probe(1));
    }

    #[test]
    fn capacity_and_with_capacity() {
        let c = SectorCache::with_capacity(16 << 10, 8, 4);
        assert_eq!(c.capacity_bytes(), 16 << 10);
        let ecc = SectorCache::with_capacity(8 << 10, 8, 1);
        assert_eq!(ecc.capacity_bytes(), 8 << 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = SectorCache::new(2, 1, 4);
        c.lookup_read(0);
        c.fill(0, false);
        c.lookup_read(0);
        c.lookup_write(0);
        let s = c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_hits, 1);
        assert!((s.read_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fill_existing_line_adds_sector_without_eviction() {
        let mut c = SectorCache::new(1, 1, 4);
        c.fill(0, false);
        assert!(c.fill(3, false).is_none()); // same line
        assert_eq!(c.valid_atoms(), 2);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = SectorCache::new(4, 1, 1);
        for atom in 0..4 {
            c.fill(atom, false);
        }
        assert_eq!(c.valid_atoms(), 4);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = SectorCache::new(3, 1, 4);
    }

    #[test]
    fn ecc_granularity_cache() {
        // atoms_per_line = 1: every atom has its own tag (ECC cache mode).
        let mut c = SectorCache::new(4, 2, 1);
        c.fill(0, false);
        assert_eq!(c.lookup_read(4), LookupResult::LineMiss); // same set, new tag
        c.fill(4, false);
        assert!(c.probe(0) && c.probe(4));
    }
}
