//! Kernel traces: the workload representation the simulator replays.
//!
//! The simulator is *trace-driven*: instead of executing an ISA, each warp
//! replays a pre-generated sequence of [`WarpOp`]s — memory instructions
//! (already coalesced into 32-byte atoms) interleaved with compute delays.
//! This is the standard methodology for memory-system studies: it preserves
//! the access pattern, concurrency, and arithmetic intensity that
//! memory-hierarchy conclusions depend on, without modelling a pipeline.
//!
//! Traces address memory in the [`LogicalAtom`] space; the protection
//! scheme maps atoms to physical locations at L1-miss time.
//!
//! # Examples
//!
//! ```
//! use ccraft_sim::trace::{KernelTrace, WarpOp, WarpTrace};
//! use ccraft_sim::types::LogicalAtom;
//!
//! let warp = WarpTrace::new(vec![
//!     WarpOp::Load { atoms: vec![LogicalAtom(0), LogicalAtom(1)] },
//!     WarpOp::Compute { cycles: 10 },
//!     WarpOp::Store { atoms: vec![LogicalAtom(0)], full: true },
//! ]);
//! let trace = KernelTrace::new("example", vec![warp]);
//! assert_eq!(trace.total_ops(), 3);
//! assert_eq!(trace.footprint_atoms(), 2);
//! ```

use crate::types::LogicalAtom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One operation in a warp's instruction stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpOp {
    /// Non-memory work: the warp is unavailable for `cycles` after issue.
    Compute {
        /// Busy time in cycles.
        cycles: u32,
    },
    /// A coalesced load touching the given atoms. The warp blocks until
    /// every atom's data has returned.
    Load {
        /// Unique atoms accessed by the 32 threads after coalescing.
        atoms: Vec<LogicalAtom>,
    },
    /// A coalesced store. The warp does not wait for completion
    /// (write-through L1, posted writes), but the accesses consume
    /// load/store-unit and queue bandwidth.
    Store {
        /// Unique atoms written.
        atoms: Vec<LogicalAtom>,
        /// Whether every atom is fully overwritten (no fetch-on-write).
        full: bool,
    },
}

impl WarpOp {
    /// Number of memory accesses this op generates (0 for compute).
    pub fn access_count(&self) -> usize {
        match self {
            WarpOp::Compute { .. } => 0,
            WarpOp::Load { atoms } => atoms.len(),
            WarpOp::Store { atoms, .. } => atoms.len(),
        }
    }

    /// `true` for loads and stores.
    pub fn is_memory(&self) -> bool {
        !matches!(self, WarpOp::Compute { .. })
    }
}

/// The full instruction stream of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WarpTrace {
    ops: Vec<WarpOp>,
}

impl WarpTrace {
    /// Wraps an op list.
    ///
    /// # Panics
    ///
    /// Panics if any memory op has an empty atom list (a malformed trace).
    pub fn new(ops: Vec<WarpOp>) -> Self {
        for (i, op) in ops.iter().enumerate() {
            if op.is_memory() {
                assert!(
                    op.access_count() > 0,
                    "memory op {i} has an empty atom list"
                );
            }
        }
        WarpTrace { ops }
    }

    /// The ops, in program order.
    pub fn ops(&self) -> &[WarpOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the warp has no work.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<WarpOp> for WarpTrace {
    fn from_iter<I: IntoIterator<Item = WarpOp>>(iter: I) -> Self {
        WarpTrace::new(iter.into_iter().collect())
    }
}

/// A complete kernel: one [`WarpTrace`] per warp, assigned to SMs
/// round-robin by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTrace {
    name: String,
    warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// Builds a kernel trace.
    pub fn new(name: impl Into<String>, warps: Vec<WarpTrace>) -> Self {
        KernelTrace {
            name: name.into(),
            warps,
        }
    }

    /// Kernel name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-warp traces.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Total op count over all warps.
    pub fn total_ops(&self) -> u64 {
        self.warps.iter().map(|w| w.len() as u64).sum()
    }

    /// Total memory accesses (coalesced atoms) over all warps.
    pub fn total_accesses(&self) -> u64 {
        self.warps
            .iter()
            .flat_map(|w| w.ops())
            .map(|op| op.access_count() as u64)
            .sum()
    }

    /// Number of *distinct* atoms touched (the memory footprint).
    pub fn footprint_atoms(&self) -> u64 {
        let mut seen = BTreeSet::new();
        for w in &self.warps {
            for op in w.ops() {
                match op {
                    WarpOp::Load { atoms } | WarpOp::Store { atoms, .. } => {
                        seen.extend(atoms.iter().copied());
                    }
                    WarpOp::Compute { .. } => {}
                }
            }
        }
        seen.len() as u64
    }

    /// Largest atom index referenced, or `None` for a compute-only trace.
    pub fn max_atom(&self) -> Option<LogicalAtom> {
        self.warps
            .iter()
            .flat_map(|w| w.ops())
            .filter_map(|op| match op {
                WarpOp::Load { atoms } | WarpOp::Store { atoms, .. } => atoms.iter().max().copied(),
                WarpOp::Compute { .. } => None,
            })
            .max()
    }

    /// Memory intensity: memory accesses per op (a proxy for how
    /// bandwidth-bound the kernel is).
    pub fn memory_intensity(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.total_accesses() as f64 / ops as f64
        }
    }

    /// Fraction of memory accesses that are stores.
    pub fn write_fraction(&self) -> f64 {
        let mut reads = 0u64;
        let mut writes = 0u64;
        for w in &self.warps {
            for op in w.ops() {
                match op {
                    WarpOp::Load { atoms } => reads += atoms.len() as u64,
                    WarpOp::Store { atoms, .. } => writes += atoms.len() as u64,
                    WarpOp::Compute { .. } => {}
                }
            }
        }
        if reads + writes == 0 {
            0.0
        } else {
            writes as f64 / (reads + writes) as f64
        }
    }
}

impl fmt::Display for KernelTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} warps, {} ops, {} accesses, {:.1} MiB footprint",
            self.name,
            self.warps.len(),
            self.total_ops(),
            self.total_accesses(),
            self.footprint_atoms() as f64 * 32.0 / (1 << 20) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn la(v: u64) -> LogicalAtom {
        LogicalAtom(v)
    }

    fn sample() -> KernelTrace {
        KernelTrace::new(
            "t",
            vec![
                WarpTrace::new(vec![
                    WarpOp::Load {
                        atoms: vec![la(0), la(1), la(2), la(3)],
                    },
                    WarpOp::Compute { cycles: 5 },
                    WarpOp::Store {
                        atoms: vec![la(100)],
                        full: true,
                    },
                ]),
                WarpTrace::new(vec![WarpOp::Load {
                    atoms: vec![la(2), la(3)],
                }]),
            ],
        )
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.total_ops(), 4);
        assert_eq!(t.total_accesses(), 7);
        assert_eq!(t.footprint_atoms(), 5); // 0,1,2,3,100
        assert_eq!(t.max_atom(), Some(la(100)));
    }

    #[test]
    fn intensity_and_write_fraction() {
        let t = sample();
        assert!((t.memory_intensity() - 7.0 / 4.0).abs() < 1e-9);
        assert!((t.write_fraction() - 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_metrics() {
        let t = KernelTrace::new("empty", vec![]);
        assert_eq!(t.total_ops(), 0);
        assert_eq!(t.footprint_atoms(), 0);
        assert_eq!(t.max_atom(), None);
        assert_eq!(t.memory_intensity(), 0.0);
        assert_eq!(t.write_fraction(), 0.0);
    }

    #[test]
    fn op_accessors() {
        assert_eq!(WarpOp::Compute { cycles: 3 }.access_count(), 0);
        assert!(!WarpOp::Compute { cycles: 3 }.is_memory());
        let ld = WarpOp::Load {
            atoms: vec![la(1), la(9)],
        };
        assert_eq!(ld.access_count(), 2);
        assert!(ld.is_memory());
    }

    #[test]
    #[should_panic(expected = "empty atom list")]
    fn rejects_empty_memory_op() {
        let _ = WarpTrace::new(vec![WarpOp::Load { atoms: vec![] }]);
    }

    #[test]
    fn from_iterator() {
        let w: WarpTrace = (0..3).map(|_| WarpOp::Compute { cycles: 1 }).collect();
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let s = sample().to_string();
        assert!(s.contains("t:"));
        assert!(s.contains("2 warps"));
    }
}
