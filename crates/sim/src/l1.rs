//! Per-SM L1 data cache.
//!
//! Models the GPU L1 policy: sectored, **write-through, write-no-allocate**
//! (stores always forward to L2; they update a resident sector but never
//! allocate), read-allocate with sector-granularity MSHRs. L1 is indexed by
//! *logical* atoms — address translation to the physical (ECC-carved) space
//! happens at the L1↔L2 boundary via the protection scheme's map, mirroring
//! where real GPUs apply the inline-ECC address swizzle.

use crate::cache::{LookupResult, SectorCache};
use crate::config::CacheConfig;
use crate::fxmap::FxHashMap;
use crate::msg::{L2Request, L2Response, NO_L1_MSHR};
use crate::types::{AccessKind, Cycle, LogicalAtom, SmId, WarpIdx};
use std::collections::VecDeque;

/// One access handed from the SM's load/store unit to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Access {
    /// Issuing warp (for load completion notification).
    pub warp: WarpIdx,
    /// Target atom (logical space).
    pub atom: LogicalAtom,
    /// Read or write.
    pub kind: AccessKind,
}

#[derive(Debug)]
struct L1Mshr {
    atom: LogicalAtom,
    waiters: Vec<WarpIdx>,
}

/// Per-L1 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Load hits.
    pub read_hits: u64,
    /// Load misses sent to L2.
    pub read_misses: u64,
    /// Stores forwarded (write-through).
    pub writes: u64,
    /// Cycles the pipeline stalled on MSHRs or crossbar backpressure.
    pub stalls: u64,
}

/// The L1 cache pipeline.
#[derive(Debug)]
pub struct L1Cache {
    sm: SmId,
    cache: SectorCache,
    latency: u32,
    in_q: VecDeque<L1Access>,
    in_cap: usize,
    /// Loads that hit, waiting out the hit latency: `(ready, warp)`.
    hit_q: VecDeque<(Cycle, WarpIdx)>,
    mshrs: Vec<Option<L1Mshr>>,
    mshr_index: FxHashMap<LogicalAtom, usize>,
    free_mshrs: Vec<usize>,
    /// Completed load notifications for the SM: one entry per finished
    /// access, identifying the warp.
    completions: Vec<WarpIdx>,
    stats: L1Stats,
    /// Oracle counter: MSHRs allocated (request conservation).
    #[cfg(feature = "check-invariants")]
    mshr_allocs: u64,
    /// Oracle counter: fill responses accepted (request conservation).
    #[cfg(feature = "check-invariants")]
    fills_accepted: u64,
}

impl L1Cache {
    /// Builds the L1 for one SM.
    pub fn new(sm: SmId, cfg: &CacheConfig) -> Self {
        L1Cache {
            sm,
            cache: SectorCache::new(cfg.sets(), cfg.ways, 4),
            latency: cfg.latency,
            in_q: VecDeque::with_capacity(cfg.input_queue),
            in_cap: cfg.input_queue,
            hit_q: VecDeque::new(),
            mshrs: (0..cfg.mshrs).map(|_| None).collect(),
            mshr_index: FxHashMap::default(),
            free_mshrs: (0..cfg.mshrs).rev().collect(),
            completions: Vec::new(),
            stats: L1Stats::default(),
            #[cfg(feature = "check-invariants")]
            mshr_allocs: 0,
            #[cfg(feature = "check-invariants")]
            fills_accepted: 0,
        }
    }

    /// `true` when the LSU can hand over another access.
    pub fn can_accept(&self) -> bool {
        self.in_q.len() < self.in_cap
    }

    /// Enqueues an access from the SM.
    ///
    /// # Panics
    ///
    /// Panics when the input queue is full (check
    /// [`can_accept`](Self::can_accept)).
    pub fn push(&mut self, access: L1Access) {
        assert!(self.can_accept(), "L1 input queue overflow");
        self.in_q.push_back(access);
    }

    /// Accepts a fill response from the L2 (via the crossbar).
    // Invariant: responses carry the MSHR index this L1 allocated, so
    // the slot is occupied until its response arrives.
    #[allow(clippy::expect_used)]
    pub fn accept_response(&mut self, resp: L2Response) {
        debug_assert_eq!(resp.dest, self.sm);
        let idx = resp.l1_mshr as usize;
        // lint: allow(panic-freedom) reason=responses carry the MSHR index this L1 allocated; the slot stays occupied until its response arrives
        let m = self.mshrs[idx].take().expect("response for empty L1 MSHR");
        self.mshr_index.remove(&m.atom);
        self.free_mshrs.push(idx);
        #[cfg(feature = "check-invariants")]
        {
            self.fills_accepted += 1;
        }
        // Install; L1 lines are never dirty (write-through), so evictions
        // are silent.
        let _ = self.cache.fill(m.atom.0, false);
        self.completions.extend(m.waiters);
    }

    /// Advances the pipeline one cycle. `send` forwards a request toward
    /// the L2 (returns `false` on backpressure); `map` is the protection
    /// scheme's logical→physical translation.
    // Invariant: `mshr_index` only maps to occupied MSHR slots.
    #[allow(clippy::expect_used)]
    pub fn tick(
        &mut self,
        now: Cycle,
        map: &mut dyn FnMut(LogicalAtom) -> crate::types::PhysLoc,
        send: &mut dyn FnMut(L2Request) -> bool,
    ) {
        // Release matured hits.
        while let Some(&(ready, warp)) = self.hit_q.front() {
            if ready <= now {
                self.completions.push(warp);
                self.hit_q.pop_front();
            } else {
                break;
            }
        }
        // Process the input queue (one access per cycle — the LSU rate).
        if let Some(&access) = self.in_q.front() {
            match access.kind {
                AccessKind::Read => match self.cache.lookup_read(access.atom.0) {
                    LookupResult::Hit => {
                        self.stats.read_hits += 1;
                        self.hit_q
                            .push_back((now + self.latency as Cycle, access.warp));
                        self.in_q.pop_front();
                    }
                    LookupResult::SectorMiss | LookupResult::LineMiss => {
                        if let Some(&idx) = self.mshr_index.get(&access.atom) {
                            self.mshrs[idx]
                                .as_mut()
                                // lint: allow(panic-freedom) reason=mshr_index only maps atoms to occupied slots; entries are removed before the slot is freed
                                .expect("indexed mshr")
                                .waiters
                                .push(access.warp);
                            self.stats.read_misses += 1;
                            self.in_q.pop_front();
                        } else if let Some(&free) = self.free_mshrs.last() {
                            let req = L2Request {
                                loc: map(access.atom),
                                kind: AccessKind::Read,
                                src: self.sm,
                                l1_mshr: free as u32,
                            };
                            if send(req) {
                                self.free_mshrs.pop();
                                #[cfg(feature = "check-invariants")]
                                {
                                    self.mshr_allocs += 1;
                                }
                                self.mshr_index.insert(access.atom, free);
                                self.mshrs[free] = Some(L1Mshr {
                                    atom: access.atom,
                                    waiters: vec![access.warp],
                                });
                                self.stats.read_misses += 1;
                                self.in_q.pop_front();
                            } else {
                                self.stats.stalls += 1;
                            }
                        } else {
                            self.stats.stalls += 1;
                        }
                    }
                },
                AccessKind::Write { .. } => {
                    // Write-through: update a resident sector, forward
                    // regardless, never allocate.
                    let req = L2Request {
                        loc: map(access.atom),
                        kind: access.kind,
                        src: self.sm,
                        l1_mshr: NO_L1_MSHR,
                    };
                    if send(req) {
                        if self.cache.probe(access.atom.0) {
                            // Keep the L1 copy coherent (timing model: just
                            // refresh LRU; write-through keeps it clean in
                            // L1 while L2 holds the dirty state).
                            let _ = self.cache.lookup_read(access.atom.0);
                        }
                        self.stats.writes += 1;
                        self.in_q.pop_front();
                    } else {
                        self.stats.stalls += 1;
                    }
                }
            }
        }
    }

    /// Takes the load-completion notifications accumulated so far.
    pub fn take_completions(&mut self) -> Vec<WarpIdx> {
        std::mem::take(&mut self.completions)
    }

    /// Drains completion notifications in place, keeping the buffer's
    /// capacity (the per-cycle path; [`take_completions`](Self::take_completions)
    /// hands the allocation away each call).
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, WarpIdx> {
        self.completions.drain(..)
    }

    /// Earliest cycle at which this L1 has (or may have) work, for idle
    /// fast-forwarding. `Some(c <= now)` means busy this cycle; a future
    /// cycle is the next matured hit. Outstanding MSHRs carry no event of
    /// their own — their wakeup is the L2/crossbar response that feeds
    /// [`accept_response`](Self::accept_response).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.in_q.is_empty() || !self.completions.is_empty() {
            return Some(now);
        }
        self.hit_q.front().map(|&(ready, _)| ready)
    }

    /// `true` when no work remains in the L1.
    pub fn is_idle(&self) -> bool {
        self.in_q.is_empty()
            && self.hit_q.is_empty()
            && self.mshr_index.is_empty()
            && self.completions.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }

    /// Structural coherence and request conservation for the MSHR file
    /// and input queue, checked once per cycle by the oracle.
    ///
    /// # Panics
    ///
    /// Panics on an MSHR leak, a dangling index entry, an over-capacity
    /// queue, or a miss whose response never arrived being double-freed.
    #[cfg(feature = "check-invariants")]
    pub fn assert_coherent(&self) {
        assert!(
            self.in_q.len() <= self.in_cap,
            "invariant violated: L1 input queue over capacity"
        );
        assert_eq!(
            self.free_mshrs.len() + self.mshr_index.len(),
            self.mshrs.len(),
            "invariant violated: L1 MSHR leak (free + indexed != total)"
        );
        for (&atom, &idx) in &self.mshr_index {
            match self.mshrs[idx].as_ref() {
                Some(m) => assert_eq!(
                    m.atom, atom,
                    "invariant violated: L1 mshr_index atom mismatch at slot {idx}"
                ),
                None => {
                    panic!("invariant violated: L1 mshr_index maps {atom:?} to empty slot {idx}")
                }
            }
        }
        assert_eq!(
            self.mshr_allocs,
            self.fills_accepted + self.mshr_index.len() as u64,
            "invariant violated: L1 request conservation \
             (misses sent != responses received + outstanding MSHRs)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::types::PhysLoc;

    fn l1() -> L1Cache {
        L1Cache::new(SmId(0), &GpuConfig::tiny().l1)
    }

    fn identity_map(atom: LogicalAtom) -> PhysLoc {
        PhysLoc::new(0, atom.0)
    }

    #[test]
    fn miss_forwards_and_fill_completes_waiters() {
        let mut l1 = l1();
        let mut sent = Vec::new();
        l1.push(L1Access {
            warp: 3,
            atom: LogicalAtom(5),
            kind: AccessKind::Read,
        });
        l1.tick(0, &mut identity_map, &mut |r| {
            sent.push(r);
            true
        });
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].loc, PhysLoc::new(0, 5));
        assert!(l1.take_completions().is_empty());
        // Fill arrives.
        l1.accept_response(L2Response {
            loc: sent[0].loc,
            dest: SmId(0),
            l1_mshr: sent[0].l1_mshr,
        });
        assert_eq!(l1.take_completions(), vec![3]);
        assert_eq!(l1.stats().read_misses, 1);
    }

    #[test]
    fn hit_after_fill_respects_latency() {
        let mut l1 = l1();
        let mut send_ok = |_: L2Request| true;
        l1.push(L1Access {
            warp: 0,
            atom: LogicalAtom(5),
            kind: AccessKind::Read,
        });
        let mut sent = None;
        l1.tick(0, &mut identity_map, &mut |r| {
            sent = Some(r);
            true
        });
        l1.accept_response(L2Response {
            loc: sent.unwrap().loc,
            dest: SmId(0),
            l1_mshr: sent.unwrap().l1_mshr,
        });
        let _ = l1.take_completions();
        // Now a hit: tiny L1 latency is 4.
        l1.push(L1Access {
            warp: 1,
            atom: LogicalAtom(5),
            kind: AccessKind::Read,
        });
        l1.tick(10, &mut identity_map, &mut send_ok);
        assert!(l1.take_completions().is_empty());
        l1.tick(13, &mut identity_map, &mut send_ok);
        assert!(l1.take_completions().is_empty());
        l1.tick(14, &mut identity_map, &mut send_ok);
        assert_eq!(l1.take_completions(), vec![1]);
        assert_eq!(l1.stats().read_hits, 1);
    }

    #[test]
    fn merged_misses_share_one_request() {
        let mut l1 = l1();
        let mut count = 0;
        let mut last = None;
        for warp in 0..3 {
            l1.push(L1Access {
                warp,
                atom: LogicalAtom(9),
                kind: AccessKind::Read,
            });
        }
        for now in 0..3 {
            l1.tick(now, &mut identity_map, &mut |r| {
                count += 1;
                last = Some(r);
                true
            });
        }
        assert_eq!(count, 1, "merged misses must send a single L2 request");
        l1.accept_response(L2Response {
            loc: last.unwrap().loc,
            dest: SmId(0),
            l1_mshr: last.unwrap().l1_mshr,
        });
        let mut done = l1.take_completions();
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2]);
    }

    #[test]
    fn writes_always_forward() {
        let mut l1 = l1();
        let mut sent = Vec::new();
        l1.push(L1Access {
            warp: 0,
            atom: LogicalAtom(7),
            kind: AccessKind::Write { full: true },
        });
        l1.tick(0, &mut identity_map, &mut |r| {
            sent.push(r);
            true
        });
        assert_eq!(sent.len(), 1);
        assert!(sent[0].kind.is_write());
        assert_eq!(sent[0].l1_mshr, NO_L1_MSHR);
        assert_eq!(l1.stats().writes, 1);
        assert!(l1.is_idle());
    }

    #[test]
    fn backpressure_stalls_head() {
        let mut l1 = l1();
        l1.push(L1Access {
            warp: 0,
            atom: LogicalAtom(1),
            kind: AccessKind::Read,
        });
        l1.tick(0, &mut identity_map, &mut |_| false);
        assert_eq!(l1.stats().stalls, 1);
        assert!(!l1.is_idle());
        // Succeeds once the network accepts.
        l1.tick(1, &mut identity_map, &mut |_| true);
        assert_eq!(l1.stats().read_misses, 1);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let cfg = GpuConfig::tiny();
        let mut l1 = L1Cache::new(SmId(0), &cfg.l1);
        // Fill all MSHRs with distinct atoms, draining the input queue as
        // we go (one access per cycle).
        let mut accepted = 0;
        let mut now = 0;
        for i in 0..=cfg.l1.mshrs as u64 {
            l1.push(L1Access {
                warp: if i == cfg.l1.mshrs as u64 { 1 } else { 0 },
                atom: LogicalAtom(i * 100),
                kind: AccessKind::Read,
            });
            l1.tick(now, &mut identity_map, &mut |_| {
                accepted += 1;
                true
            });
            now += 1;
        }
        for _ in 0..10 {
            l1.tick(now, &mut identity_map, &mut |_| {
                accepted += 1;
                true
            });
            now += 1;
        }
        assert_eq!(accepted, cfg.l1.mshrs, "extra miss must wait for an MSHR");
        assert!(l1.stats().stalls > 0);
    }

    #[test]
    #[should_panic(expected = "input queue overflow")]
    fn push_past_capacity_panics() {
        let mut l1 = l1();
        for i in 0..=GpuConfig::tiny().l1.input_queue as u64 {
            l1.push(L1Access {
                warp: 0,
                atom: LogicalAtom(i),
                kind: AccessKind::Read,
            });
        }
    }
}
