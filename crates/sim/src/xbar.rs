//! SM↔L2 crossbar interconnect.
//!
//! A latency/bandwidth model rather than a topology model: requests and
//! responses each traverse in `latency` cycles, and each endpoint (slice on
//! the request side, SM on the response side) accepts at most
//! `ports_per_endpoint` messages per cycle. Request queues are bounded to
//! create realistic backpressure into the L1s; response queues are
//! unbounded so the response path can always drain (deadlock freedom).

use crate::config::XbarConfig;
use crate::msg::{L2Request, L2Response};
use crate::types::Cycle;
use std::collections::VecDeque;

/// Per-slice request queue capacity (in-flight toward one slice). Shared
/// with the shard gate, whose counter mirror must reject at exactly the
/// same occupancy.
pub(crate) const REQ_QUEUE_CAP: usize = 64;

/// Crossbar statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XbarStats {
    /// Requests transported SM→L2.
    pub requests: u64,
    /// Responses transported L2→SM.
    pub responses: u64,
    /// Injection attempts rejected due to a full request queue.
    pub rejects: u64,
}

/// The interconnect.
#[derive(Debug)]
pub struct Crossbar {
    latency: u32,
    ports: u32,
    /// Per-slice in-flight requests, stamped with arrival time.
    req_q: Vec<VecDeque<(Cycle, L2Request)>>,
    /// Per-SM in-flight responses.
    resp_q: Vec<VecDeque<(Cycle, L2Response)>>,
    stats: XbarStats,
    /// Oracle counter: requests handed to a slice (conservation check).
    #[cfg(feature = "check-invariants")]
    delivered_requests: u64,
    /// Oracle counter: responses handed to an SM (conservation check).
    #[cfg(feature = "check-invariants")]
    delivered_responses: u64,
}

impl Crossbar {
    /// Builds a crossbar connecting `sms` SMs to `slices` L2 slices.
    pub fn new(cfg: &XbarConfig, sms: u16, slices: u16) -> Self {
        Crossbar {
            latency: cfg.latency,
            ports: cfg.ports_per_endpoint,
            req_q: (0..slices).map(|_| VecDeque::new()).collect(),
            resp_q: (0..sms).map(|_| VecDeque::new()).collect(),
            stats: XbarStats::default(),
            #[cfg(feature = "check-invariants")]
            delivered_requests: 0,
            #[cfg(feature = "check-invariants")]
            delivered_responses: 0,
        }
    }

    /// Injects a request toward its slice. Returns `false` (and drops
    /// nothing) when that slice's queue is full.
    pub fn try_send_request(&mut self, req: L2Request, now: Cycle) -> bool {
        let q = &mut self.req_q[req.loc.channel as usize];
        if q.len() >= REQ_QUEUE_CAP {
            self.stats.rejects += 1;
            return false;
        }
        q.push_back((now + self.latency as Cycle, req));
        self.stats.requests += 1;
        true
    }

    /// Injects a response toward its SM (never fails; response queues are
    /// unbounded for deadlock freedom).
    pub fn send_response(&mut self, resp: L2Response, now: Cycle) {
        self.resp_q[resp.dest.0 as usize].push_back((now + self.latency as Cycle, resp));
        self.stats.responses += 1;
    }

    /// Pops up to `ports_per_endpoint` requests that have arrived at
    /// `slice` by `now`, as long as `accept` keeps returning `true`.
    pub fn deliver_requests(
        &mut self,
        slice: u16,
        now: Cycle,
        accept: &mut dyn FnMut(L2Request) -> bool,
    ) {
        let q = &mut self.req_q[slice as usize];
        for _ in 0..self.ports {
            match q.front() {
                Some(&(arrival, req)) if arrival <= now => {
                    if accept(req) {
                        q.pop_front();
                        #[cfg(feature = "check-invariants")]
                        {
                            self.delivered_requests += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    /// Pops up to `ports_per_endpoint` responses that have arrived at `sm`
    /// by `now`.
    pub fn deliver_responses(&mut self, sm: u16, now: Cycle) -> Vec<L2Response> {
        let mut out = Vec::new();
        self.deliver_responses_into(sm, now, &mut out);
        out
    }

    /// Like [`deliver_responses`](Self::deliver_responses) into a
    /// caller-owned buffer (cleared first) so the cycle loop can reuse one
    /// allocation across SMs and cycles.
    pub fn deliver_responses_into(&mut self, sm: u16, now: Cycle, out: &mut Vec<L2Response>) {
        out.clear();
        let q = &mut self.resp_q[sm as usize];
        for _ in 0..self.ports {
            match q.front() {
                Some(&(arrival, resp)) if arrival <= now => {
                    out.push(resp);
                    q.pop_front();
                    #[cfg(feature = "check-invariants")]
                    {
                        self.delivered_responses += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// `true` when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.req_q.iter().all(|q| q.is_empty()) && self.resp_q.iter().all(|q| q.is_empty())
    }

    /// Earliest message arrival across every queue, for idle
    /// fast-forwarding. Every push stamps `now + latency` with a constant
    /// latency, so each queue front is its minimum. `Some(c <= now)`
    /// means a message is deliverable this cycle; `None` means the
    /// crossbar is empty.
    // lint: allow(next-event-pairing) reason=the crossbar advances in deliver_requests/deliver_responses_into, driven every cycle by the gpu loop; there is no standalone tick
    pub fn next_event(&self) -> Option<Cycle> {
        let req = self
            .req_q
            .iter()
            .filter_map(|q| q.front().map(|&(arrival, _)| arrival))
            .min();
        let resp = self
            .resp_q
            .iter()
            .filter_map(|q| q.front().map(|&(arrival, _)| arrival))
            .min();
        match (req, resp) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Requests currently in flight toward slices (oracle/telemetry
    /// accessor).
    pub fn queued_requests(&self) -> usize {
        self.req_q.iter().map(VecDeque::len).sum()
    }

    /// Responses currently in flight toward SMs (oracle/telemetry
    /// accessor).
    pub fn queued_responses(&self) -> usize {
        self.resp_q.iter().map(VecDeque::len).sum()
    }

    /// Message conservation: everything injected was either delivered or
    /// is still queued. Nothing is dropped, nothing invented.
    ///
    /// # Panics
    ///
    /// Panics when a message went missing or appeared from nowhere.
    #[cfg(feature = "check-invariants")]
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.stats.requests,
            self.delivered_requests + self.queued_requests() as u64,
            "invariant violated: crossbar request conservation \
             (sent != delivered + queued)"
        );
        assert_eq!(
            self.stats.responses,
            self.delivered_responses + self.queued_responses() as u64,
            "invariant violated: crossbar response conservation \
             (sent != delivered + queued)"
        );
        for (ch, q) in self.req_q.iter().enumerate() {
            assert!(
                q.len() <= REQ_QUEUE_CAP,
                "invariant violated: slice {ch} request queue over capacity \
                 ({} > {REQ_QUEUE_CAP})",
                q.len()
            );
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> XbarStats {
        self.stats
    }

    // ---- Sharded-execution hooks (crate-internal; see `crate::shard`) ----
    //
    // During a sharded prologue the per-slice request queues are owned by
    // shard workers and SM-side injection goes through a counter-mirrored
    // gate; these hooks move queue contents out and back, and keep the
    // stats and oracle counters consistent so the re-attached crossbar is
    // bit-identical to one that ran the same cycles single-threaded.

    /// The configured traversal latency (the shard epoch length).
    pub(crate) fn latency(&self) -> u32 {
        self.latency
    }

    /// The per-endpoint delivery port limit.
    pub(crate) fn ports(&self) -> u32 {
        self.ports
    }

    /// Detaches slice `ch`'s in-flight request queue for shard ownership.
    pub(crate) fn take_requests(&mut self, ch: u16) -> VecDeque<(Cycle, L2Request)> {
        std::mem::take(&mut self.req_q[ch as usize])
    }

    /// Restores slice `ch`'s request queue at shard reassembly. The queue
    /// must be in send order (undelivered carry-overs first, then gated
    /// sends not yet handed to the shard), which is exactly the order the
    /// single-threaded queue would hold.
    pub(crate) fn restore_requests(&mut self, ch: u16, q: VecDeque<(Cycle, L2Request)>) {
        debug_assert!(
            self.req_q[ch as usize].is_empty(),
            "restore over live queue"
        );
        debug_assert!(q.len() <= REQ_QUEUE_CAP, "restored queue over capacity");
        self.req_q[ch as usize] = q;
    }

    /// Enqueues a response with a pre-computed arrival stamp: the shard
    /// egress merge replays `send_response(resp, emit_cycle)` calls after
    /// the fact, in canonical order, with identical stamps.
    pub(crate) fn push_stamped_response(&mut self, resp: L2Response, arrival: Cycle) {
        self.resp_q[resp.dest.0 as usize].push_back((arrival, resp));
        self.stats.responses += 1;
    }

    /// Folds the shard gate's injection outcome into the request stats
    /// (`sent` accepted sends, `rejects` capacity rejections), matching
    /// what per-cycle `try_send_request` calls would have counted.
    pub(crate) fn add_request_stats(&mut self, sent: u64, rejects: u64) {
        self.stats.requests += sent;
        self.stats.rejects += rejects;
    }

    /// Oracle bookkeeping: requests a shard worker delivered into its
    /// slice while owning the queue, so `assert_conserved` still balances
    /// after reassembly.
    #[cfg(feature = "check-invariants")]
    pub(crate) fn note_shard_delivered_requests(&mut self, n: u64) {
        self.delivered_requests += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AccessKind, PhysLoc, SmId};

    fn xbar() -> Crossbar {
        Crossbar::new(
            &XbarConfig {
                latency: 4,
                ports_per_endpoint: 1,
            },
            2,
            2,
        )
    }

    fn req(channel: u16) -> L2Request {
        L2Request {
            loc: PhysLoc::new(channel, 0),
            kind: AccessKind::Read,
            src: SmId(0),
            l1_mshr: 0,
        }
    }

    #[test]
    fn requests_arrive_after_latency() {
        let mut x = xbar();
        assert!(x.try_send_request(req(0), 10));
        let mut got = Vec::new();
        x.deliver_requests(0, 13, &mut |r| {
            got.push(r);
            true
        });
        assert!(got.is_empty(), "delivered before latency elapsed");
        x.deliver_requests(0, 14, &mut |r| {
            got.push(r);
            true
        });
        assert_eq!(got.len(), 1);
        assert!(x.is_idle());
    }

    #[test]
    fn responses_arrive_after_latency() {
        let mut x = xbar();
        x.send_response(
            L2Response {
                loc: PhysLoc::new(1, 5),
                dest: SmId(1),
                l1_mshr: 3,
            },
            0,
        );
        assert!(x.deliver_responses(1, 3).is_empty());
        let r = x.deliver_responses(1, 4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].l1_mshr, 3);
    }

    #[test]
    fn ports_limit_delivery_rate() {
        let mut x = xbar();
        for _ in 0..3 {
            assert!(x.try_send_request(req(0), 0));
        }
        let mut count = 0;
        x.deliver_requests(0, 100, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1, "one port means one delivery per cycle");
        x.deliver_requests(0, 101, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn rejected_delivery_keeps_request_queued() {
        let mut x = xbar();
        assert!(x.try_send_request(req(0), 0));
        x.deliver_requests(0, 10, &mut |_| false);
        assert!(!x.is_idle());
        let mut got = 0;
        x.deliver_requests(0, 11, &mut |_| {
            got += 1;
            true
        });
        assert_eq!(got, 1);
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut x = xbar();
        for i in 0..REQ_QUEUE_CAP {
            assert!(x.try_send_request(req(0), i as Cycle));
        }
        assert!(!x.try_send_request(req(0), 0));
        assert_eq!(x.stats().rejects, 1);
        // The other slice's queue is unaffected.
        assert!(x.try_send_request(req(1), 0));
    }

    #[test]
    fn channels_route_independently() {
        let mut x = xbar();
        x.try_send_request(req(0), 0);
        x.try_send_request(req(1), 0);
        let mut got0 = 0;
        let mut got1 = 0;
        x.deliver_requests(0, 10, &mut |_| {
            got0 += 1;
            true
        });
        x.deliver_requests(1, 10, &mut |_| {
            got1 += 1;
            true
        });
        assert_eq!((got0, got1), (1, 1));
    }
}
