//! Deterministic, allocation-friendly hashing for simulator hot paths.
//!
//! `std`'s default SipHash is DoS-hardened, which the simulator does not
//! need: MSHR maps are keyed by trusted atom indices, and lookups sit on
//! the per-access L1/L2 path. This is the multiply-rotate-xor hash used
//! by rustc ("FxHash"): a few cycles per 8-byte chunk and — unlike the
//! randomly seeded `RandomState` — fully deterministic across runs and
//! platforms, matching the simulator's bit-identical replay guarantees.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from rustc's FxHash (derived from the golden ratio).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash state: one rotate, one xor, one multiply per chunk.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`]; construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`]; construct with `FxHashSet::default()`.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_u64_keys() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 37, i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 37)), Some(&(i as usize)));
        }
        assert_eq!(m.remove(&37), Some(1));
        assert_eq!(m.get(&37), None);
    }

    #[test]
    fn set_round_trips() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert!(s.remove(&7));
        assert!(s.is_empty());
    }

    #[test]
    fn hash_is_deterministic() {
        // Unlike RandomState, two independently built hashers agree —
        // the property the replay guarantees rely on.
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(0xdead_beef), hash(0xdead_beef));
        assert_ne!(hash(1), hash(2));
    }
}
