//! The protection-scheme interface: how memory protection injects traffic
//! into the simulated hierarchy.
//!
//! The simulator itself knows nothing about ECC codes. Instead, an
//! implementation of [`ProtectionScheme`] is consulted at three points:
//!
//! 1. **Address mapping** ([`ProtectionScheme::map`]) — logical atoms are
//!    translated to channel-local physical locations. Inline-ECC layouts
//!    insert carve-outs here.
//! 2. **Demand fills** ([`ProtectionScheme::demand_fill`]) — on an L2 miss
//!    the scheme may require additional ECC-atom fetches that gate the fill
//!    (the data cannot be verified until its check bits arrive).
//! 3. **Write-backs** ([`ProtectionScheme::writeback`]) — a dirty eviction
//!    may require an ECC read-modify-write, or may be satisfiable on chip
//!    (CacheCraft's codeword reconstruction), possibly buffered and
//!    coalesced ([`ProtectionScheme::drain_ecc_writes`]).
//!
//! [`NoProtection`] (ECC disabled) lives here so the simulator is testable
//! stand-alone; the inline-ECC baselines and CacheCraft live in the
//! `ccraft-core` crate.

use crate::types::{Cycle, LogicalAtom, PhysLoc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Striping of the global logical atom space across channels.
///
/// Global logical atoms are dealt to channels in `interleave_atoms`-sized
/// blocks (256 B by default), producing a dense per-channel logical space
/// that the per-channel inline-ECC layout then maps to physical atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelInterleave {
    channels: u16,
    interleave_atoms: u64,
}

impl ChannelInterleave {
    /// Creates an interleave.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `interleave_atoms` is not a positive
    /// power of two.
    pub fn new(channels: u16, interleave_atoms: u64) -> Self {
        assert!(channels > 0, "channels must be positive");
        assert!(
            interleave_atoms.is_power_of_two(),
            "interleave granularity must be a power of two"
        );
        ChannelInterleave {
            channels,
            interleave_atoms,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u16 {
        self.channels
    }

    /// Splits a global logical atom into `(channel, channel-local logical
    /// atom)`.
    #[inline]
    pub fn split(&self, logical: LogicalAtom) -> (u16, u64) {
        let block = logical.0 / self.interleave_atoms;
        let offset = logical.0 % self.interleave_atoms;
        let channel = (block % self.channels as u64) as u16;
        let local = (block / self.channels as u64) * self.interleave_atoms + offset;
        (channel, local)
    }

    /// Inverse of [`split`](Self::split).
    #[inline]
    pub fn join(&self, channel: u16, local: u64) -> LogicalAtom {
        let block = local / self.interleave_atoms;
        let offset = local % self.interleave_atoms;
        LogicalAtom(
            (block * self.channels as u64 + channel as u64) * self.interleave_atoms + offset,
        )
    }
}

/// Extra DRAM fetches required before a demand fill is usable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FillPlan {
    /// Channel-local ECC atoms to fetch (same channel as the data). Empty
    /// when the fill needs no ECC traffic (unprotected, or the check bits
    /// are already on chip).
    pub ecc_fetches: Vec<u64>,
}

impl FillPlan {
    /// A plan requiring no extra traffic.
    pub fn none() -> Self {
        FillPlan::default()
    }
}

/// ECC traffic for one dirty-data write-back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WritebackPlan {
    /// ECC atoms to read (the read half of a read-modify-write).
    pub ecc_reads: Vec<u64>,
    /// ECC atoms to write immediately (un-buffered RMW write half).
    pub ecc_writes: Vec<u64>,
}

impl WritebackPlan {
    /// A plan requiring no ECC traffic.
    pub fn none() -> Self {
        WritebackPlan::default()
    }
}

/// Counters every scheme reports; fields not applicable to a scheme stay
/// zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectionStats {
    /// Demand fills that needed an ECC fetch from DRAM.
    pub ecc_demand_fetches: u64,
    /// Demand fills whose check bits were already on chip.
    pub ecc_fetch_hits: u64,
    /// Write-backs that required an ECC read-modify-write from DRAM.
    pub rmw_writebacks: u64,
    /// Write-backs whose ECC atom was reconstructed entirely on chip
    /// (CacheCraft C3 reconstruction).
    pub reconstructed_writebacks: u64,
    /// Write-backs absorbed by an on-chip dirty ECC entry or coalescing
    /// buffer (no immediate DRAM traffic).
    pub absorbed_writebacks: u64,
    /// ECC writes merged away by coalescing (writes that never reached
    /// DRAM because a later write to the same ECC atom subsumed them).
    pub coalesced_ecc_writes: u64,
    /// Dirty ECC-structure evictions that produced a DRAM ECC write.
    pub ecc_structure_writebacks: u64,
    /// Demand fills served by a fragment-store hit specifically (a subset
    /// of [`ecc_fetch_hits`](Self::ecc_fetch_hits)). Serialized only when
    /// nonzero, so schemes without a fragment store emit unchanged JSON.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub fragment_store_hits: u64,
    /// Peak occupancy observed across ECC write-coalescing buffers
    /// (entries). Serialized only when nonzero.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub coalesce_peak_occupancy: u64,
    /// Deepest merge chain on a single buffered ECC write (writes folded
    /// into one entry). Serialized only when nonzero.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub coalesce_max_merge_depth: u64,
}

/// Serde helper: telemetry-ish counters are omitted while zero so output
/// stays byte-compatible with earlier versions.
fn is_zero(v: &u64) -> bool {
    *v == 0
}

impl ProtectionStats {
    /// Folds another stats block into this one. Counter fields sum; the
    /// two peak/depth watermarks take the max, which is order-independent,
    /// so merging per-channel shard stats in any grouping reproduces the
    /// single-threaded aggregate bit for bit.
    pub fn merge(&mut self, other: &ProtectionStats) {
        self.ecc_demand_fetches += other.ecc_demand_fetches;
        self.ecc_fetch_hits += other.ecc_fetch_hits;
        self.rmw_writebacks += other.rmw_writebacks;
        self.reconstructed_writebacks += other.reconstructed_writebacks;
        self.absorbed_writebacks += other.absorbed_writebacks;
        self.coalesced_ecc_writes += other.coalesced_ecc_writes;
        self.ecc_structure_writebacks += other.ecc_structure_writebacks;
        self.fragment_store_hits += other.fragment_store_hits;
        self.coalesce_peak_occupancy = self
            .coalesce_peak_occupancy
            .max(other.coalesce_peak_occupancy);
        self.coalesce_max_merge_depth = self
            .coalesce_max_merge_depth
            .max(other.coalesce_max_merge_depth);
    }
}

/// One channel's worth of a protection scheme, detached for shard
/// ownership (see [`ProtectionScheme::detach_channels`]).
///
/// Every method mirrors its [`ProtectionScheme`] counterpart but is scoped
/// to the single channel this object owns: `loc.channel` on incoming calls
/// always equals that channel, and the returned plans reference only
/// channel-local atoms. Implementations must be `Send` so a shard worker
/// can own them for the duration of an epoch run.
pub trait ChannelScheme: fmt::Debug + Send {
    /// Scoped [`ProtectionScheme::demand_fill`].
    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan;

    /// Scoped [`ProtectionScheme::ecc_arrived`].
    fn ecc_arrived(&mut self, loc: PhysLoc, now: Cycle);

    /// Scoped [`ProtectionScheme::writeback`].
    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan;

    /// Scoped [`ProtectionScheme::drain_ecc_writes`] (the channel is
    /// implicit).
    fn drain_ecc_writes(&mut self, now: Cycle, budget: usize) -> Vec<u64>;

    /// Scoped [`ProtectionScheme::next_timed_event`]: earliest cycle this
    /// channel's buffered state can act on its own.
    fn next_timed_event(&self) -> Option<Cycle> {
        None
    }

    /// Surrenders the channel object for re-attachment. The scheme that
    /// produced this box via [`ProtectionScheme::detach_channels`] downcasts
    /// it back to its concrete channel type to recover buffered state and
    /// per-channel counters; implementations simply return `self`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Adapts one detached [`ChannelScheme`] back to the [`ProtectionScheme`]
/// surface an [`crate::l2::L2Slice`] ticks against, so slice code is
/// identical under sharded and single-threaded execution. The slice only
/// ever makes channel-scoped calls; the whole-scheme methods (`map`,
/// `name`, `stats`, flush/drain) are unreachable from a shard worker and
/// panic if hit — reaching them is an engine bug, not a recoverable state.
#[derive(Debug)]
pub struct ShardSchemeAdapter {
    inner: Box<dyn ChannelScheme>,
    channel: u16,
}

impl ShardSchemeAdapter {
    /// Wraps a detached channel scheme for the given channel.
    pub fn new(inner: Box<dyn ChannelScheme>, channel: u16) -> Self {
        ShardSchemeAdapter { inner, channel }
    }

    /// Unwraps the channel scheme for re-attachment.
    pub fn into_inner(self) -> Box<dyn ChannelScheme> {
        self.inner
    }

    /// Earliest cycle the wrapped channel's buffers can act on their own
    /// (for the shard-local idle skip).
    pub fn channel_timed_event(&self) -> Option<Cycle> {
        self.inner.next_timed_event()
    }
}

impl ProtectionScheme for ShardSchemeAdapter {
    fn name(&self) -> &str {
        "shard-adapter"
    }

    fn map(&self, _logical: LogicalAtom) -> PhysLoc {
        unreachable!("address mapping is SM-side; shard workers never map")
    }

    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan {
        debug_assert_eq!(loc.channel, self.channel, "cross-channel demand fill");
        self.inner.demand_fill(loc, now)
    }

    fn ecc_arrived(&mut self, loc: PhysLoc, now: Cycle) {
        debug_assert_eq!(loc.channel, self.channel, "cross-channel ECC arrival");
        self.inner.ecc_arrived(loc, now)
    }

    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        debug_assert_eq!(loc.channel, self.channel, "cross-channel writeback");
        self.inner.writeback(loc, now, resident)
    }

    fn drain_ecc_writes(&mut self, channel: u16, now: Cycle, budget: usize) -> Vec<u64> {
        debug_assert_eq!(channel, self.channel, "cross-channel drain");
        self.inner.drain_ecc_writes(now, budget)
    }

    fn flush(&mut self) {
        unreachable!("flush runs in the single-threaded endgame, never in a shard")
    }

    fn is_drained(&self) -> bool {
        unreachable!("drain checks run in the single-threaded endgame, never in a shard")
    }

    fn next_timed_event(&self) -> Option<Cycle> {
        self.inner.next_timed_event()
    }

    fn stats(&self) -> ProtectionStats {
        unreachable!("stats are read from the re-attached whole scheme")
    }
}

/// A memory-protection scheme plugged into the simulator.
///
/// Implementations must be deterministic: the same call sequence must
/// produce the same plans (simulation results are required to be
/// reproducible bit-for-bit given a seed).
pub trait ProtectionScheme: fmt::Debug + Send {
    /// Short scheme name for reports (e.g. `"cachecraft"`).
    fn name(&self) -> &str;

    /// Maps a software-visible logical atom to its physical location.
    fn map(&self, logical: LogicalAtom) -> PhysLoc;

    /// Called on an L2 demand miss for `loc` (a data atom). Returns the
    /// ECC fetches that gate the fill. The scheme may update internal
    /// structures (e.g. reserve an ECC-cache entry).
    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan;

    /// Called when a demand ECC fetch previously returned by
    /// [`demand_fill`](Self::demand_fill) arrives from DRAM.
    fn ecc_arrived(&mut self, loc: PhysLoc, now: Cycle);

    /// Called when the L2 writes back a dirty data atom. `resident`
    /// answers whether a given channel-local data atom currently holds
    /// valid data in the L2 slice (used by codeword reconstruction).
    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan;

    /// Hands out buffered ECC writes (coalescing buffers, dirty
    /// ECC-structure evictions) that should be issued now, up to `budget`
    /// atoms for `channel`.
    fn drain_ecc_writes(&mut self, channel: u16, now: Cycle, budget: usize) -> Vec<u64>;

    /// Forces all internal buffers to become drainable (end of kernel).
    fn flush(&mut self);

    /// `true` when no buffered ECC writes remain anywhere.
    fn is_drained(&self) -> bool;

    /// Earliest cycle at which [`drain_ecc_writes`](Self::drain_ecc_writes)
    /// may newly produce atoms *without any other simulator activity* —
    /// used by the cycle loop's idle fast-forward. `None` (the default)
    /// declares the scheme's drain behaviour time-independent: if a call
    /// this cycle yields nothing, a call any later cycle yields nothing
    /// too, so buffered state never blocks a skip on its own. Schemes with
    /// age-triggered buffers (CacheCraft's coalesce timeout) override this
    /// with the earliest pending deadline; `Some(c <= now)` marks the
    /// scheme busy right now.
    fn next_timed_event(&self) -> Option<Cycle> {
        None
    }

    /// L2 capacity per slice (bytes) repurposed by the scheme's on-chip
    /// structures; the simulator shrinks the L2 accordingly.
    fn l2_tax_bytes(&self) -> u64 {
        0
    }

    /// The codec the in-situ fault injector should run decode trials
    /// through (see [`crate::faults`]). Defaults to
    /// [`ProtectionCodec::Unprotected`]: any injected data fault is silent
    /// corruption. Real schemes override this with their storage codec.
    fn fault_codec(&self) -> crate::faults::ProtectionCodec {
        crate::faults::ProtectionCodec::Unprotected
    }

    /// Aggregate counters.
    fn stats(&self) -> ProtectionStats;

    /// Splits the scheme's channel-scoped mutable state into one
    /// [`ChannelScheme`] per channel so shard workers can own `(L2 slice,
    /// memory controller, DRAM channel, channel scheme)` stacks and tick
    /// them without synchronization. Element `i` of the returned vec owns
    /// channel `i`. Returns `None` (the default) when the scheme does not
    /// partition, which disables sharded execution for the run — never a
    /// correctness hazard, only a lost speedup.
    ///
    /// While detached, the scheme must still answer the immutable
    /// whole-scheme queries (`map`, `name`, `l2_tax_bytes`, `fault_codec`);
    /// the channel-scoped mutators are routed through the detached objects
    /// until [`attach_channels`](Self::attach_channels) hands them back.
    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        None
    }

    /// Re-absorbs channel state previously produced by
    /// [`detach_channels`](Self::detach_channels), in channel order. After
    /// this call the scheme's buffered state, drain behaviour and
    /// [`stats`](Self::stats) must be exactly what a single-threaded run
    /// reaching the same cycle would report.
    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        let _ = channels;
        unreachable!("attach_channels without a matching detach_channels");
    }
}

/// ECC disabled: identity layout, no extra traffic. The performance
/// upper-bound baseline.
#[derive(Debug, Clone)]
pub struct NoProtection {
    interleave: ChannelInterleave,
}

impl NoProtection {
    /// Creates the scheme for a machine with the given channel interleave.
    pub fn new(interleave: ChannelInterleave) -> Self {
        NoProtection { interleave }
    }
}

impl ProtectionScheme for NoProtection {
    fn name(&self) -> &str {
        "no-protection"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        let (channel, local) = self.interleave.split(logical);
        PhysLoc::new(channel, local)
    }

    fn demand_fill(&mut self, _loc: PhysLoc, _now: Cycle) -> FillPlan {
        FillPlan::none()
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        _loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        WritebackPlan::none()
    }

    fn drain_ecc_writes(&mut self, _channel: u16, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn flush(&mut self) {}

    fn is_drained(&self) -> bool {
        true
    }

    fn stats(&self) -> ProtectionStats {
        ProtectionStats::default()
    }

    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        Some(
            (0..self.interleave.channels())
                .map(|_| Box::new(NoProtectionChannel) as Box<dyn ChannelScheme>)
                .collect(),
        )
    }

    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        // Stateless and counterless: the detached channels carry nothing
        // back. Length-check only, to catch engine bookkeeping bugs.
        debug_assert_eq!(channels.len(), self.interleave.channels() as usize);
    }
}

/// The per-channel face of [`NoProtection`]: stateless, no ECC traffic.
#[derive(Debug, Clone, Copy)]
struct NoProtectionChannel;

impl ChannelScheme for NoProtectionChannel {
    fn demand_fill(&mut self, _loc: PhysLoc, _now: Cycle) -> FillPlan {
        FillPlan::none()
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        _loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        WritebackPlan::none()
    }

    fn drain_ecc_writes(&mut self, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_split_join_round_trip() {
        let il = ChannelInterleave::new(8, 8);
        for atom in (0..100_000u64).step_by(977) {
            let (ch, local) = il.split(LogicalAtom(atom));
            assert!(ch < 8);
            assert_eq!(il.join(ch, local), LogicalAtom(atom));
        }
    }

    #[test]
    fn interleave_deals_blocks_round_robin() {
        let il = ChannelInterleave::new(4, 8);
        // Atoms 0..8 -> channel 0, 8..16 -> channel 1, ...
        assert_eq!(il.split(LogicalAtom(0)).0, 0);
        assert_eq!(il.split(LogicalAtom(7)).0, 0);
        assert_eq!(il.split(LogicalAtom(8)).0, 1);
        assert_eq!(il.split(LogicalAtom(31)).0, 3);
        assert_eq!(il.split(LogicalAtom(32)).0, 0);
        // Channel-local indices stay dense per channel.
        assert_eq!(il.split(LogicalAtom(32)).1, 8);
        assert_eq!(il.split(LogicalAtom(33)).1, 9);
    }

    #[test]
    fn interleave_is_balanced() {
        let il = ChannelInterleave::new(8, 8);
        let mut counts = [0u64; 8];
        for atom in 0..8 * 8 * 100 {
            counts[il.split(LogicalAtom(atom)).0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == counts[0]));
    }

    #[test]
    fn no_protection_is_identity_modulo_interleave() {
        let il = ChannelInterleave::new(2, 8);
        let mut scheme = NoProtection::new(il);
        let loc = scheme.map(LogicalAtom(100));
        let (ch, local) = il.split(LogicalAtom(100));
        assert_eq!(loc, PhysLoc::new(ch, local));
        assert_eq!(scheme.demand_fill(loc, 0), FillPlan::none());
        let mut resident = |_: u64| true;
        assert_eq!(
            scheme.writeback(loc, 0, &mut resident),
            WritebackPlan::none()
        );
        assert!(scheme.is_drained());
        assert_eq!(scheme.stats(), ProtectionStats::default());
        assert_eq!(scheme.l2_tax_bytes(), 0);
        assert_eq!(scheme.name(), "no-protection");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_interleave() {
        let _ = ChannelInterleave::new(2, 7);
    }

    #[test]
    fn zero_telemetry_counters_are_omitted_from_json() {
        let base = ProtectionStats {
            ecc_demand_fetches: 3,
            ..ProtectionStats::default()
        };
        let json = serde_json::to_string(&base).unwrap();
        assert!(!json.contains("fragment_store_hits"));
        assert!(!json.contains("coalesce_peak_occupancy"));
        assert!(!json.contains("coalesce_max_merge_depth"));
        // Old-format JSON (without them) still deserializes.
        let back: ProtectionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(base, back);
        // Nonzero values round-trip.
        let full = ProtectionStats {
            fragment_store_hits: 5,
            coalesce_peak_occupancy: 9,
            coalesce_max_merge_depth: 4,
            ..base
        };
        let json = serde_json::to_string(&full).unwrap();
        assert!(json.contains("coalesce_max_merge_depth"));
        let back: ProtectionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(full, back);
    }
}
