//! Top-level simulator: wires SMs, crossbar, L2 slices and memory
//! controllers together and runs a kernel trace to completion.
//!
//! The pipeline per cycle (reverse order, so data moves one stage per
//! cycle):
//!
//! 1. every L2 slice ticks (controller scheduling, fills, write-backs,
//!    request pipeline) and emits responses into the crossbar;
//! 2. the crossbar delivers matured requests to slices and matured
//!    responses to L1s;
//! 3. every SM ticks (L1 pipeline, LSU streaming, warp scheduling).
//!
//! When every warp retires, the simulator enters a *flush phase*: the
//! protection scheme's buffers are flushed and all dirty L2 state is
//! written back, so DRAM-traffic accounting is complete and fair across
//! schemes (a scheme cannot hide write traffic in on-chip buffers).
//! Simulation ends when all queues drain, or at `max_cycles` (reported via
//! [`SimStats::timed_out`]).

use crate::config::GpuConfig;
use crate::dram::MapOrder;
use crate::l1::L1Cache;
use crate::l2::L2Slice;
use crate::protection::ProtectionScheme;
use crate::sm::SmCore;
use crate::stats::SimStats;
use crate::trace::{KernelTrace, WarpTrace};
use crate::types::{Cycle, SmId};
use crate::xbar::Crossbar;

/// Runs `trace` on the machine described by `cfg` under `scheme`.
///
/// Warps are assigned to SMs round-robin. The trace must fit within the
/// machine's resident-warp capacity (`sms * warps_per_sm`).
///
/// # Panics
///
/// Panics if the configuration fails validation or the trace has more
/// warps than the machine has warp slots.
pub fn simulate(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
) -> SimStats {
    cfg.validate().expect("invalid GpuConfig");
    let sms_n = cfg.core.sms as usize;
    let slots = sms_n * cfg.core.warps_per_sm as usize;
    assert!(
        trace.warps().len() <= slots,
        "trace has {} warps but the machine has {slots} warp slots",
        trace.warps().len()
    );

    // Distribute warps round-robin across SMs.
    let mut per_sm: Vec<Vec<WarpTrace>> = vec![Vec::new(); sms_n];
    for (i, w) in trace.warps().iter().enumerate() {
        per_sm[i % sms_n].push(w.clone());
    }
    let mut sms: Vec<SmCore> = per_sm
        .into_iter()
        .enumerate()
        .map(|(i, traces)| {
            let id = SmId(i as u16);
            SmCore::new(id, &cfg.core, L1Cache::new(id, &cfg.l1), traces)
        })
        .collect();

    let tax = scheme.l2_tax_bytes();
    let mut slices: Vec<L2Slice> = (0..cfg.mem.channels)
        .map(|ch| L2Slice::new(cfg, ch, order, tax))
        .collect();
    let mut xbar = Crossbar::new(&cfg.xbar, cfg.core.sms, cfg.mem.channels);

    let mut now: Cycle = 0;
    let mut exec_cycles: Cycle = 0;
    let mut flushed = false;
    let mut timed_out = false;

    loop {
        // 1. Memory side.
        for slice in &mut slices {
            slice.tick(scheme, now);
            for resp in slice.pop_responses(now) {
                xbar.send_response(resp, now);
            }
        }
        // 2. Interconnect delivery.
        for ch in 0..slices.len() {
            let slice = &mut slices[ch];
            xbar.deliver_requests(ch as u16, now, &mut |req| {
                if slice.can_accept() {
                    slice.push(req);
                    true
                } else {
                    false
                }
            });
        }
        for i in 0..sms.len() {
            for resp in xbar.deliver_responses(i as u16, now) {
                sms[i].l1.accept_response(resp);
            }
        }
        // 3. Cores.
        for sm in &mut sms {
            let xbar_ref = &mut xbar;
            let scheme_map = &*scheme;
            sm.tick(
                now,
                &mut |atom| scheme_map.map(atom),
                &mut |req| xbar_ref.try_send_request(req, now),
            );
        }

        // Progress / termination.
        let warps_done = sms.iter().all(|s| s.all_warps_done(now));
        if warps_done && exec_cycles == 0 {
            exec_cycles = now + 1;
        }
        if warps_done && !flushed {
            // Wait for in-flight stores to land before flushing dirty L2.
            let stores_landed = sms.iter().all(|s| s.l1.is_idle())
                && xbar.is_idle()
                && slices.iter().all(|s| s.is_idle());
            if stores_landed {
                scheme.flush();
                for slice in &mut slices {
                    slice.flush_dirty(scheme, now);
                }
                flushed = true;
            }
        }
        if flushed {
            let drained = slices.iter().all(|s| s.is_idle()) && scheme.is_drained();
            if drained {
                now += 1;
                break;
            }
        }
        now += 1;
        if now >= cfg.max_cycles {
            timed_out = true;
            break;
        }
    }

    // Aggregate statistics.
    let mut stats = SimStats {
        kernel: trace.name().to_string(),
        scheme: scheme.name().to_string(),
        cycles: now,
        exec_cycles: if exec_cycles == 0 { now } else { exec_cycles },
        timed_out,
        ops: trace.total_ops(),
        accesses: trace.total_accesses(),
        l1_read_hits: 0,
        l1_read_misses: 0,
        l2_read_hits: 0,
        l2_read_misses: 0,
        l2_fills: 0,
        l2_writebacks: 0,
        dram: [0; 4],
        row_hits: 0,
        row_empties: 0,
        row_conflicts: 0,
        refreshes: 0,
        mean_read_latency: 0.0,
        protection: scheme.stats(),
    };
    for sm in &sms {
        let l1 = sm.l1.stats();
        stats.l1_read_hits += l1.read_hits;
        stats.l1_read_misses += l1.read_misses;
    }
    let mut lat_sum = 0u64;
    let mut lat_n = 0u64;
    for slice in &slices {
        let s = slice.stats();
        stats.l2_read_hits += s.cache.read_hits;
        stats.l2_read_misses += s.cache.read_misses;
        stats.l2_fills += s.fills;
        stats.l2_writebacks += s.writebacks;
        let mc = slice.mc_stats();
        for (i, c) in mc.count.iter().enumerate() {
            stats.dram[i] += c;
        }
        stats.row_hits += mc.row_hits;
        stats.row_empties += mc.row_empties;
        stats.row_conflicts += mc.row_conflicts;
        stats.refreshes += mc.refreshes;
        lat_sum += mc.read_latency_sum;
        lat_n += mc.read_latency_count;
    }
    stats.mean_read_latency = if lat_n == 0 {
        0.0
    } else {
        lat_sum as f64 / lat_n as f64
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::{ChannelInterleave, NoProtection};
    use crate::trace::WarpOp;
    use crate::types::{LogicalAtom, TrafficClass};

    fn tiny_scheme(cfg: &GpuConfig) -> NoProtection {
        NoProtection::new(ChannelInterleave::new(
            cfg.mem.channels,
            cfg.mem.interleave_atoms,
        ))
    }

    /// A streaming kernel: each warp loads a disjoint run of atoms.
    fn streaming(warps: usize, atoms_per_warp: u64) -> KernelTrace {
        let traces = (0..warps as u64)
            .map(|w| {
                let ops = (0..atoms_per_warp / 4)
                    .map(|i| WarpOp::Load {
                        atoms: (0..4)
                            .map(|k| LogicalAtom(w * atoms_per_warp + i * 4 + k))
                            .collect(),
                    })
                    .collect();
                WarpTrace::new(ops)
            })
            .collect();
        KernelTrace::new("stream-test", traces)
    }

    #[test]
    fn streaming_kernel_completes() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(4, 64);
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.ops, trace.total_ops());
        // Every distinct atom read exactly once from DRAM (no reuse).
        assert_eq!(
            stats.dram_count(TrafficClass::DataRead),
            trace.footprint_atoms()
        );
        assert_eq!(stats.dram_count(TrafficClass::EccRead), 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let a = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let b = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn reuse_hits_in_l2() {
        // Two passes over a small footprint: second pass hits in caches.
        let ops: Vec<WarpOp> = (0..2)
            .flat_map(|_| {
                (0..16).map(|i| WarpOp::Load {
                    atoms: vec![LogicalAtom(i * 4)],
                })
            })
            .collect();
        let trace = KernelTrace::new("reuse", vec![WarpTrace::new(ops)]);
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        // 16 distinct atoms; second pass must not refetch.
        assert_eq!(stats.dram_count(TrafficClass::DataRead), 16);
        assert!(stats.l1_read_hits + stats.l2_read_hits >= 16);
    }

    #[test]
    fn store_kernel_writes_back_on_flush() {
        let ops: Vec<WarpOp> = (0..8)
            .map(|i| WarpOp::Store {
                atoms: vec![LogicalAtom(i)],
                full: true,
            })
            .collect();
        let trace = KernelTrace::new("store", vec![WarpTrace::new(ops)]);
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.dram_count(TrafficClass::DataWrite), 8);
        assert_eq!(stats.dram_count(TrafficClass::DataRead), 0, "full stores fetch nothing");
        assert!(stats.cycles > stats.exec_cycles, "flush happens after retire");
    }

    #[test]
    fn compute_only_kernel_touches_no_dram() {
        let trace = KernelTrace::new(
            "compute",
            vec![WarpTrace::new(vec![WarpOp::Compute { cycles: 100 }])],
        );
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert_eq!(stats.dram_bytes(), 0);
        assert!(stats.cycles >= 100);
    }

    #[test]
    fn multiple_sms_share_the_memory_system() {
        let cfg = GpuConfig::tiny(); // 2 SMs
        let trace = streaming(8, 64); // warps spread over both SMs
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(
            stats.dram_count(TrafficClass::DataRead),
            trace.footprint_atoms()
        );
    }

    #[test]
    #[should_panic(expected = "warp slots")]
    fn too_many_warps_rejected() {
        let cfg = GpuConfig::tiny(); // 2 SMs x 4 warps = 8 slots
        let trace = streaming(9, 4);
        let mut scheme = tiny_scheme(&cfg);
        let _ = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let cfg = GpuConfig::tiny();
        let trace = KernelTrace::new("empty", vec![]);
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.dram_bytes(), 0);
    }
}
