//! Top-level simulator: wires SMs, crossbar, L2 slices and memory
//! controllers together and runs a kernel trace to completion.
//!
//! The pipeline per cycle (reverse order, so data moves one stage per
//! cycle):
//!
//! 1. every L2 slice ticks (controller scheduling, fills, write-backs,
//!    request pipeline) and emits responses into the crossbar;
//! 2. the crossbar delivers matured requests to slices and matured
//!    responses to L1s;
//! 3. every SM ticks (L1 pipeline, LSU streaming, warp scheduling).
//!
//! When every warp retires, the simulator enters a *flush phase*: the
//! protection scheme's buffers are flushed and all dirty L2 state is
//! written back, so DRAM-traffic accounting is complete and fair across
//! schemes (a scheme cannot hide write traffic in on-chip buffers).
//! Simulation ends when all queues drain, or at `max_cycles` (reported via
//! [`SimStats::timed_out`]).

use crate::config::GpuConfig;
use crate::dram::MapOrder;
use crate::faults::{FaultConfig, FaultInjector};
#[cfg(feature = "check-invariants")]
use crate::invariants::{progress_signature, Oracle};
use crate::l1::L1Cache;
use crate::l2::L2Slice;
use crate::protection::ProtectionScheme;
use crate::sm::SmCore;
use crate::stats::SimStats;
use crate::trace::{KernelTrace, WarpTrace};
use crate::types::{Cycle, SmId, TrafficClass};
use crate::xbar::Crossbar;
use ccraft_telemetry::chrome_trace::{ChromeTrace, TraceEvent};
use ccraft_telemetry::profiler::{
    ChannelLoad, HostStamp, MemoStats, PhaseTimer, ShardLoad, SimProfile,
};
use ccraft_telemetry::{Histogram, Sampler, TelemetryConfig};

/// Result of an instrumented run: the stats (with optional histogram and
/// timeline attached) plus the Chrome trace when event tracing was on and
/// the self-profile when profiling was on.
#[derive(Debug)]
pub struct SimOutput {
    /// Aggregate statistics; `latency_hist` / `timeline` are populated
    /// when telemetry was enabled.
    pub stats: SimStats,
    /// Collected trace events, when `trace_events` was enabled.
    pub trace: Option<ChromeTrace>,
    /// Self-profile (host-time attribution, memo hit rates, per-channel
    /// load), when profiling was requested.
    pub profile: Option<SimProfile>,
}

/// Live profiling state threaded through the cycle loop by
/// [`simulate_profiled`]. All host-time reads go through the lap timer
/// `t`; laps are attributed to the phase that just ran.
#[derive(Debug)]
struct LoopProf {
    /// Stamp taken before the first cycle (whole-run wall time).
    start: HostStamp,
    /// The per-phase lap timer.
    t: PhaseTimer,
    /// Host ns per channel's slice domain (L2 slice + MC + DRAM).
    slice_ns: Vec<u64>,
    /// Host ns in crossbar delivery (requests + response send/deliver).
    xbar_ns: u64,
    /// Host ns in the response-accept loop (L1 fill path).
    l1_ns: u64,
    /// Host ns in the SM tick loop.
    sm_ns: u64,
    /// Host ns in fault-injection + telemetry bookkeeping; the residual
    /// (total minus every attributed bucket) is folded in at the end.
    other_ns: u64,
    /// Host ns in the termination scan + flush phase.
    flush_ns: u64,
    /// Host ns in the idle fast-forward probe (includes the scheme's
    /// `next_timed_event` pacing probe).
    probe_ns: u64,
    /// Per-SM sleep memo effectiveness (hit = SM tick skipped).
    sm_sleep: MemoStats,
    /// Idle fast-forward span lengths, in cycles.
    idle_spans: Histogram,
    /// Idle fast-forward jumps taken.
    idle_jumps: u64,
    /// Simulated cycles skipped by idle fast-forward.
    idle_cycles: u64,
}

/// Trace-event track ids: SM `i` gets `SM_TID_BASE + i`, channel `c` gets
/// `CH_TID_BASE + c`.
const SM_TID_BASE: u32 = 1;
/// Base tid for per-channel DRAM lanes.
const CH_TID_BASE: u32 = 64;

/// Cumulative counter snapshot used to turn running totals into per-epoch
/// deltas for the timeline.
#[derive(Debug, Clone, Copy, Default)]
struct Snap {
    issued: u64,
    stall_no_ready: u64,
    stall_lsu: u64,
    dram_reads: u64,
    dram_writes: u64,
    row_hits: u64,
    row_total: u64,
    lat_sum: u64,
    lat_n: u64,
}

impl Snap {
    fn take(sms: &[SmCore], slices: &[L2Slice]) -> Self {
        let mut s = Snap::default();
        for sm in sms {
            let st = sm.stats();
            s.issued += st.issued_ops;
            s.stall_no_ready += st.stall_no_ready_warp;
            s.stall_lsu += st.stall_lsu_busy;
        }
        for slice in slices {
            let mc = slice.mc_stats();
            s.dram_reads +=
                mc.class_count(TrafficClass::DataRead) + mc.class_count(TrafficClass::EccRead);
            s.dram_writes +=
                mc.class_count(TrafficClass::DataWrite) + mc.class_count(TrafficClass::EccWrite);
            s.row_hits += mc.row_hits;
            s.row_total += mc.row_hits + mc.row_empties + mc.row_conflicts;
            s.lat_sum += mc.read_latency_sum;
            s.lat_n += mc.read_latency_count;
        }
        s
    }
}

/// The timeline series registered by the instrumented run, in order.
const TIMELINE_SERIES: [&str; 10] = [
    "ipc",
    "sm.stall_no_ready_warp",
    "sm.stall_lsu_busy",
    "dram.reads",
    "dram.writes",
    "dram.row_hit_rate",
    "dram.mean_read_latency",
    "mc.read_q",
    "mc.write_q",
    "l2.mshrs",
];

/// Earliest cycle at which any component can make progress, for idle
/// fast-forwarding. Returns `None` when some component is busy at `now`
/// (something can still act this cycle, so no cycles may be skipped) or
/// when no component reports a future event (drained or deadlocked — the
/// per-cycle loop handles both identically). Returns `Some(wake > now)`
/// when every component is quiescent until `wake`: all cycles in
/// `(now, wake)` are provably idle and can be jumped over.
fn idle_wake(
    now: Cycle,
    sms: &[SmCore],
    xbar: &Crossbar,
    slices: &[L2Slice],
    scheme: &dyn ProtectionScheme,
) -> Option<Cycle> {
    let mut wake: Option<Cycle> = None;
    let mut merge = |ev: Option<Cycle>| -> bool {
        match ev {
            Some(c) if c <= now => false,
            Some(c) => {
                wake = Some(wake.map_or(c, |w: Cycle| w.min(c)));
                true
            }
            None => true,
        }
    };
    for slice in slices {
        if !merge(slice.next_event(now)) {
            return None;
        }
    }
    if !merge(xbar.next_event()) {
        return None;
    }
    for sm in sms {
        if !merge(sm.next_event(now)) {
            return None;
        }
    }
    if !merge(scheme.next_timed_event()) {
        return None;
    }
    wake.filter(|&w| w > now)
}

/// Computes one epoch's sample values from the delta between snapshots
/// plus instantaneous queue occupancies.
fn epoch_values(prev: Snap, cur: Snap, epoch_len: u64, slices: &[L2Slice]) -> Vec<f64> {
    let len = epoch_len.max(1) as f64;
    let d_reads = cur.dram_reads - prev.dram_reads;
    let d_writes = cur.dram_writes - prev.dram_writes;
    let d_row_total = cur.row_total - prev.row_total;
    let d_lat_n = cur.lat_n - prev.lat_n;
    let mut read_q = 0usize;
    let mut write_q = 0usize;
    let mut mshrs = 0usize;
    for slice in slices {
        let (r, w) = slice.mc_queue_depth();
        read_q += r;
        write_q += w;
        mshrs += slice.mshrs_in_use();
    }
    vec![
        (cur.issued - prev.issued) as f64 / len,
        (cur.stall_no_ready - prev.stall_no_ready) as f64,
        (cur.stall_lsu - prev.stall_lsu) as f64,
        d_reads as f64,
        d_writes as f64,
        if d_row_total == 0 {
            1.0
        } else {
            (cur.row_hits - prev.row_hits) as f64 / d_row_total as f64
        },
        if d_lat_n == 0 {
            0.0
        } else {
            (cur.lat_sum - prev.lat_sum) as f64 / d_lat_n as f64
        },
        read_q as f64,
        write_q as f64,
        mshrs as f64,
    ]
}

/// Emits one per-component "epoch" slice event per SM and channel lane.
fn emit_epoch_events(
    trace_out: &mut ChromeTrace,
    sms: &[SmCore],
    slices: &[L2Slice],
    epoch_start: Cycle,
    epoch_end: Cycle,
    prev: Snap,
    cur: Snap,
) {
    if epoch_end <= epoch_start {
        return;
    }
    let dur = epoch_end - epoch_start;
    for (i, sm) in sms.iter().enumerate() {
        let st = sm.stats();
        trace_out.complete(TraceEvent {
            name: "epoch".to_string(),
            cat: "sm".to_string(),
            tid: SM_TID_BASE + i as u32,
            ts: epoch_start,
            dur,
            args: vec![
                ("issued_ops".to_string(), st.issued_ops as f64),
                ("idle_cycles".to_string(), st.idle_cycles as f64),
            ],
        });
    }
    for (ch, slice) in slices.iter().enumerate() {
        let (r, w) = slice.mc_queue_depth();
        trace_out.complete(TraceEvent {
            name: "epoch".to_string(),
            cat: "mem".to_string(),
            tid: CH_TID_BASE + ch as u32,
            ts: epoch_start,
            dur,
            args: vec![
                ("read_q".to_string(), r as f64),
                ("write_q".to_string(), w as f64),
                ("mshrs".to_string(), slice.mshrs_in_use() as f64),
                (
                    "reads_total".to_string(),
                    (cur.dram_reads - prev.dram_reads) as f64,
                ),
            ],
        });
    }
}

/// Runs `trace` on the machine described by `cfg` under `scheme`.
///
/// Warps are assigned to SMs round-robin. The trace must fit within the
/// machine's resident-warp capacity (`sms * warps_per_sm`).
///
/// Telemetry is off: this is the zero-overhead path, and the returned
/// [`SimStats`] are bit-identical to an instrumented run's (minus the
/// optional telemetry fields). Use [`simulate_with_telemetry`] to collect
/// histograms, time-series or trace events.
///
/// # Panics
///
/// Panics if the configuration fails validation or the trace has more
/// warps than the machine has warp slots.
pub fn simulate(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
) -> SimStats {
    simulate_with_telemetry(cfg, order, trace, scheme, &TelemetryConfig::disabled()).stats
}

/// [`simulate`], with observability: when `tel.enabled`, the run records a
/// DRAM read-latency histogram and an epoch time-series into the returned
/// stats; when `tel.trace_events`, it additionally collects Chrome trace
/// events (per-transaction DRAM slices plus per-epoch activity slices per
/// SM and channel lane).
///
/// The simulated machine behaves identically either way — probes observe,
/// they never schedule.
///
/// # Panics
///
/// Panics as [`simulate`] does.
pub fn simulate_with_telemetry(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
    tel: &TelemetryConfig,
) -> SimOutput {
    simulate_instrumented(cfg, order, trace, scheme, tel, None)
}

/// [`simulate_with_telemetry`], plus optional in-situ fault injection.
///
/// When `faults` is given, every DRAM read transaction is exposed to the
/// configured error pattern at the configured rate, decode trials run
/// through the scheme's [`fault_codec`](ProtectionScheme::fault_codec),
/// and the resulting benign/corrected/DUE/SDC counters land in
/// [`SimStats::faults`]. Injection is observational: timing, traffic and
/// every other stats field are bit-identical to an uninjected run.
///
/// # Panics
///
/// Panics as [`simulate`] does.
pub fn simulate_instrumented(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
    tel: &TelemetryConfig,
    faults: Option<&FaultConfig>,
) -> SimOutput {
    simulate_profiled(cfg, order, trace, scheme, tel, faults, false)
}

/// [`simulate_instrumented`], plus optional self-profiling.
///
/// When `profile` is true the run additionally records where host
/// wall-time goes per component (SM / L1 / xbar / L2 / MC / DRAM
/// scheduling / flush / idle probe), the sleep- and scan-memo hit rates,
/// idle fast-forward span lengths, FR-FCFS scan depths, and a
/// per-channel load table, all returned in [`SimOutput::profile`].
///
/// Profiling is observation only: the simulated machine behaves
/// identically, `SimStats` stay bit-identical, and with `profile` false
/// every probe site costs one predictable branch. Under the
/// `check-invariants` feature the idle fast-forward ticks through spans
/// instead of jumping, so `idle_jumps` / `idle_spans` stay empty there.
///
/// # Panics
///
/// Panics as [`simulate`] does.
pub fn simulate_profiled(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
    tel: &TelemetryConfig,
    faults: Option<&FaultConfig>,
    profile: bool,
) -> SimOutput {
    simulate_with_exec(
        cfg,
        order,
        trace,
        scheme,
        tel,
        faults,
        profile,
        &ExecConfig::default(),
    )
}

/// Execution-engine knobs: how the cycle loop is driven, never what it
/// computes. Every setting produces bit-identical [`SimStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Total threads for the channel-sharded prologue (see the `shard`
    /// module): one SM-phase driver plus `sim_threads - 1` lane
    /// workers. `1` (the default) is the classic single-threaded loop.
    /// Values above `channels + 1` are clamped to it.
    pub sim_threads: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { sim_threads: 1 }
    }
}

/// [`simulate_profiled`], with explicit execution-engine configuration.
///
/// With `exec.sim_threads > 1` the bulk of the run executes on the
/// channel-sharded engine — worker threads advance per-channel
/// (L2 slice, memory controller, DRAM) lanes through crossbar-latency
/// epochs while the main thread runs the SMs — and the single-threaded
/// loop finishes the endgame. Sharding is a pure wall-clock
/// optimization: request interleaving and [`SimStats`] stay
/// bit-identical at every thread count. It silently falls back to the
/// single-threaded loop whenever it cannot engage (single-channel
/// machines, zero-latency crossbars, schemes without per-channel
/// state partitioning, telemetry or fault injection on).
///
/// # Panics
///
/// Panics as [`simulate`] does.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_exec(
    cfg: &GpuConfig,
    order: MapOrder,
    trace: &KernelTrace,
    scheme: &mut dyn ProtectionScheme,
    tel: &TelemetryConfig,
    faults: Option<&FaultConfig>,
    profile: bool,
    exec: &ExecConfig,
) -> SimOutput {
    // The config is validated up front; running with a broken machine
    // description is a programming error, not a recoverable condition.
    #[allow(clippy::expect_used)]
    // lint: allow(panic-freedom) reason=one-shot config validation before the first cycle; panicking on a broken machine description is the documented contract
    cfg.validate().expect("invalid GpuConfig");
    let sms_n = cfg.core.sms as usize;
    let slots = sms_n * cfg.core.warps_per_sm as usize;
    assert!(
        trace.warps().len() <= slots,
        "trace has {} warps but the machine has {slots} warp slots",
        trace.warps().len()
    );

    // Distribute warps round-robin across SMs.
    let mut per_sm: Vec<Vec<WarpTrace>> = vec![Vec::new(); sms_n];
    for (i, w) in trace.warps().iter().enumerate() {
        per_sm[i % sms_n].push(w.clone());
    }
    let mut sms: Vec<SmCore> = per_sm
        .into_iter()
        .enumerate()
        .map(|(i, traces)| {
            let id = SmId(i as u16);
            SmCore::new(id, &cfg.core, L1Cache::new(id, &cfg.l1), traces)
        })
        .collect();

    let tax = scheme.l2_tax_bytes();
    let mut slices: Vec<L2Slice> = (0..cfg.mem.channels)
        .map(|ch| L2Slice::new(cfg, ch, order, tax))
        .collect();
    let mut xbar = Crossbar::new(&cfg.xbar, cfg.core.sms, cfg.mem.channels);

    // Telemetry setup. `enabled` turns on the histogram + sampler;
    // `tracing` additionally collects Chrome trace events. When both are
    // off (the default) the per-cycle cost is one branch.
    let enabled = tel.enabled || tel.trace_events;
    let tracing = tel.trace_events;
    let mut sampler = if enabled {
        let mut s = Sampler::new(tel.epoch_cycles);
        for name in TIMELINE_SERIES {
            s.register(name);
        }
        Some(s)
    } else {
        None
    };
    let mut trace_out = if tracing {
        let mut t = ChromeTrace::new(tel.max_trace_events);
        for i in 0..sms.len() {
            t.name_track(SM_TID_BASE + i as u32, &format!("SM {i}"));
        }
        for ch in 0..slices.len() {
            t.name_track(CH_TID_BASE + ch as u32, &format!("DRAM ch{ch}"));
        }
        Some(t)
    } else {
        None
    };
    if enabled {
        for slice in &mut slices {
            slice.enable_mc_latency_hist();
            if tracing {
                slice.enable_mc_issue_trace();
            }
        }
    }
    let mut prev_snap = Snap::default();
    let mut epoch_start: Cycle = 0;

    // In-situ fault injection: sample the per-slice DRAM read counters
    // each cycle and expose the delta to the injector. Observational only
    // — nothing feeds back into scheduling.
    let mut fault_inj = faults.map(|f| {
        let mut fi = FaultInjector::new(f, scheme.fault_codec());
        fi.set_record_events(tracing);
        fi
    });
    let mut prev_reads: Vec<[u64; 4]> = vec![[0; 4]; slices.len()];

    // Self-profiling state. Observation only, same contract as
    // telemetry: when off, the timer is inert and every probe site in
    // the loop is one predictable branch.
    let mut prof = if profile {
        for slice in &mut slices {
            slice.enable_mc_profile();
        }
        Some(LoopProf {
            start: HostStamp::now(),
            t: PhaseTimer::start(true),
            slice_ns: vec![0; slices.len()],
            xbar_ns: 0,
            l1_ns: 0,
            sm_ns: 0,
            other_ns: 0,
            flush_ns: 0,
            probe_ns: 0,
            sm_sleep: MemoStats::default(),
            idle_spans: Histogram::new(),
            idle_jumps: 0,
            idle_cycles: 0,
        })
    } else {
        None
    };

    let mut now: Cycle = 0;
    let mut exec_cycles: Cycle = 0;
    let mut flushed = false;
    let mut timed_out = false;
    // One response buffer reused across slices, SMs and cycles: the hot
    // loop allocates nothing per cycle.
    let mut resp_buf: Vec<crate::msg::L2Response> = Vec::new();
    // Per-SM sleep memo. `sm_wake[i] > now` means SM `i` provably cannot
    // act before `sm_wake[i]` (`Cycle::MAX`: not until a response
    // arrives), so its tick is replaced by the stall accounting the tick
    // would have done; a delivered response resets the memo. `sm_done[i]`
    // caches doneness, which cannot flip while asleep: every trailing
    // compute expiry is a wake event, and load completions arrive as
    // responses. This skips the O(warps) scheduler scans for stalled SMs
    // even when the memory system is busy (the common memory-bound case,
    // where the whole-machine fast-forward below never fires).
    let mut sm_wake: Vec<Cycle> = vec![0; sms.len()];
    let mut sm_done: Vec<bool> = vec![false; sms.len()];

    // Channel-sharded prologue (see the `shard` module). When it can
    // engage — multiple threads requested, a multi-channel machine,
    // telemetry and fault injection off, the scheme partitionable by
    // channel — it advances the whole machine through epoch-batched
    // parallel execution and hands back at `now` with state
    // bit-identical to having run the loop below from cycle 0. The
    // loop then finishes the endgame (flush, drain, timeout)
    // single-threaded. Telemetry and fault observation stay on the
    // plain path so their sampling cadence is untouched.
    let shard_report = if exec.sim_threads > 1 && !enabled && fault_inj.is_none() {
        let mut senv = crate::shard::ShardEnv {
            cfg,
            sms: &mut sms,
            slices: &mut slices,
            xbar: &mut xbar,
            sm_wake: &mut sm_wake,
            sm_done: &mut sm_done,
            now: &mut now,
        };
        crate::shard::run_prologue(&mut senv, scheme, exec.sim_threads, prof.is_some())
    } else {
        None
    };

    // Runtime invariant oracle (see the `invariants` module docs). In this
    // build the idle fast-forward below is replaced by ticking through the
    // predicted span with the progress signature frozen.
    #[cfg(feature = "check-invariants")]
    let mut oracle = Oracle::new();

    loop {
        #[cfg(feature = "check-invariants")]
        oracle.check_cycle(now, &sms, &xbar, &slices);
        if let Some(p) = &mut prof {
            p.t.reset();
        }
        // 1. Memory side.
        for (ch, slice) in slices.iter_mut().enumerate() {
            slice.tick(scheme, now);
            if let Some(p) = &mut prof {
                p.slice_ns[ch] = p.slice_ns[ch].saturating_add(p.t.lap());
            }
            slice.pop_responses_into(now, &mut resp_buf);
            for &resp in &resp_buf {
                xbar.send_response(resp, now);
            }
            if let Some(p) = &mut prof {
                p.xbar_ns = p.xbar_ns.saturating_add(p.t.lap());
            }
        }
        // 2. Interconnect delivery.
        for (ch, slice) in slices.iter_mut().enumerate() {
            xbar.deliver_requests(ch as u16, now, &mut |req| {
                if slice.can_accept() {
                    slice.push(req);
                    true
                } else {
                    false
                }
            });
        }
        if let Some(p) = &mut prof {
            p.xbar_ns = p.xbar_ns.saturating_add(p.t.lap());
        }
        for (i, sm) in sms.iter_mut().enumerate() {
            xbar.deliver_responses_into(i as u16, now, &mut resp_buf);
            if !resp_buf.is_empty() {
                sm_wake[i] = 0;
            }
            for &resp in &resp_buf {
                sm.l1.accept_response(resp);
            }
        }
        if let Some(p) = &mut prof {
            p.l1_ns = p.l1_ns.saturating_add(p.t.lap());
        }
        // 3. Cores.
        for (i, sm) in sms.iter_mut().enumerate() {
            if sm_wake[i] > now {
                // Oracle: the sleep memo claims this SM cannot act before
                // `sm_wake[i]` and that its doneness is frozen; re-derive
                // both from live state.
                #[cfg(feature = "check-invariants")]
                {
                    if let Some(c) = sm.next_event(now) {
                        assert!(
                            c >= sm_wake[i],
                            "invariant violated: SM {i} asleep until {} but \
                             next_event says {c} (cycle {now})",
                            sm_wake[i]
                        );
                    }
                    assert_eq!(
                        sm.all_warps_done(now),
                        sm_done[i],
                        "invariant violated: SM {i} doneness flipped while \
                         asleep (cycle {now})"
                    );
                }
                // Asleep: the tick would only have counted one stalled
                // cycle (or nothing, if done).
                if !sm_done[i] {
                    sm.account_stalled_span(1);
                }
                if let Some(p) = &mut prof {
                    p.sm_sleep.hit();
                }
                continue;
            }
            let xbar_ref = &mut xbar;
            let scheme_map = &*scheme;
            let stalled = sm.tick(now, &mut |atom| scheme_map.map(atom), &mut |req| {
                xbar_ref.try_send_request(req, now)
            });
            // Probe for sleep only when the tick found no ready warp: a
            // busy SM pays nothing for the memo beyond this branch.
            if stalled {
                sm_wake[i] = match sm.next_event(now) {
                    Some(c) if c <= now => 0,
                    Some(c) => c,
                    None => Cycle::MAX,
                };
                if sm_wake[i] > now {
                    sm_done[i] = sm.all_warps_done(now);
                }
            } else {
                sm_wake[i] = 0;
            }
            if let Some(p) = &mut prof {
                p.sm_sleep.miss();
            }
        }
        if let Some(p) = &mut prof {
            p.sm_ns = p.sm_ns.saturating_add(p.t.lap());
        }

        // Fault injection: expose this cycle's newly-issued DRAM reads.
        if let Some(fi) = &mut fault_inj {
            for (ch, slice) in slices.iter().enumerate() {
                let counts = slice.mc_stats().count;
                for class in [TrafficClass::DataRead, TrafficClass::EccRead] {
                    let i = class.index();
                    let delta = counts[i] - prev_reads[ch][i];
                    if delta > 0 {
                        fi.observe(class, ch as u16, delta, now);
                    }
                }
                prev_reads[ch] = counts;
            }
        }

        // Telemetry: per-transaction DRAM events and epoch sampling.
        if let Some(t) = &mut trace_out {
            for (ch, slice) in slices.iter_mut().enumerate() {
                for ev in slice.take_mc_issue_events() {
                    t.complete(TraceEvent {
                        name: ev.class.to_string(),
                        cat: "dram".to_string(),
                        tid: CH_TID_BASE + ch as u32,
                        ts: ev.start,
                        dur: ev.end.saturating_sub(ev.start),
                        args: vec![
                            ("atom".to_string(), ev.atom as f64),
                            ("queued_cycles".to_string(), ev.queued as f64),
                        ],
                    });
                }
            }
        }
        if let Some(s) = &mut sampler {
            if s.due(now) {
                let cur = Snap::take(&sms, &slices);
                let epoch_len = now.saturating_sub(epoch_start);
                s.sample(&epoch_values(prev_snap, cur, epoch_len, &slices));
                if let Some(t) = &mut trace_out {
                    emit_epoch_events(t, &sms, &slices, epoch_start, now, prev_snap, cur);
                }
                prev_snap = cur;
                epoch_start = now;
            }
        }
        if let Some(p) = &mut prof {
            p.other_ns = p.other_ns.saturating_add(p.t.lap());
        }

        // Progress / termination. Sleeping SMs use the cached flag
        // (doneness is constant while asleep — see the memo invariant
        // above); awake SMs are checked live, short-circuiting on the
        // first unfinished one.
        let warps_done = sms.iter().enumerate().all(|(i, s)| {
            if sm_wake[i] > now {
                sm_done[i]
            } else {
                s.all_warps_done(now)
            }
        });
        if warps_done && exec_cycles == 0 {
            exec_cycles = now + 1;
        }
        if warps_done && !flushed {
            // Wait for in-flight stores to land before flushing dirty L2.
            let stores_landed = sms.iter().all(|s| s.l1.is_idle())
                && xbar.is_idle()
                && slices.iter().all(|s| s.is_idle());
            if stores_landed {
                scheme.flush();
                for slice in &mut slices {
                    slice.flush_dirty(scheme, now);
                }
                flushed = true;
            }
        }
        if let Some(p) = &mut prof {
            p.flush_ns = p.flush_ns.saturating_add(p.t.lap());
        }
        if flushed {
            let drained = slices.iter().all(|s| s.is_idle()) && scheme.is_drained();
            if drained {
                now += 1;
                break;
            }
        }
        now += 1;
        if now >= cfg.max_cycles {
            timed_out = true;
            break;
        }

        // Idle fast-forward: when nothing can make progress until some
        // future event (every SM stalled on memory or compute latency,
        // queues empty of issuable work), jump straight to the earliest
        // such event. Skipped cycles are provably identical to ticking
        // through them — see DESIGN.md "Simulator performance model" for
        // the invariant argument — so stats stay bit-identical. The jump
        // is capped at the sampler's next epoch boundary (telemetry
        // epochs must land on the same cycles either way) and at
        // `max_cycles` (timeout accounting).
        if let Some(p) = &mut prof {
            p.t.reset();
        }
        let wake_at = idle_wake(now, &sms, &xbar, &slices, &*scheme);
        if let Some(p) = &mut prof {
            p.probe_ns = p.probe_ns.saturating_add(p.t.lap());
        }
        if let Some(wake) = wake_at {
            #[cfg(not(feature = "check-invariants"))]
            {
                let mut wake = wake.min(cfg.max_cycles);
                if let Some(s) = &sampler {
                    wake = wake.min(s.next_due_cycle());
                }
                if wake > now {
                    let span = wake.saturating_sub(now);
                    if let Some(p) = &mut prof {
                        p.idle_jumps += 1;
                        p.idle_cycles = p.idle_cycles.saturating_add(span);
                        p.idle_spans.record(span);
                    }
                    for sm in &mut sms {
                        sm.account_idle_span(now, span);
                    }
                    now = wake;
                    if now >= cfg.max_cycles {
                        timed_out = true;
                        break;
                    }
                }
            }
            // Oracle build: tick through the predicted-idle span instead
            // of jumping, with the progress signature frozen — any
            // component doing work inside the span (i.e. `idle_wake` lied)
            // trips the check at the top of the loop.
            #[cfg(feature = "check-invariants")]
            oracle.begin_idle_span(wake, progress_signature(&sms, &xbar, &slices));
        }
    }

    // Telemetry: close the final (partial) epoch so short runs still get
    // a non-empty timeline and every lane at least one event.
    if let Some(s) = &mut sampler {
        if now > epoch_start {
            let cur = Snap::take(&sms, &slices);
            s.sample(&epoch_values(
                prev_snap,
                cur,
                now.saturating_sub(epoch_start),
                &slices,
            ));
            if let Some(t) = &mut trace_out {
                emit_epoch_events(t, &sms, &slices, epoch_start, now, prev_snap, cur);
            }
        }
    }

    // Aggregate statistics.
    let mut stats = SimStats {
        kernel: trace.name().to_string(),
        scheme: scheme.name().to_string(),
        cycles: now,
        exec_cycles: if exec_cycles == 0 { now } else { exec_cycles },
        timed_out,
        ops: trace.total_ops(),
        accesses: trace.total_accesses(),
        l1_read_hits: 0,
        l1_read_misses: 0,
        l2_read_hits: 0,
        l2_read_misses: 0,
        l2_fills: 0,
        l2_writebacks: 0,
        dram: [0; 4],
        row_hits: 0,
        row_empties: 0,
        row_conflicts: 0,
        refreshes: 0,
        mean_read_latency: 0.0,
        protection: scheme.stats(),
        latency_hist: None,
        timeline: None,
        faults: fault_inj.as_ref().map(FaultInjector::stats),
    };
    // Injected-fault instants land on the channel lanes of the trace.
    if let (Some(fi), Some(t)) = (&mut fault_inj, &mut trace_out) {
        for ev in fi.take_events() {
            t.complete(TraceEvent {
                name: format!("fault:{}", ev.outcome),
                cat: "fault".to_string(),
                tid: CH_TID_BASE + u32::from(ev.channel),
                ts: ev.cycle,
                dur: 1,
                args: vec![(
                    "ecc_read".to_string(),
                    f64::from(u8::from(ev.class == TrafficClass::EccRead)),
                )],
            });
        }
    }
    for sm in &sms {
        let l1 = sm.l1.stats();
        stats.l1_read_hits += l1.read_hits;
        stats.l1_read_misses += l1.read_misses;
    }
    let mut lat_sum = 0u64;
    let mut lat_n = 0u64;
    for slice in &slices {
        let s = slice.stats();
        stats.l2_read_hits += s.cache.read_hits;
        stats.l2_read_misses += s.cache.read_misses;
        stats.l2_fills += s.fills;
        stats.l2_writebacks += s.writebacks;
        let mc = slice.mc_stats();
        for (i, c) in mc.count.iter().enumerate() {
            stats.dram[i] += c;
        }
        stats.row_hits += mc.row_hits;
        stats.row_empties += mc.row_empties;
        stats.row_conflicts += mc.row_conflicts;
        stats.refreshes += mc.refreshes;
        lat_sum += mc.read_latency_sum;
        lat_n += mc.read_latency_count;
    }
    stats.mean_read_latency = if lat_n == 0 {
        0.0
    } else {
        lat_sum as f64 / lat_n as f64
    };
    if enabled {
        let mut merged = Histogram::new();
        for slice in &slices {
            if let Some(h) = slice.mc_read_latency_hist() {
                merged.merge(h);
            }
        }
        stats.latency_hist = Some(merged);
        stats.timeline = sampler.map(Sampler::finish);
    }
    // Assemble the self-profile: host-time buckets (subtractive where a
    // phase nests inside another — the MC times itself inside the slice
    // tick, and the FR-FCFS section inside the MC tick), memo hit rates,
    // and the per-channel load table from counters the controllers
    // already keep.
    let profile_out = prof.map(|p| {
        let mut sp = SimProfile {
            cycles: now,
            host_ns_total: p.start.elapsed_ns(),
            idle_jumps: p.idle_jumps,
            idle_cycles_skipped: p.idle_cycles,
            idle_spans: p.idle_spans,
            sm_sleep: p.sm_sleep,
            ..SimProfile::default()
        };
        let mut slice_total = 0u64;
        let mut mc_total = 0u64;
        let mut dram_total = 0u64;
        for (ch, slice) in slices.iter().enumerate() {
            let mc = slice.mc_stats();
            if let Some(m) = slice.mc_profile() {
                sp.scan_memo.merge(&m.scan_memo);
                sp.scan_depth.merge(&m.scan_depth);
                mc_total = mc_total.saturating_add(m.host_tick_ns);
                dram_total = dram_total.saturating_add(m.host_sched_ns);
            }
            let host_ns = p.slice_ns[ch];
            slice_total = slice_total.saturating_add(host_ns);
            sp.channels.push(ChannelLoad {
                channel: ch as u32,
                reads: mc.class_count(TrafficClass::DataRead)
                    + mc.class_count(TrafficClass::EccRead),
                writes: mc.class_count(TrafficClass::DataWrite)
                    + mc.class_count(TrafficClass::EccWrite),
                busy_cycles: mc.busy_cycles,
                row_hits: mc.row_hits,
                row_misses: mc.row_empties + mc.row_conflicts,
                host_ns,
            });
        }
        sp.add_component_ns("sm", p.sm_ns);
        sp.add_component_ns("l1", p.l1_ns);
        sp.add_component_ns("xbar", p.xbar_ns);
        sp.add_component_ns("l2", slice_total.saturating_sub(mc_total));
        sp.add_component_ns("mc", mc_total.saturating_sub(dram_total));
        sp.add_component_ns("dram", dram_total);
        sp.add_component_ns("flush", p.flush_ns);
        sp.add_component_ns("idle_probe", p.probe_ns);
        // Residual (loop bookkeeping, setup, aggregation) joins the
        // explicit "other" bucket so the components sum to the total.
        let attributed = [
            p.sm_ns,
            p.l1_ns,
            p.xbar_ns,
            slice_total,
            p.flush_ns,
            p.probe_ns,
            p.other_ns,
        ]
        .iter()
        .fold(0u64, |acc, &ns| acc.saturating_add(ns));
        sp.add_component_ns(
            "other",
            p.other_ns
                .saturating_add(sp.host_ns_total.saturating_sub(attributed)),
        );
        // Shard attribution: worker busy/wait and the main thread's
        // barrier waits. Worker lane time is *not* folded into the
        // l2/mc/dram buckets (those cover the single-threaded endgame
        // only); it lands in the per-shard table, and the wall time it
        // overlaps shows up in the "other" residual above.
        if let Some(r) = &shard_report {
            sp.shard_epochs = r.epochs;
            sp.shard_sm_wait_ns = r.sm_wait_ns;
            for (i, w) in r.workers.iter().enumerate() {
                sp.shards.push(ShardLoad {
                    shard: i as u32,
                    lanes: w.lanes,
                    busy_ns: w.busy_ns,
                    wait_ns: w.wait_ns,
                });
            }
        }
        sp
    });
    SimOutput {
        stats,
        trace: trace_out,
        profile: profile_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::{ChannelInterleave, NoProtection};
    use crate::trace::WarpOp;
    use crate::types::{LogicalAtom, TrafficClass};

    fn tiny_scheme(cfg: &GpuConfig) -> NoProtection {
        NoProtection::new(ChannelInterleave::new(
            cfg.mem.channels,
            cfg.mem.interleave_atoms,
        ))
    }

    /// A streaming kernel: each warp loads a disjoint run of atoms.
    fn streaming(warps: usize, atoms_per_warp: u64) -> KernelTrace {
        let traces = (0..warps as u64)
            .map(|w| {
                let ops = (0..atoms_per_warp / 4)
                    .map(|i| WarpOp::Load {
                        atoms: (0..4)
                            .map(|k| LogicalAtom(w * atoms_per_warp + i * 4 + k))
                            .collect(),
                    })
                    .collect();
                WarpTrace::new(ops)
            })
            .collect();
        KernelTrace::new("stream-test", traces)
    }

    #[test]
    fn streaming_kernel_completes() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(4, 64);
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.ops, trace.total_ops());
        // Every distinct atom read exactly once from DRAM (no reuse).
        assert_eq!(
            stats.dram_count(TrafficClass::DataRead),
            trace.footprint_atoms()
        );
        assert_eq!(stats.dram_count(TrafficClass::EccRead), 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let a = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let b = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn reuse_hits_in_l2() {
        // Two passes over a small footprint: second pass hits in caches.
        let ops: Vec<WarpOp> = (0..2)
            .flat_map(|_| {
                (0..16).map(|i| WarpOp::Load {
                    atoms: vec![LogicalAtom(i * 4)],
                })
            })
            .collect();
        let trace = KernelTrace::new("reuse", vec![WarpTrace::new(ops)]);
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        // 16 distinct atoms; second pass must not refetch.
        assert_eq!(stats.dram_count(TrafficClass::DataRead), 16);
        assert!(stats.l1_read_hits + stats.l2_read_hits >= 16);
    }

    #[test]
    fn store_kernel_writes_back_on_flush() {
        let ops: Vec<WarpOp> = (0..8)
            .map(|i| WarpOp::Store {
                atoms: vec![LogicalAtom(i)],
                full: true,
            })
            .collect();
        let trace = KernelTrace::new("store", vec![WarpTrace::new(ops)]);
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.dram_count(TrafficClass::DataWrite), 8);
        assert_eq!(
            stats.dram_count(TrafficClass::DataRead),
            0,
            "full stores fetch nothing"
        );
        assert!(
            stats.cycles > stats.exec_cycles,
            "flush happens after retire"
        );
    }

    #[test]
    fn compute_only_kernel_touches_no_dram() {
        let trace = KernelTrace::new(
            "compute",
            vec![WarpTrace::new(vec![WarpOp::Compute { cycles: 100 }])],
        );
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert_eq!(stats.dram_bytes(), 0);
        assert!(stats.cycles >= 100);
    }

    #[test]
    fn multiple_sms_share_the_memory_system() {
        let cfg = GpuConfig::tiny(); // 2 SMs
        let trace = streaming(8, 64); // warps spread over both SMs
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(
            stats.dram_count(TrafficClass::DataRead),
            trace.footprint_atoms()
        );
    }

    #[test]
    #[should_panic(expected = "warp slots")]
    fn too_many_warps_rejected() {
        let cfg = GpuConfig::tiny(); // 2 SMs x 4 warps = 8 slots
        let trace = streaming(9, 4);
        let mut scheme = tiny_scheme(&cfg);
        let _ = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let mut probed = simulate_with_telemetry(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s2,
            &ccraft_telemetry::TelemetryConfig::full(),
        )
        .stats;
        // Strip the telemetry-only fields: everything else must be
        // bit-identical.
        probed.latency_hist = None;
        probed.timeline = None;
        assert_eq!(plain, probed);
    }

    #[test]
    fn profiling_does_not_perturb_the_simulation() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let out = simulate_profiled(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s2,
            &TelemetryConfig::disabled(),
            None,
            true,
        );
        // Stats stay bit-identical: profiling observes, never schedules.
        assert_eq!(plain, out.stats);
        let p = out.profile.expect("profile attached");
        assert_eq!(p.cycles, plain.cycles);
        assert!(p.host_ns_total > 0);

        // The load table covers every channel and its totals reconcile
        // with the aggregate DRAM stats.
        assert_eq!(p.channels.len(), cfg.mem.channels as usize);
        let reads: u64 = p.channels.iter().map(|c| c.reads).sum();
        let writes: u64 = p.channels.iter().map(|c| c.writes).sum();
        assert_eq!(
            reads,
            plain.dram_count(TrafficClass::DataRead) + plain.dram_count(TrafficClass::EccRead)
        );
        assert_eq!(
            writes,
            plain.dram_count(TrafficClass::DataWrite) + plain.dram_count(TrafficClass::EccWrite)
        );
        let row_totals: u64 = p.channels.iter().map(|c| c.row_hits + c.row_misses).sum();
        assert_eq!(
            row_totals,
            plain.row_hits + plain.row_empties + plain.row_conflicts
        );

        // Component buckets exist and the imbalance ratios are sane.
        for name in ["sm", "l1", "xbar", "l2", "mc", "dram", "other"] {
            assert!(
                p.components.iter().any(|(n, _)| n == name),
                "missing component bucket {name}"
            );
        }
        assert!(p.busy_imbalance() >= 1.0);
        assert!(p.request_imbalance() >= 1.0);
        assert!((0.0..=1.0).contains(&p.sm_sleep.hit_rate()));
        assert!((0.0..=1.0).contains(&p.scan_memo.hit_rate()));
        // A memory-bound streaming kernel performs scans, so the
        // scan-depth histogram is populated.
        assert!(!p.scan_depth.is_empty());

        // With profiling off, nothing is attached.
        let mut s3 = tiny_scheme(&cfg);
        let off = simulate_profiled(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s3,
            &TelemetryConfig::disabled(),
            None,
            false,
        );
        assert!(off.profile.is_none());
        assert_eq!(off.stats, plain);
    }

    // Idle fast-forward jumps are replaced by single-cycle ticking under
    // check-invariants, so the span histogram is only meaningful here.
    #[cfg(not(feature = "check-invariants"))]
    #[test]
    fn profiler_records_idle_spans_on_compute_gaps() {
        let trace = KernelTrace::new(
            "long-compute",
            vec![WarpTrace::new(vec![WarpOp::Compute { cycles: 1000 }])],
        );
        let cfg = GpuConfig::tiny();
        let mut scheme = tiny_scheme(&cfg);
        let out = simulate_profiled(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut scheme,
            &TelemetryConfig::disabled(),
            None,
            true,
        );
        let p = out.profile.expect("profile attached");
        assert!(p.idle_jumps > 0, "compute gap produced no idle jumps");
        assert!(p.idle_cycles_skipped > 0);
        assert_eq!(p.idle_spans.count, p.idle_jumps);
        assert_eq!(p.idle_spans.sum, p.idle_cycles_skipped);
        // A mostly-idle run sleeps its SM almost every remaining cycle.
        assert!(p.sm_sleep.hits.get() > 0);
    }

    #[test]
    fn idle_skip_preserves_telemetry_epochs() {
        // A long trailing compute op forces the loop to fast-forward;
        // epoch sampling must still land on every 64-cycle boundary, and
        // the stats must stay bit-identical to the uninstrumented run.
        let trace = KernelTrace::new(
            "long-compute",
            vec![WarpTrace::new(vec![WarpOp::Compute { cycles: 1000 }])],
        );
        let cfg = GpuConfig::tiny();
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        assert!(plain.cycles >= 1000);
        let tel = ccraft_telemetry::TelemetryConfig {
            epoch_cycles: 64,
            ..ccraft_telemetry::TelemetryConfig::enabled()
        };
        let mut probed =
            simulate_with_telemetry(&cfg, MapOrder::RoBaCo, &trace, &mut s2, &tel).stats;
        let t = probed.timeline.take().expect("timeline");
        assert!(
            t.epochs() as u64 >= plain.cycles / 64,
            "epochs were skipped: {} epochs over {} cycles",
            t.epochs(),
            plain.cycles
        );
        probed.latency_hist = None;
        assert_eq!(plain, probed);
    }

    #[test]
    fn enabled_run_attaches_histogram_and_timeline() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut scheme = tiny_scheme(&cfg);
        let tel = ccraft_telemetry::TelemetryConfig {
            epoch_cycles: 64,
            ..ccraft_telemetry::TelemetryConfig::enabled()
        };
        let out = simulate_with_telemetry(&cfg, MapOrder::RoBaCo, &trace, &mut scheme, &tel);
        assert!(out.trace.is_none(), "trace events were not requested");
        let h = out.stats.latency_hist.as_ref().expect("histogram");
        assert_eq!(h.count, out.stats.dram[0] + out.stats.dram[2]);
        assert!(h.p99() >= h.p50());
        assert!(h.p50() >= 1);
        assert!((h.mean() - out.stats.mean_read_latency).abs() < 1e-9);
        let t = out.stats.timeline.as_ref().expect("timeline");
        assert!(t.epochs() >= 1);
        assert_eq!(t.series.len(), TIMELINE_SERIES.len());
        // The reads series accounts for every DRAM read.
        let total: f64 = t.series("dram.reads").unwrap().points.iter().sum();
        assert_eq!(total as u64, h.count);
    }

    #[test]
    fn full_telemetry_emits_events_for_every_lane() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut scheme = tiny_scheme(&cfg);
        let out = simulate_with_telemetry(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut scheme,
            &ccraft_telemetry::TelemetryConfig::full(),
        );
        let tr = out.trace.expect("trace events");
        assert!(!tr.is_empty());
        // Every SM lane and every channel lane has at least one complete
        // event (the epoch slices guarantee this even without traffic).
        for i in 0..cfg.core.sms {
            let tid = super::SM_TID_BASE + u32::from(i);
            assert!(
                tr.events().iter().any(|e| e.tid == tid),
                "SM {i} lane empty"
            );
        }
        for ch in 0..cfg.mem.channels {
            let tid = super::CH_TID_BASE + u32::from(ch);
            assert!(
                tr.events().iter().any(|e| e.tid == tid),
                "ch {ch} lane empty"
            );
        }
        // Per-transaction DRAM events carry the dram category.
        assert!(tr.events().iter().any(|e| e.cat == "dram"));
        let json = tr.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn fault_injection_is_observational() {
        use crate::faults::{FaultConfig, FaultRate};
        use ccraft_ecc::inject::ErrorPattern;
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let fc = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 11,
        };
        let mut injected = simulate_instrumented(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s2,
            &TelemetryConfig::disabled(),
            Some(&fc),
        )
        .stats;
        let fs = injected.faults.take().expect("fault stats attached");
        // Every DRAM data read was exposed and (at p=1) faulted; under
        // NoProtection each is an SDC.
        assert_eq!(fs.data_reads, plain.dram_count(TrafficClass::DataRead));
        assert_eq!(fs.injected, fs.data_reads);
        assert_eq!(fs.sdc, fs.injected);
        // Minus the faults block, the run is bit-identical: injection
        // observed, never scheduled.
        assert_eq!(plain, injected);
    }

    #[test]
    fn rate_zero_injects_nothing_and_perturbs_nothing() {
        use crate::faults::{FaultConfig, FaultRate};
        use ccraft_ecc::inject::ErrorPattern;
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 128);
        let mut s1 = tiny_scheme(&cfg);
        let mut s2 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let fc = FaultConfig {
            pattern: ErrorPattern::RandomBits { count: 1 },
            rate: FaultRate::PerAccess { p: 0.0 },
            seed: 7,
        };
        let mut out = simulate_instrumented(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s2,
            &TelemetryConfig::disabled(),
            Some(&fc),
        )
        .stats;
        let fs = out.faults.take().expect("fault stats attached");
        assert_eq!(fs.injected, 0);
        assert_eq!(fs.benign + fs.corrected + fs.due + fs.sdc, 0);
        assert!(fs.data_reads > 0, "reads still counted");
        assert_eq!(plain, out);
    }

    #[test]
    fn fault_events_reach_the_chrome_trace() {
        use crate::faults::{FaultConfig, FaultRate};
        use ccraft_ecc::inject::ErrorPattern;
        let cfg = GpuConfig::tiny();
        let trace = streaming(4, 64);
        let mut scheme = tiny_scheme(&cfg);
        let fc = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 3,
        };
        let out = simulate_instrumented(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut scheme,
            &ccraft_telemetry::TelemetryConfig::full(),
            Some(&fc),
        );
        let tr = out.trace.expect("trace events");
        assert!(
            tr.events().iter().any(|e| e.cat == "fault"),
            "no fault events in trace"
        );
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let cfg = GpuConfig::tiny();
        let trace = KernelTrace::new("empty", vec![]);
        let mut scheme = tiny_scheme(&cfg);
        let stats = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
        assert!(!stats.timed_out);
        assert_eq!(stats.dram_bytes(), 0);
    }

    fn sharded(cfg: &GpuConfig, trace: &KernelTrace, threads: u32) -> SimOutput {
        let mut scheme = tiny_scheme(cfg);
        simulate_with_exec(
            cfg,
            MapOrder::RoBaCo,
            trace,
            &mut scheme,
            &TelemetryConfig::disabled(),
            None,
            false,
            &ExecConfig {
                sim_threads: threads,
            },
        )
    }

    #[test]
    fn sharded_execution_is_bit_identical_on_streaming() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 256);
        let mut s1 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        for threads in [2u32, 3, 8] {
            let out = sharded(&cfg, &trace, threads);
            assert_eq!(plain, out.stats, "sim_threads={threads} diverged");
        }
    }

    #[test]
    fn sharded_execution_is_bit_identical_on_mixed_kernel() {
        // Loads, compute gaps and stores: exercises the endgame
        // handback (flush) and the lane/SM idle skips.
        let traces = (0..4u64)
            .map(|w| {
                let mut ops = Vec::new();
                for i in 0..8 {
                    ops.push(WarpOp::Load {
                        atoms: (0..4).map(|k| LogicalAtom(w * 64 + i * 4 + k)).collect(),
                    });
                    ops.push(WarpOp::Compute {
                        cycles: (16 + (w * 7 + i) % 23) as u32,
                    });
                    ops.push(WarpOp::Store {
                        atoms: vec![LogicalAtom(w * 64 + i * 4)],
                        full: i % 2 == 0,
                    });
                }
                WarpTrace::new(ops)
            })
            .collect();
        let trace = KernelTrace::new("mixed", traces);
        let cfg = GpuConfig::tiny();
        let mut s1 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        for threads in [2u32, 8] {
            let out = sharded(&cfg, &trace, threads);
            assert_eq!(plain, out.stats, "sim_threads={threads} diverged");
        }
    }

    #[test]
    fn sharded_profile_attributes_shard_load() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(8, 256);
        let mut s1 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let mut s2 = tiny_scheme(&cfg);
        let out = simulate_with_exec(
            &cfg,
            MapOrder::RoBaCo,
            &trace,
            &mut s2,
            &TelemetryConfig::disabled(),
            None,
            true,
            &ExecConfig { sim_threads: 3 },
        );
        // Profiling a sharded run observes, never schedules.
        assert_eq!(plain, out.stats);
        let p = out.profile.expect("profile attached");
        // tiny has 2 channels, so 3 threads = 2 lane workers.
        assert_eq!(p.shards.len(), 2);
        assert!(p.shard_epochs > 0, "prologue never engaged");
        assert_eq!(p.shards.iter().map(|s| u64::from(s.lanes)).sum::<u64>(), 2);
        assert!(p.shard_imbalance() >= 1.0);
    }

    #[test]
    fn single_thread_exec_config_is_the_plain_loop() {
        let cfg = GpuConfig::tiny();
        let trace = streaming(4, 64);
        let mut s1 = tiny_scheme(&cfg);
        let plain = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut s1);
        let out = sharded(&cfg, &trace, 1);
        assert_eq!(plain, out.stats);
        // Empty traces fall straight through the prologue guard.
        let empty = KernelTrace::new("empty", vec![]);
        let mut s = tiny_scheme(&cfg);
        let e_plain = simulate(&cfg, MapOrder::RoBaCo, &empty, &mut s);
        let e_out = sharded(&cfg, &empty, 8);
        assert_eq!(e_plain, e_out.stats);
    }
}
