//! Simulator configuration: machine geometry, cache parameters, and DRAM
//! timing.
//!
//! Configurations are plain data with public fields (they are passive
//! descriptions, not stateful objects) plus a [`GpuConfig::validate`] pass
//! that catches inconsistent geometry before a simulation starts. Presets
//! model a GDDR6-class GPU ([`GpuConfig::gddr6`]), an HBM2-class part
//! ([`GpuConfig::hbm2`]) and a deliberately tiny machine for unit tests
//! ([`GpuConfig::tiny`]).
//!
//! All times are in **core-clock cycles**; DRAM timings in the presets have
//! already been converted from DRAM-clock datasheet values at the preset's
//! frequency ratio (a documented approximation: the simulator runs a single
//! clock domain).

use crate::types::{ATOMS_PER_LINE, ATOM_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Warp scheduler policy for the SM cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing the current warp while it is ready,
    /// otherwise switch to the oldest ready warp.
    GreedyThenOldest,
    /// Round-robin over ready warps.
    RoundRobin,
}

/// SM core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of streaming multiprocessors.
    pub sms: u16,
    /// Resident warps per SM.
    pub warps_per_sm: u16,
    /// Threads per warp (fixed at 32 in the generators, informational here).
    pub threads_per_warp: u16,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Capacity of the per-SM load/store unit queue (coalesced accesses).
    pub lsu_queue: usize,
}

/// Parameters of a sectored cache (used for both L1 and L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be `ATOM_BYTES * ATOMS_PER_LINE`).
    pub line_bytes: u64,
    /// Access (hit) latency in cycles.
    pub latency: u32,
    /// Miss-status holding registers.
    pub mshrs: usize,
    /// Input request queue depth.
    pub input_queue: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }
}

/// Interconnect between SMs and L2 slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XbarConfig {
    /// One-way traversal latency in cycles.
    pub latency: u32,
    /// Requests accepted per slice per cycle (and responses per SM per
    /// cycle).
    pub ports_per_endpoint: u32,
}

/// DRAM timing parameters, in core-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Activate-to-read/write delay.
    pub t_rcd: u32,
    /// Precharge latency.
    pub t_rp: u32,
    /// Minimum row-open time (activate to precharge).
    pub t_ras: u32,
    /// Read column-access latency (command to first data).
    pub cas: u32,
    /// Write recovery: last write data to precharge.
    pub t_wr: u32,
    /// Read-to-write bus turnaround penalty.
    pub t_rtw: u32,
    /// Write-to-read bus turnaround penalty.
    pub t_wtr: u32,
    /// Data-bus occupancy of one 32-byte atom transfer.
    pub burst_cycles: u32,
    /// Refresh interval (0 disables refresh).
    pub t_refi: u32,
    /// Refresh duration (all banks busy).
    pub t_rfc: u32,
}

/// Memory-system geometry and controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Number of channels (== L2 slices == memory controllers).
    pub channels: u16,
    /// Physical capacity per channel in bytes (includes inline-ECC space).
    pub capacity_per_channel: u64,
    /// Channel interleave granularity in atoms (e.g. 8 atoms = 256 B).
    pub interleave_atoms: u64,
    /// Banks per channel.
    pub banks: u32,
    /// Row size in bytes (per bank).
    pub row_bytes: u64,
    /// Read queue depth per controller.
    pub read_queue: usize,
    /// Write queue depth per controller.
    pub write_queue: usize,
    /// Start draining writes when the write queue reaches this fill level.
    pub write_drain_high: usize,
    /// Stop draining when it falls to this level.
    pub write_drain_low: usize,
    /// FR-FCFS scan window (requests examined per scheduling decision).
    pub sched_window: usize,
    /// Timing parameters.
    pub timing: DramTiming,
}

impl MemConfig {
    /// Atoms per DRAM row.
    pub fn row_atoms(&self) -> u64 {
        self.row_bytes / ATOM_BYTES
    }

    /// Physical atoms per channel.
    pub fn atoms_per_channel(&self) -> u64 {
        self.capacity_per_channel / ATOM_BYTES
    }
}

/// Complete machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// SM cores.
    pub core: CoreConfig,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Per-slice L2 parameters (`capacity_bytes` is per slice).
    pub l2: CacheConfig,
    /// SM↔L2 interconnect.
    pub xbar: XbarConfig,
    /// Memory system.
    pub mem: MemConfig,
    /// Hard simulation cycle limit (safety net against livelock).
    pub max_cycles: u64,
}

/// A configuration-validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl GpuConfig {
    /// Balanced GDDR6-class preset: 16 SMs, 4 MiB L2 over 8 channels.
    ///
    /// This is the default evaluation machine of the reproduction (see
    /// DESIGN.md, experiment T1).
    pub fn gddr6() -> Self {
        GpuConfig {
            core: CoreConfig {
                sms: 16,
                warps_per_sm: 24,
                threads_per_warp: 32,
                scheduler: SchedulerPolicy::GreedyThenOldest,
                lsu_queue: 64,
            },
            l1: CacheConfig {
                capacity_bytes: 64 << 10,
                ways: 4,
                line_bytes: 128,
                latency: 28,
                mshrs: 16,
                input_queue: 32,
            },
            l2: CacheConfig {
                capacity_bytes: 512 << 10, // per slice; 4 MiB total
                ways: 16,
                line_bytes: 128,
                latency: 96,
                mshrs: 48,
                input_queue: 32,
            },
            xbar: XbarConfig {
                latency: 16,
                ports_per_endpoint: 1,
            },
            mem: MemConfig {
                channels: 8,
                capacity_per_channel: 1 << 30,
                interleave_atoms: 8, // 256 B
                banks: 16,
                row_bytes: 2 << 10,
                read_queue: 48,
                write_queue: 32,
                write_drain_high: 24,
                write_drain_low: 8,
                sched_window: 24,
                timing: DramTiming {
                    t_rcd: 20,
                    t_rp: 20,
                    t_ras: 50,
                    cas: 20,
                    t_wr: 24,
                    t_rtw: 8,
                    t_wtr: 10,
                    burst_cycles: 1,
                    t_refi: 3900,
                    t_rfc: 280,
                },
            },
            max_cycles: 200_000_000,
        }
    }

    /// HBM2-class preset: more channels, smaller rows, slightly slower
    /// per-channel bus — the side-band-ECC comparison point.
    pub fn hbm2() -> Self {
        let mut cfg = Self::gddr6();
        cfg.mem.channels = 16;
        cfg.mem.capacity_per_channel = 512 << 20;
        cfg.mem.row_bytes = 1 << 10;
        cfg.mem.banks = 16;
        cfg.mem.timing.burst_cycles = 2;
        cfg.mem.timing.t_rcd = 16;
        cfg.mem.timing.t_rp = 16;
        cfg.mem.timing.t_ras = 40;
        cfg.mem.timing.cas = 16;
        cfg
    }

    /// A tiny machine for fast unit and integration tests: 2 SMs, 2
    /// channels, small caches. Refresh disabled for determinism of simple
    /// hand-computed scenarios.
    pub fn tiny() -> Self {
        GpuConfig {
            core: CoreConfig {
                sms: 2,
                warps_per_sm: 4,
                threads_per_warp: 32,
                scheduler: SchedulerPolicy::GreedyThenOldest,
                lsu_queue: 16,
            },
            l1: CacheConfig {
                capacity_bytes: 4 << 10,
                ways: 4,
                line_bytes: 128,
                latency: 4,
                mshrs: 8,
                input_queue: 8,
            },
            l2: CacheConfig {
                capacity_bytes: 16 << 10,
                ways: 8,
                line_bytes: 128,
                latency: 8,
                mshrs: 16,
                input_queue: 8,
            },
            xbar: XbarConfig {
                latency: 2,
                ports_per_endpoint: 1,
            },
            mem: MemConfig {
                channels: 2,
                capacity_per_channel: 16 << 20,
                interleave_atoms: 8,
                banks: 4,
                row_bytes: 2 << 10,
                read_queue: 16,
                write_queue: 16,
                write_drain_high: 12,
                write_drain_low: 4,
                sched_window: 8,
                timing: DramTiming {
                    t_rcd: 5,
                    t_rp: 5,
                    t_ras: 12,
                    cas: 5,
                    t_wr: 6,
                    t_rtw: 2,
                    t_wtr: 3,
                    burst_cycles: 1,
                    t_refi: 0, // disabled
                    t_rfc: 0,
                },
            },
            max_cycles: 20_000_000,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |msg: String| Err(ConfigError(msg));
        if self.core.sms == 0 || self.core.warps_per_sm == 0 {
            return err("need at least one SM and one warp".into());
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2)] {
            if c.line_bytes != ATOM_BYTES * ATOMS_PER_LINE {
                return err(format!(
                    "{name}: line_bytes must be {} (sectored, 4 x 32 B)",
                    ATOM_BYTES * ATOMS_PER_LINE
                ));
            }
            if c.ways == 0 || c.capacity_bytes == 0 {
                return err(format!("{name}: zero capacity or ways"));
            }
            if c.capacity_bytes % (c.line_bytes * c.ways as u64) != 0 {
                return err(format!("{name}: capacity not divisible by way size"));
            }
            if !c.sets().is_power_of_two() {
                return err(format!("{name}: set count {} not a power of two", c.sets()));
            }
            if c.mshrs == 0 || c.input_queue == 0 {
                return err(format!("{name}: zero mshrs or input queue"));
            }
        }
        let m = &self.mem;
        if m.channels == 0 {
            return err("need at least one channel".into());
        }
        if !m.capacity_per_channel.is_multiple_of(m.row_bytes) {
            return err("channel capacity not a whole number of rows".into());
        }
        if !m.row_bytes.is_multiple_of(ATOM_BYTES) || m.row_bytes == 0 {
            return err("row size must be a positive multiple of 32 B".into());
        }
        if !m.interleave_atoms.is_power_of_two() {
            return err("interleave granularity must be a power of two".into());
        }
        if m.banks == 0 || !m.banks.is_power_of_two() {
            return err("bank count must be a positive power of two".into());
        }
        if !(m.atoms_per_channel() / m.row_atoms()).is_multiple_of(m.banks as u64) {
            return err("rows per channel must divide evenly across banks".into());
        }
        if m.write_drain_low >= m.write_drain_high || m.write_drain_high > m.write_queue {
            return err("write drain watermarks must satisfy low < high <= queue".into());
        }
        if m.sched_window == 0 || m.read_queue == 0 || m.write_queue == 0 {
            return err("controller queues and window must be positive".into());
        }
        if m.timing.burst_cycles == 0 {
            return err("burst_cycles must be positive".into());
        }
        if m.timing.t_refi != 0 && m.timing.t_rfc == 0 {
            return err("refresh enabled but t_rfc is zero".into());
        }
        if self.max_cycles == 0 {
            return err("max_cycles must be positive".into());
        }
        Ok(())
    }

    /// Total L2 capacity across all slices.
    pub fn l2_total_bytes(&self) -> u64 {
        self.l2.capacity_bytes * self.mem.channels as u64
    }

    /// Peak DRAM bandwidth in bytes per cycle (all channels).
    pub fn peak_bw_bytes_per_cycle(&self) -> f64 {
        self.mem.channels as f64 * ATOM_BYTES as f64 / self.mem.timing.burst_cycles as f64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gddr6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GpuConfig::gddr6().validate().unwrap();
        GpuConfig::hbm2().validate().unwrap();
        GpuConfig::tiny().validate().unwrap();
    }

    #[test]
    fn default_is_gddr6() {
        assert_eq!(GpuConfig::default(), GpuConfig::gddr6());
    }

    #[test]
    fn cache_sets_math() {
        let l2 = GpuConfig::gddr6().l2;
        assert_eq!(l2.sets(), (512 << 10) / (128 * 16));
    }

    #[test]
    fn validation_rejects_bad_line_size() {
        let mut cfg = GpuConfig::tiny();
        cfg.l1.line_bytes = 64;
        let e = cfg.validate().unwrap_err();
        assert!(e.to_string().contains("line_bytes"));
    }

    #[test]
    fn validation_rejects_non_pow2_sets() {
        let mut cfg = GpuConfig::tiny();
        cfg.l2.capacity_bytes = 3 * 128 * 8; // 3 sets
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_watermarks() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.write_drain_low = cfg.mem.write_drain_high;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_partial_rows() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.capacity_per_channel += 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_burst() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.timing.burst_cycles = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn derived_quantities() {
        let cfg = GpuConfig::gddr6();
        assert_eq!(cfg.mem.row_atoms(), 64);
        assert_eq!(cfg.mem.atoms_per_channel(), (1 << 30) / 32);
        assert_eq!(cfg.l2_total_bytes(), 4 << 20);
        assert!((cfg.peak_bw_bytes_per_cycle() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = GpuConfig::gddr6();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GpuConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
