//! Channel-sharded parallel execution engine.
//!
//! The cycle loop in [`crate::gpu`] is single-threaded. For multi-channel
//! machines the memory side — one (L2 slice, memory controller, DRAM
//! channel) stack per channel — dominates host time, and the stacks are
//! nearly independent timing domains: they interact only through the
//! crossbar, whose latency `L >= 1` cycles bounds how fast information
//! can cross between an SM and a slice.
//!
//! This module exploits that bound. Simulated time is cut into *epochs*
//! of exactly `L` cycles. Within one epoch:
//!
//! - a request sent by an SM at cycle `t` arrives at its slice at
//!   `t + L`, i.e. strictly inside a *later* epoch, so slices never need
//!   to see intra-epoch sends;
//! - a response emitted by a slice at cycle `t` arrives at its SM at
//!   `t + L`, strictly inside a later epoch, so SMs never need to see
//!   intra-epoch emissions.
//!
//! Each worker thread owns one or more channel stacks (a *lane* each)
//! and ticks them through the epoch while the main thread concurrently
//! runs the SM side over the same cycles. The only intra-epoch feedback
//! is *capacity*: the crossbar rejects a send when the target channel's
//! request queue holds `REQ_QUEUE_CAP` entries, and queue occupancy
//! depends on how many requests the lane drained each cycle. Lanes
//! therefore publish a per-cycle drain counter through [`LaneShared`];
//! the main thread mirrors queue occupancy as `pushes - pops` and folds
//! drain counters in lazily, only when it actually gates a send on that
//! channel — so in the common (non-full) case the threads never wait on
//! each other inside an epoch.
//!
//! At the epoch barrier the main thread collects each lane's emitted
//! responses and merges them into the crossbar in *canonical order* —
//! ascending cycle, then ascending channel, then emission order — which
//! is exactly the order the single-threaded loop calls `send_response`.
//! Request interleaving, rejects, and therefore `SimStats` are
//! bit-identical to the single-threaded simulator at every shard count.
//!
//! Epochs run only while a conservative bound
//! ([`SmCore::done_horizon`]) proves no warp set can retire inside the
//! epoch; the endgame (flush, drain, timeout) always runs on the
//! untouched single-threaded loop, which resumes from the handback
//! cycle with state indistinguishable from having run alone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::config::GpuConfig;
use crate::l2::L2Slice;
use crate::msg::{L2Request, L2Response};
use crate::protection::{ChannelScheme, ProtectionScheme, ShardSchemeAdapter};
use crate::sm::SmCore;
use crate::types::Cycle;
use crate::xbar::{Crossbar, REQ_QUEUE_CAP};
use ccraft_telemetry::profiler::PhaseTimer;

/// Mutable views over the simulator state the prologue advances. The
/// fields are exactly the locals of the single-threaded loop; on return
/// they hold the state that loop would have reached at `*now`.
pub(crate) struct ShardEnv<'a> {
    /// Machine description (epoch guard needs `max_cycles`).
    pub cfg: &'a GpuConfig,
    /// The SM cores, ticked by the main thread's SM phase.
    pub sms: &'a mut [SmCore],
    /// Per-channel L2 slices; drained into lanes, restored in order.
    pub slices: &'a mut Vec<L2Slice>,
    /// The crossbar; its request queues are mirrored by the gate.
    pub xbar: &'a mut Crossbar,
    /// Per-SM sleep memo (same semantics as the plain loop's).
    pub sm_wake: &'a mut [Cycle],
    /// Per-SM cached doneness (valid while the memo sleeps).
    pub sm_done: &'a mut [bool],
    /// Current cycle; advanced to the handback cycle.
    pub now: &'a mut Cycle,
}

impl std::fmt::Debug for ShardEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEnv").field("now", self.now).finish()
    }
}

/// What the prologue did, for the profiler's shard attribution.
#[derive(Debug, Default)]
pub(crate) struct ShardReport {
    /// Epochs executed before handing back to the plain loop.
    pub epochs: u64,
    /// Host ns the main thread spent blocked at epoch barriers.
    pub sm_wait_ns: u64,
    /// Per-worker load (index = shard id).
    pub workers: Vec<WorkerLoad>,
}

/// One worker's host-time split.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WorkerLoad {
    /// Channel lanes this worker owned.
    pub lanes: u32,
    /// Host ns ticking lanes (epoch work).
    pub busy_ns: u64,
    /// Host ns waiting for the next epoch command.
    pub wait_ns: u64,
}

/// Cross-thread state for one worker: the per-cycle drain counters its
/// lanes publish and the progress watermark that orders them.
///
/// `progress` holds `t + 1` once every lane finished cycle `t`
/// (`Release`-stored; the gate `Acquire`-loads it before reading
/// `drains`). `drains` is a ring of one slot per (lane, epoch cycle):
/// slot `lane * epoch_len + (t - epoch_start)` holds how many requests
/// that lane drained from its ingress queue at cycle `t`. Slots are
/// reused across epochs; the barrier protocol guarantees the main
/// thread folds every slot of epoch `k` before any lane starts epoch
/// `k + 1`.
struct LaneShared {
    progress: AtomicU64,
    drains: Vec<AtomicU32>,
}

/// Spin until `sh.progress >= target`. A short busy-spin covers the
/// common case where the producer is mid-epoch on another core; past
/// that the waiter yields on every check so an oversubscribed host
/// (fewer cores than lanes) hands the CPU straight to the lane it is
/// waiting on instead of burning its timeslice.
fn wait_progress(sh: &LaneShared, target: u64) {
    let mut spins: u32 = 0;
    while sh.progress.load(Ordering::Acquire) < target {
        if spins < 64 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// One channel stack owned by a worker: the slice, the scheme's
/// detached per-channel state, and the not-yet-delivered ingress queue
/// (the shard-side mirror of the crossbar's per-channel request queue).
struct Lane {
    channel: u16,
    slice: L2Slice,
    adapter: ShardSchemeAdapter,
    pending: VecDeque<(Cycle, L2Request)>,
    delivered: u64,
}

/// Epoch command sent main → worker.
enum Cmd {
    /// Run cycles `[start, start + epoch_len)`; `ingress[i]` is the
    /// arrival-stamped request batch for the worker's `i`-th lane,
    /// gated during the previous SM phase, in send order.
    Epoch {
        start: Cycle,
        ingress: Vec<Vec<(Cycle, L2Request)>>,
    },
    /// Hand the lanes back and exit.
    Finish,
}

/// Per-epoch reply, worker → main.
struct EpochReply {
    /// Per-lane responses in emission order, stamped with the emission
    /// cycle. The driver merges these canonically at the barrier.
    egress: Vec<Vec<(Cycle, L2Response)>>,
    /// Per-lane ingress queue length at epoch end, for the gate-mirror
    /// cross-check.
    #[cfg(feature = "check-invariants")]
    pending_lens: Vec<usize>,
}

/// Final reply, worker → main.
struct LaneReturn {
    lanes: Vec<Lane>,
    busy_ns: u64,
    wait_ns: u64,
}

enum Reply {
    Epoch(EpochReply),
    Finish(Box<LaneReturn>),
}

/// A worker thread's lanes plus its scratch state.
struct Worker {
    lanes: Vec<Lane>,
    ports: u32,
    /// Epoch length in cycles (= crossbar latency); also the per-lane
    /// stride into [`LaneShared::drains`].
    stride: usize,
    resp_buf: Vec<L2Response>,
}

impl Worker {
    /// Earliest cycle `> t` at which any of this worker's lanes can act,
    /// capped at `end`, or `None` when some lane is busy at `t`. Same
    /// contract as the plain loop's `idle_wake`, restricted to the
    /// lane-local components: a lane whose slice reports
    /// `next_event > t`, whose ingress front has not matured and whose
    /// channel scheme has no due pacing event provably no-ops at `t`.
    #[cfg(not(feature = "check-invariants"))]
    fn idle_until(&self, t: Cycle, end: Cycle) -> Option<Cycle> {
        let mut wake = end;
        for lane in &self.lanes {
            match lane.slice.next_event(t) {
                Some(c) if c <= t => return None,
                Some(c) => wake = wake.min(c),
                None => {}
            }
            if let Some(&(arrival, _)) = lane.pending.front() {
                if arrival <= t {
                    return None;
                }
                wake = wake.min(arrival);
            }
            match lane.adapter.channel_timed_event() {
                Some(c) if c <= t => return None,
                Some(c) => wake = wake.min(c),
                None => {}
            }
        }
        Some(wake)
    }

    /// Runs one epoch over this worker's lanes, publishing per-cycle
    /// drain counts through `shared` as each cycle completes.
    fn run_epoch(
        &mut self,
        shared: &LaneShared,
        start: Cycle,
        ingress: Vec<Vec<(Cycle, L2Request)>>,
    ) -> EpochReply {
        let end = start + self.stride as Cycle;
        for (lane, batch) in self.lanes.iter_mut().zip(ingress) {
            lane.pending.extend(batch);
        }
        let mut egress: Vec<Vec<(Cycle, L2Response)>> =
            self.lanes.iter().map(|_| Vec::new()).collect();
        let mut t = start;
        while t < end {
            // Lane-local idle skip: all lanes quiescent until `wake`.
            // Skipped slots still publish (zero) drains so the gate's
            // fold never reads a stale ring entry. Disabled under the
            // oracle build, which ticks through every cycle.
            #[cfg(not(feature = "check-invariants"))]
            {
                if let Some(wake) = self.idle_until(t, end) {
                    if wake > t {
                        // lint: allow(panic-freedom) reason=t >= start is the while-loop invariant; a panic beats a silently wrapped ring slot
                        let base_slot = (t - start) as usize;
                        // lint: allow(panic-freedom) reason=guarded by wake > t on the line above
                        let n = (wake - t) as usize;
                        for li in 0..self.lanes.len() {
                            for s in 0..n {
                                // lint: allow(panic-freedom) reason=idle_until clamps wake to end, so base_slot + s < stride; li < lanes by the loop bound
                                shared.drains[li * self.stride + base_slot + s]
                                    .store(0, Ordering::Relaxed);
                            }
                        }
                        shared.progress.store(wake, Ordering::Release);
                        t = wake;
                        continue;
                    }
                }
            }
            // lint: allow(panic-freedom) reason=t >= start is the while-loop invariant; a panic beats a silently wrapped ring slot
            let slot = (t - start) as usize;
            for (li, lane) in self.lanes.iter_mut().enumerate() {
                // Same per-channel order as the plain loop: slice tick,
                // response emission, then request delivery.
                lane.slice.tick(&mut lane.adapter, t);
                lane.slice.pop_responses_into(t, &mut self.resp_buf);
                for &resp in self.resp_buf.iter() {
                    egress[li].push((t, resp));
                }
                let mut drained: u32 = 0;
                for _ in 0..self.ports {
                    let matured =
                        matches!(lane.pending.front(), Some(&(arrival, _)) if arrival <= t);
                    if !matured || !lane.slice.can_accept() {
                        break;
                    }
                    if let Some((_, req)) = lane.pending.pop_front() {
                        lane.slice.push(req);
                        lane.delivered += 1;
                        drained += 1;
                    }
                }
                // lint: allow(panic-freedom) reason=slot < stride because t < end = start + stride; li < lanes by the iterator bound
                shared.drains[li * self.stride + slot].store(drained, Ordering::Relaxed);
                #[cfg(feature = "check-invariants")]
                lane.slice.assert_coherent();
            }
            shared.progress.store(t + 1, Ordering::Release);
            t += 1;
        }
        EpochReply {
            egress,
            #[cfg(feature = "check-invariants")]
            pending_lens: self.lanes.iter().map(|l| l.pending.len()).collect(),
        }
    }
}

/// Worker thread entry: serve epoch commands until `Finish`.
fn worker_main(
    mut w: Worker,
    shared: &LaneShared,
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
    profile: bool,
) {
    let mut busy_ns: u64 = 0;
    let mut wait_ns: u64 = 0;
    let mut timer = PhaseTimer::start(profile);
    loop {
        let cmd = match rx.recv() {
            Ok(c) => c,
            // Driver gone (panic unwinding the scope): just exit.
            Err(_) => return,
        };
        wait_ns = wait_ns.saturating_add(timer.lap());
        match cmd {
            Cmd::Epoch { start, ingress } => {
                let reply = w.run_epoch(shared, start, ingress);
                busy_ns = busy_ns.saturating_add(timer.lap());
                if tx.send(Reply::Epoch(reply)).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let _ = tx.send(Reply::Finish(Box::new(LaneReturn {
                    lanes: w.lanes,
                    busy_ns,
                    wait_ns,
                })));
                return;
            }
        }
    }
}

/// The main thread's mirror of the crossbar's per-channel request
/// queues while lanes own the real delivery side. Occupancy is
/// `pushes - pops`; `pops` lags the lanes' published drain counters and
/// is folded forward lazily, only when a send must be gated.
struct Gate<'s> {
    latency: Cycle,
    cap: u64,
    pushes: Vec<u64>,
    pops: Vec<u64>,
    /// Next cycle (per channel) whose drain counter has not been folded
    /// into `pops` yet.
    drained_upto: Vec<Cycle>,
    /// Requests gated since the last handoff, stamped with their
    /// arrival cycle, in send order. Becomes the next epoch's ingress.
    batches: Vec<Vec<(Cycle, L2Request)>>,
    sent: u64,
    rejects: u64,
    shared: &'s [LaneShared],
    workers: usize,
    stride: usize,
    epoch_start: Cycle,
}

impl<'s> Gate<'s> {
    fn new(latency: Cycle, channels: usize, init_lens: &[u64], shared: &'s [LaneShared]) -> Self {
        let workers = shared.len();
        let stride = latency as usize;
        Gate {
            latency,
            cap: REQ_QUEUE_CAP as u64,
            pushes: init_lens.to_vec(),
            pops: vec![0; channels],
            drained_upto: vec![0; channels],
            batches: vec![Vec::new(); channels],
            sent: 0,
            rejects: 0,
            shared,
            workers,
            stride,
            epoch_start: 0,
        }
    }

    /// Folds channel `ch`'s drain counters through cycle `through`
    /// (inclusive) into `pops`, waiting for the owning lane to publish
    /// them first.
    fn fold(&mut self, ch: usize, through: Cycle) {
        if self.drained_upto[ch] > through {
            return;
        }
        let sh = &self.shared[ch % self.workers];
        wait_progress(sh, through + 1);
        let base = (ch / self.workers) * self.stride;
        for c in self.drained_upto[ch]..=through {
            // lint: allow(panic-freedom) reason=drained_upto never precedes epoch_start (both reset together at the epoch barrier)
            let slot = (c - self.epoch_start) as usize;
            // lint: allow(panic-freedom) reason=slot < stride because through is capped at the epoch end; base partitions the ring by lane
            self.pops[ch] += u64::from(sh.drains[base + slot].load(Ordering::Relaxed));
        }
        self.drained_upto[ch] = through + 1;
    }

    /// The SM phase's send hook: same accept/reject decision, stamp and
    /// counter updates as `Crossbar::try_send_request`, against the
    /// mirrored occupancy.
    fn try_send(&mut self, req: L2Request, now: Cycle) -> bool {
        let ch = req.loc.channel as usize;
        self.fold(ch, now);
        if self.pushes[ch] - self.pops[ch] >= self.cap {
            self.rejects += 1;
            return false;
        }
        self.batches[ch].push((now + self.latency, req));
        self.pushes[ch] += 1;
        self.sent += 1;
        true
    }
}

/// Conservative earliest cycle at which *every* warp in the machine
/// could have retired: the max over SMs of [`SmCore::done_horizon`].
fn done_horizon_all(sms: &[SmCore], now: Cycle) -> Cycle {
    sms.iter()
        .map(|s| s.done_horizon(now))
        .fold(now, Cycle::max)
}

/// Runs the SM side of cycles `[from, to)`: response delivery, core
/// ticks (sends routed through the gate mirror) and the per-SM sleep
/// memo — a faithful transcription of the plain loop's phases 2b/3,
/// valid because the termination scan, flush, telemetry and fault
/// hooks are all provably inert inside a guarded epoch.
#[allow(clippy::too_many_arguments)]
fn sm_phase(
    sms: &mut [SmCore],
    xbar: &mut Crossbar,
    sm_wake: &mut [Cycle],
    sm_done: &mut [bool],
    scheme: &dyn ProtectionScheme,
    gate: &mut Gate<'_>,
    resp_buf: &mut Vec<L2Response>,
    from: Cycle,
    to: Cycle,
) {
    let mut t = from;
    while t < to {
        // All-asleep skip: no SM can act before the earliest wake or
        // response arrival, so the only per-cycle effect is the stall
        // accounting — batch it. (The crossbar's request queues are
        // empty while sharded, so `next_event` is the earliest response
        // arrival.) Disabled under the oracle build.
        #[cfg(not(feature = "check-invariants"))]
        {
            if sm_wake.iter().all(|&w| w > t) {
                let mut wake = to;
                for &w in sm_wake.iter() {
                    if w < wake {
                        wake = w;
                    }
                }
                match xbar.next_event() {
                    Some(c) if c <= t => wake = t,
                    Some(c) => wake = wake.min(c),
                    None => {}
                }
                if wake > t {
                    let span = wake.saturating_sub(t);
                    for (i, sm) in sms.iter_mut().enumerate() {
                        if !sm_done[i] {
                            sm.account_stalled_span(span);
                        }
                    }
                    t = wake;
                    continue;
                }
            }
        }
        for (i, sm) in sms.iter_mut().enumerate() {
            xbar.deliver_responses_into(i as u16, t, resp_buf);
            if !resp_buf.is_empty() {
                sm_wake[i] = 0;
            }
            for &resp in resp_buf.iter() {
                sm.l1.accept_response(resp);
            }
        }
        for (i, sm) in sms.iter_mut().enumerate() {
            if sm_wake[i] > t {
                #[cfg(feature = "check-invariants")]
                {
                    if let Some(c) = sm.next_event(t) {
                        assert!(
                            c >= sm_wake[i],
                            "invariant violated: SM {i} asleep until {} but \
                             next_event says {c} (cycle {t}, sharded)",
                            sm_wake[i]
                        );
                    }
                    assert_eq!(
                        sm.all_warps_done(t),
                        sm_done[i],
                        "invariant violated: SM {i} doneness flipped while \
                         asleep (cycle {t}, sharded)"
                    );
                }
                if !sm_done[i] {
                    sm.account_stalled_span(1);
                }
                continue;
            }
            let stalled = sm.tick(t, &mut |atom| scheme.map(atom), &mut |req| {
                gate.try_send(req, t)
            });
            if stalled {
                sm_wake[i] = match sm.next_event(t) {
                    Some(c) if c <= t => 0,
                    Some(c) => c,
                    None => Cycle::MAX,
                };
                if sm_wake[i] > t {
                    sm_done[i] = sm.all_warps_done(t);
                }
            } else {
                sm_wake[i] = 0;
            }
        }
        t += 1;
    }
}

/// Runs the channel-sharded prologue, advancing `env` through whole
/// epochs while the done-horizon guard holds, then hands back with
/// every piece of state bit-identical to a single-threaded run reaching
/// `*env.now`. Returns `None` (leaving `env` untouched) when sharding
/// cannot engage: one thread, fewer than two channels, a zero-latency
/// crossbar, a scheme without per-channel partitioning, or a run too
/// short to prove even one completion-free epoch.
pub(crate) fn run_prologue(
    env: &mut ShardEnv<'_>,
    scheme: &mut dyn ProtectionScheme,
    sim_threads: u32,
    profile: bool,
) -> Option<ShardReport> {
    let channels = usize::from(env.cfg.mem.channels);
    let latency = Cycle::from(env.xbar.latency());
    let epoch = latency;
    if sim_threads <= 1 || channels < 2 || epoch == 0 || *env.now != 0 {
        return None;
    }
    let mut horizon = done_horizon_all(env.sms, 0);
    if epoch > horizon || epoch >= env.cfg.max_cycles {
        return None;
    }
    let chan_schemes = scheme.detach_channels()?;
    debug_assert_eq!(chan_schemes.len(), channels, "detach_channels arity");

    // Partition channels round-robin over workers: worker `w` owns
    // channels `w, w + S, w + 2S, ...` (lane `li` of worker `w` is
    // channel `w + li * S`). The merge order is canonical by channel
    // regardless of the partition, so the assignment only affects load
    // balance.
    let workers_n = (sim_threads as usize - 1).min(channels);
    let stride = epoch as usize;
    let ports = env.xbar.ports();
    let mut scheme_slots: Vec<Option<Box<dyn ChannelScheme>>> =
        chan_schemes.into_iter().map(Some).collect();
    let mut slice_slots: Vec<Option<L2Slice>> = env.slices.drain(..).map(Some).collect();
    let mut workers: Vec<Worker> = (0..workers_n)
        .map(|_| Worker {
            lanes: Vec::new(),
            ports,
            stride,
            resp_buf: Vec::new(),
        })
        .collect();
    let mut init_lens: Vec<u64> = vec![0; channels];
    for ch in 0..channels {
        let slice = slice_slots[ch].take().unwrap_or_else(|| unreachable!());
        let cs = scheme_slots[ch].take().unwrap_or_else(|| unreachable!());
        let pending = env.xbar.take_requests(ch as u16);
        init_lens[ch] = pending.len() as u64;
        workers[ch % workers_n].lanes.push(Lane {
            channel: ch as u16,
            slice,
            adapter: ShardSchemeAdapter::new(cs, ch as u16),
            pending,
            delivered: 0,
        });
    }
    let shared: Vec<LaneShared> = workers
        .iter()
        .map(|w| LaneShared {
            progress: AtomicU64::new(0),
            drains: (0..w.lanes.len() * stride)
                .map(|_| AtomicU32::new(0))
                .collect(),
        })
        .collect();

    let mut report = ShardReport::default();
    let mut barrier_timer = PhaseTimer::start(profile);

    std::thread::scope(|scope| {
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(workers_n);
        let mut reply_rxs: Vec<Receiver<Reply>> = Vec::with_capacity(workers_n);
        for (wi, w) in workers.into_iter().enumerate() {
            let (ctx, crx) = channel::<Cmd>();
            let (rtx, rrx) = channel::<Reply>();
            let sh = &shared[wi];
            scope.spawn(move || worker_main(w, sh, crx, rtx, profile));
            cmd_txs.push(ctx);
            reply_rxs.push(rrx);
        }

        let mut gate = Gate::new(latency, channels, &init_lens, &shared);
        let mut resp_buf: Vec<L2Response> = Vec::new();
        let mut e: Cycle = 0;
        loop {
            // Epoch guard: the whole epoch must be provably
            // completion-free (so the plain loop's per-cycle
            // termination scan stays a no-op) and inside the timeout.
            if e + epoch > horizon {
                horizon = done_horizon_all(env.sms, e);
                if e + epoch > horizon {
                    break;
                }
            }
            if e + epoch >= env.cfg.max_cycles {
                break;
            }
            gate.epoch_start = e;
            for (wi, tx) in cmd_txs.iter().enumerate() {
                let ingress: Vec<Vec<(Cycle, L2Request)>> = (0..channels)
                    .skip(wi)
                    .step_by(workers_n)
                    .map(|ch| std::mem::take(&mut gate.batches[ch]))
                    .collect();
                if tx.send(Cmd::Epoch { start: e, ingress }).is_err() {
                    panic!("shard worker {wi} disconnected");
                }
            }
            sm_phase(
                env.sms,
                env.xbar,
                env.sm_wake,
                env.sm_done,
                scheme,
                &mut gate,
                &mut resp_buf,
                e,
                e + epoch,
            );
            // Epoch barrier: collect every lane's egress.
            let mut egress_by_ch: Vec<Vec<(Cycle, L2Response)>> =
                (0..channels).map(|_| Vec::new()).collect();
            #[cfg(feature = "check-invariants")]
            let mut pending_lens: Vec<usize> = vec![0; channels];
            for (wi, rx) in reply_rxs.iter().enumerate() {
                barrier_timer.reset();
                let reply = match rx.recv() {
                    Ok(Reply::Epoch(r)) => r,
                    _ => panic!("shard worker {wi} disconnected"),
                };
                report.sm_wait_ns = report.sm_wait_ns.saturating_add(barrier_timer.lap());
                for (li, eg) in reply.egress.into_iter().enumerate() {
                    // lint: allow(panic-freedom) reason=wi + li * workers is the inverse of the ch -> (worker, lane) partition; both factors are bounded by construction
                    egress_by_ch[wi + li * workers_n] = eg;
                }
                #[cfg(feature = "check-invariants")]
                for (li, &len) in reply.pending_lens.iter().enumerate() {
                    // lint: allow(panic-freedom) reason=wi + li * workers is the inverse of the ch -> (worker, lane) partition; both factors are bounded by construction
                    pending_lens[wi + li * workers_n] = len;
                }
            }
            // Fold the epoch's remaining drain counters (all published:
            // the replies above are sent after the final progress
            // store) so the mirror is exact at the boundary.
            for ch in 0..channels {
                gate.fold(ch, e + epoch - 1);
            }
            #[cfg(feature = "check-invariants")]
            for ch in 0..channels {
                assert_eq!(
                    gate.pushes[ch] - gate.pops[ch],
                    (pending_lens[ch] + gate.batches[ch].len()) as u64,
                    "invariant violated: gate mirror diverged from lane \
                     queue on channel {ch} at epoch end {e}",
                );
            }
            // Canonical merge: ascending cycle, then ascending channel,
            // then emission order — exactly the single-threaded
            // `send_response` order. Every response emitted in this
            // epoch arrives strictly inside the next one, so merging at
            // the barrier is always in time.
            let mut idx = vec![0usize; channels];
            for t in e..e + epoch {
                for (q, i) in egress_by_ch.iter().zip(idx.iter_mut()) {
                    while *i < q.len() && q[*i].0 == t {
                        let (cycle, resp) = q[*i];
                        env.xbar.push_stamped_response(resp, cycle + latency);
                        *i += 1;
                    }
                }
            }
            debug_assert!(
                idx.iter()
                    .zip(egress_by_ch.iter())
                    .all(|(&i, q)| i == q.len()),
                "unmerged egress outside the epoch window"
            );
            e += epoch;
            report.epochs += 1;
        }

        // Shutdown and reassembly: lanes hand their state back; the
        // crossbar's request queues are rebuilt as (undelivered
        // ingress) ++ (requests gated since the last handoff), which is
        // arrival order.
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        let mut slice_back: Vec<Option<L2Slice>> = (0..channels).map(|_| None).collect();
        let mut scheme_back: Vec<Option<Box<dyn ChannelScheme>>> =
            (0..channels).map(|_| None).collect();
        let mut delivered_total: u64 = 0;
        for (wi, rx) in reply_rxs.iter().enumerate() {
            let ret = match rx.recv() {
                Ok(Reply::Finish(r)) => r,
                _ => panic!("shard worker {wi} disconnected"),
            };
            report.workers.push(WorkerLoad {
                lanes: ret.lanes.len() as u32,
                busy_ns: ret.busy_ns,
                wait_ns: ret.wait_ns,
            });
            for (li, lane) in ret.lanes.into_iter().enumerate() {
                let ch = wi + li * workers_n;
                debug_assert_eq!(usize::from(lane.channel), ch, "lane returned out of order");
                delivered_total += lane.delivered;
                let mut q = lane.pending;
                q.extend(gate.batches[ch].drain(..));
                env.xbar.restore_requests(ch as u16, q);
                slice_back[ch] = Some(lane.slice);
                scheme_back[ch] = Some(lane.adapter.into_inner());
            }
        }
        for slot in &mut slice_back {
            env.slices
                .push(slot.take().unwrap_or_else(|| unreachable!()));
        }
        scheme.attach_channels(
            scheme_back
                .into_iter()
                .map(|o| o.unwrap_or_else(|| unreachable!()))
                .collect(),
        );
        env.xbar.add_request_stats(gate.sent, gate.rejects);
        #[cfg(feature = "check-invariants")]
        env.xbar.note_shard_delivered_requests(delivered_total);
        #[cfg(not(feature = "check-invariants"))]
        let _ = delivered_total;
        *env.now = e;
    });
    Some(report)
}
