//! DRAM and on-chip-structure energy model.
//!
//! MICRO-style evaluations report energy alongside performance; this
//! module computes both *post hoc* from a run's [`SimStats`], so the
//! timing simulator stays energy-agnostic. The model is event-based:
//!
//! * **Activate/precharge** — per row activation (row empties + conflicts
//!   both open a row; the conflict's precharge is folded into the same
//!   constant, as is conventional).
//! * **Read/write burst** — per 32-byte atom transferred, including I/O.
//! * **Refresh** — per all-bank refresh operation.
//! * **Background** — per channel-cycle (clocking, peripheral, standby).
//! * **On-chip ECC structures** — per access to the dedicated ECC cache /
//!   fragment store / coalescing buffer, derived from the protection
//!   counters (each hit, fetch-install, absorb or drain touches the
//!   structure once).
//!
//! Default constants are GDDR6-class order-of-magnitude values assembled
//! from public datasheet-derived literature (≈15 pJ/bit transferred,
//! ≈2 nJ per activate for a 2 KiB row, ≈190 nJ per all-bank refresh,
//! ≈0.15 pJ/bit for small SRAM arrays). Absolute joules carry the same
//! caveat as absolute cycles (DESIGN.md §2); the evaluation uses
//! *relative* energy across schemes, which is dominated by well-known
//! event ratios.

use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Event-energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per row activation + its eventual precharge.
    pub activate_pj: f64,
    /// Energy per 32-byte read burst (array + I/O).
    pub read_atom_pj: f64,
    /// Energy per 32-byte write burst.
    pub write_atom_pj: f64,
    /// Energy per all-bank refresh of one channel.
    pub refresh_pj: f64,
    /// Background power per channel, per core cycle.
    pub background_pj_per_cycle: f64,
    /// Energy per access to a small on-chip SRAM structure (one ECC atom).
    pub sram_access_pj: f64,
}

impl EnergyModel {
    /// GDDR6-class defaults (see module docs for provenance).
    pub fn gddr6() -> Self {
        EnergyModel {
            activate_pj: 2_000.0,
            read_atom_pj: 3_800.0, // ~15 pJ/bit x 256 bits
            write_atom_pj: 3_800.0,
            refresh_pj: 190_000.0,
            background_pj_per_cycle: 80.0,
            sram_access_pj: 40.0, // ~0.15 pJ/bit x 256 bits
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::gddr6()
    }
}

/// Energy breakdown of one run, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activations (and their precharges).
    pub activate_nj: f64,
    /// Data read bursts.
    pub data_read_nj: f64,
    /// Data write bursts.
    pub data_write_nj: f64,
    /// ECC read bursts.
    pub ecc_read_nj: f64,
    /// ECC write bursts.
    pub ecc_write_nj: f64,
    /// Refresh operations.
    pub refresh_nj: f64,
    /// Background (duration x channels).
    pub background_nj: f64,
    /// On-chip ECC-structure accesses.
    pub sram_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj
            + self.data_read_nj
            + self.data_write_nj
            + self.ecc_read_nj
            + self.ecc_write_nj
            + self.refresh_nj
            + self.background_nj
            + self.sram_nj
    }

    /// DRAM dynamic energy only (excludes background and on-chip SRAM).
    pub fn dram_dynamic_nj(&self) -> f64 {
        self.activate_nj
            + self.data_read_nj
            + self.data_write_nj
            + self.ecc_read_nj
            + self.ecc_write_nj
            + self.refresh_nj
    }

    /// Fraction of total energy attributable to protection (ECC bursts,
    /// the activations they caused are not separable and are excluded,
    /// plus on-chip structures).
    pub fn protection_fraction(&self) -> f64 {
        let total = self.total_nj();
        if total == 0.0 {
            0.0
        } else {
            (self.ecc_read_nj + self.ecc_write_nj + self.sram_nj) / total
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} uJ total (act {:.1} / dRW {:.1} / eRW {:.1} / ref {:.1} / bg {:.1} / sram {:.2})",
            self.total_nj() / 1000.0,
            self.activate_nj / 1000.0,
            (self.data_read_nj + self.data_write_nj) / 1000.0,
            (self.ecc_read_nj + self.ecc_write_nj) / 1000.0,
            self.refresh_nj / 1000.0,
            self.background_nj / 1000.0,
            self.sram_nj / 1000.0,
        )
    }
}

impl EnergyModel {
    /// Computes the energy of a completed run. `channels` is the machine's
    /// channel count (for background power).
    pub fn evaluate(&self, stats: &SimStats, channels: u16) -> EnergyBreakdown {
        let p = &stats.protection;
        // Each structure event is one SRAM access; fetch installs touch it
        // twice (probe + install), absorbs and drains once each.
        let sram_accesses = p.ecc_fetch_hits
            + 2 * p.ecc_demand_fetches
            + p.absorbed_writebacks
            + p.coalesced_ecc_writes
            + p.reconstructed_writebacks
            + p.ecc_structure_writebacks
            + p.rmw_writebacks;
        EnergyBreakdown {
            activate_nj: (stats.row_empties + stats.row_conflicts) as f64 * self.activate_pj
                / 1000.0,
            data_read_nj: stats.dram[0] as f64 * self.read_atom_pj / 1000.0,
            data_write_nj: stats.dram[1] as f64 * self.write_atom_pj / 1000.0,
            ecc_read_nj: stats.dram[2] as f64 * self.read_atom_pj / 1000.0,
            ecc_write_nj: stats.dram[3] as f64 * self.write_atom_pj / 1000.0,
            refresh_nj: stats.refreshes as f64 * self.refresh_pj / 1000.0,
            background_nj: stats.cycles as f64 * channels as f64 * self.background_pj_per_cycle
                / 1000.0,
            sram_nj: sram_accesses as f64 * self.sram_access_pj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::ProtectionStats;

    fn stats() -> SimStats {
        SimStats {
            kernel: "k".into(),
            scheme: "s".into(),
            cycles: 10_000,
            exec_cycles: 9_000,
            timed_out: false,
            ops: 100,
            accesses: 100,
            l1_read_hits: 0,
            l1_read_misses: 0,
            l2_read_hits: 0,
            l2_read_misses: 0,
            l2_fills: 0,
            l2_writebacks: 0,
            dram: [1000, 500, 200, 100],
            row_hits: 1500,
            row_empties: 200,
            row_conflicts: 100,
            refreshes: 2,
            mean_read_latency: 0.0,
            protection: ProtectionStats {
                ecc_demand_fetches: 200,
                ecc_fetch_hits: 800,
                ..ProtectionStats::default()
            },
            latency_hist: None,
            timeline: None,
            faults: None,
        }
    }

    #[test]
    fn breakdown_matches_hand_computation() {
        let m = EnergyModel::gddr6();
        let e = m.evaluate(&stats(), 8);
        assert!((e.activate_nj - 300.0 * 2_000.0 / 1000.0).abs() < 1e-9);
        assert!((e.data_read_nj - 1000.0 * 3.8).abs() < 1e-9);
        assert!((e.ecc_read_nj - 200.0 * 3.8).abs() < 1e-9);
        assert!((e.refresh_nj - 2.0 * 190.0).abs() < 1e-9);
        assert!((e.background_nj - 10_000.0 * 8.0 * 80.0 / 1000.0).abs() < 1e-9);
        // 800 hits + 2x200 fetch installs = 1200 SRAM accesses.
        assert!((e.sram_nj - 1200.0 * 40.0 / 1000.0).abs() < 1e-9);
        let sum = e.activate_nj
            + e.data_read_nj
            + e.data_write_nj
            + e.ecc_read_nj
            + e.ecc_write_nj
            + e.refresh_nj
            + e.background_nj
            + e.sram_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
    }

    #[test]
    fn protection_fraction_bounds() {
        let m = EnergyModel::gddr6();
        let e = m.evaluate(&stats(), 8);
        let f = e.protection_fraction();
        assert!(f > 0.0 && f < 1.0);
        // A run with zero ECC traffic has zero protection energy.
        let mut clean = stats();
        clean.dram[2] = 0;
        clean.dram[3] = 0;
        clean.protection = ProtectionStats::default();
        let e2 = m.evaluate(&clean, 8);
        assert_eq!(e2.protection_fraction(), 0.0);
        assert!(e2.total_nj() < e.total_nj());
    }

    #[test]
    fn dram_dynamic_excludes_background_and_sram() {
        let m = EnergyModel::gddr6();
        let e = m.evaluate(&stats(), 8);
        assert!((e.dram_dynamic_nj() + e.background_nj + e.sram_nj - e.total_nj()).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_total() {
        let m = EnergyModel::gddr6();
        let text = m.evaluate(&stats(), 8).to_string();
        assert!(text.contains("uJ total"));
    }

    #[test]
    fn serde_round_trip() {
        let m = EnergyModel::gddr6();
        let e = m.evaluate(&stats(), 8);
        let json = serde_json::to_string(&e).unwrap();
        let back: EnergyBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
