//! In-situ DRAM fault injection for the timed pipeline.
//!
//! The offline codec campaigns in `ccraft-core` answer "what does this
//! code correct?"; this module answers "what does this *machine* see under
//! load?". A [`FaultInjector`] rides along the simulation loop and, every
//! cycle, observes the DRAM read transactions each memory controller
//! issued. Each transaction is independently hit by a fault with the
//! configured per-access probability (optionally derived from a FIT-style
//! per-GB-hour rate); on a hit, one codeword trial runs through the
//! protection scheme's *actual* codec (see
//! [`ProtectionScheme::fault_codec`](crate::protection::ProtectionScheme::fault_codec))
//! and the decode outcome is classified against ground truth as benign /
//! corrected / DUE / SDC.
//!
//! Injection is **observational**: it never changes timing, traffic, or
//! any other [`SimStats`](crate::stats::SimStats) field. A run at rate 0
//! is bit-identical (minus the `faults` block) to a run with injection
//! disabled — the determinism guard in the integration tests relies on
//! this. The trade-off is that a DUE does not, e.g., trigger a replay or
//! kill the kernel; we account outcomes, we do not model error *handling*.
//!
//! Error exposure is class-aware: data-read transactions inject into the
//! data bytes of a codeword, ECC-read transactions into the check bytes.
//! Schemes therefore differentiate naturally — CacheCraft's cached-ECC and
//! reconstruction paths issue fewer ECC reads than inline-naive, so fewer
//! check-side faults are even possible.

use crate::types::{Cycle, TrafficClass, ATOM_BYTES};
use ccraft_ecc::inject::{ErrorPattern, Injector};
use ccraft_ecc::rs::ReedSolomon;
use ccraft_ecc::secded::SecDed64;
use ccraft_ecc::{Codec, DecodeOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How often a DRAM read transaction is hit by a fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRate {
    /// Direct per-transaction probability in `[0, 1]`.
    PerAccess {
        /// Probability that one DRAM read transaction is faulty.
        p: f64,
    },
    /// FIT-style rate: failures per 10^9 device-hours per GB, scaled by an
    /// accelerated exposure window so short simulations still see events.
    FitPerGb {
        /// Failures in time (per 1e9 hours) per GB of accessed data.
        fit: f64,
        /// Modeled hours of exposure attributed to each access.
        exposure_hours: f64,
    },
}

impl FaultRate {
    /// The effective per-transaction probability, clamped to `[0, 1]`.
    pub fn per_access_probability(self) -> f64 {
        match self {
            FaultRate::PerAccess { p } => p.clamp(0.0, 1.0),
            FaultRate::FitPerGb {
                fit,
                exposure_hours,
            } => {
                let gb_per_atom = ATOM_BYTES as f64 / (1u64 << 30) as f64;
                (fit * 1e-9 * gb_per_atom * exposure_hours).clamp(0.0, 1.0)
            }
        }
    }
}

/// Complete in-situ injection configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fault shape injected into a codeword on each hit.
    pub pattern: ErrorPattern,
    /// Hit rate per DRAM read transaction.
    pub rate: FaultRate,
    /// RNG seed; runs with equal configs are bit-for-bit reproducible.
    pub seed: u64,
}

impl FaultConfig {
    /// Parses a `<pattern>:<rate>` spec as accepted by `ccx run --inject`.
    ///
    /// Patterns: `bit1 | bit2 | bit3 | burst4 | symbol | chiplane` (the
    /// reliability-campaign names). Rate: either a bare per-access
    /// probability (`1e-6`, `0.001`) or `fit=<N>[@<hours>]` for a
    /// per-GB-hour FIT rate with an optional exposure window (default 1
    /// hour). The seed defaults to 0; callers override it per trial.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (pat_s, rate_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("--inject '{spec}': expected <pattern>:<rate>"))?;
        let pattern = match pat_s {
            "bit1" => ErrorPattern::RandomBits { count: 1 },
            "bit2" => ErrorPattern::RandomBits { count: 2 },
            "bit3" => ErrorPattern::RandomBits { count: 3 },
            "burst4" => ErrorPattern::AdjacentBurst { len: 4 },
            "symbol" => ErrorPattern::SymbolError,
            "chiplane" => ErrorPattern::ChipLane { stride: 4 },
            other => {
                return Err(format!(
                    "--inject: unknown pattern '{other}' \
                     (want bit1|bit2|bit3|burst4|symbol|chiplane)"
                ))
            }
        };
        let rate = if let Some(fit_s) = rate_s.strip_prefix("fit=") {
            let (fit_v, hours_v) = match fit_s.split_once('@') {
                Some((f, h)) => (f, Some(h)),
                None => (fit_s, None),
            };
            let fit: f64 = fit_v
                .parse()
                .map_err(|_| format!("--inject: bad FIT value '{fit_v}'"))?;
            let exposure_hours: f64 = match hours_v {
                Some(h) => h
                    .parse()
                    .map_err(|_| format!("--inject: bad exposure hours '{h}'"))?,
                None => 1.0,
            };
            if !fit.is_finite() || !exposure_hours.is_finite() {
                return Err("--inject: FIT rate and hours must be finite".into());
            }
            if fit < 0.0 || exposure_hours < 0.0 {
                return Err("--inject: FIT rate and hours must be non-negative".into());
            }
            FaultRate::FitPerGb {
                fit,
                exposure_hours,
            }
        } else {
            let p: f64 = rate_s
                .parse()
                .map_err(|_| format!("--inject: bad rate '{rate_s}'"))?;
            if !p.is_finite() {
                return Err(format!("--inject: rate '{rate_s}' must be finite"));
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--inject: rate {p} outside [0, 1]"));
            }
            FaultRate::PerAccess { p }
        };
        Ok(FaultConfig {
            pattern,
            rate,
            seed: 0,
        })
    }

    /// The same config with a different seed (per-cell derivation).
    pub fn with_seed(self, seed: u64) -> Self {
        FaultConfig { seed, ..self }
    }

    /// Canonical `<pattern>:<rate>` spec, accepted back by
    /// [`FaultConfig::parse`].
    ///
    /// Excludes the seed: per-cell seeds are derived from the run seed,
    /// which checkpoint fingerprints already cover. Two configs with the
    /// same canonical spec inject statistically identical faults, so
    /// this string is what resume fingerprints fold in.
    pub fn canonical_spec(&self) -> String {
        let pattern = match self.pattern {
            ErrorPattern::RandomBits { count: 1 } => "bit1",
            ErrorPattern::RandomBits { count: 2 } => "bit2",
            ErrorPattern::RandomBits { count: 3 } => "bit3",
            ErrorPattern::RandomBits { count } => {
                return format!("bit{count}:{}", self.canonical_rate())
            }
            ErrorPattern::AdjacentBurst { .. } => "burst4",
            ErrorPattern::SymbolError => "symbol",
            ErrorPattern::ChipLane { .. } => "chiplane",
        };
        format!("{pattern}:{}", self.canonical_rate())
    }

    fn canonical_rate(&self) -> String {
        match self.rate {
            FaultRate::PerAccess { p } => format!("{p:e}"),
            FaultRate::FitPerGb {
                fit,
                exposure_hours,
            } => format!("fit={fit:e}@{exposure_hours:e}"),
        }
    }
}

impl fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.rate.per_access_probability();
        write!(
            f,
            "{} @ {:.3e}/access (seed {})",
            self.pattern, p, self.seed
        )
    }
}

/// Which codec a protection scheme actually decodes reads with — the
/// injector runs its codeword trials through this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionCodec {
    /// No decode at all: every data fault is silent corruption.
    Unprotected,
    /// SEC-DED (72,64) per 8-byte word — the inline-ECC baseline codecs.
    SecDed64,
    /// RS(36,32) over GF(2^8) — symbol-correcting, chipkill-class.
    Rs36_32,
}

impl ProtectionCodec {
    fn build(self) -> Option<Box<dyn Codec>> {
        match self {
            ProtectionCodec::Unprotected => None,
            ProtectionCodec::SecDed64 => Some(Box::new(SecDed64::new())),
            ProtectionCodec::Rs36_32 => match ReedSolomon::new(36, 32) {
                Ok(c) => Some(Box::new(c)),
                Err(_) => unreachable!("RS(36,32) parameters are statically valid"),
            },
        }
    }
}

/// Classification of one injected fault after decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The fault did not corrupt consumed data and was not even observed
    /// (e.g. check-side flips the syndrome tolerates).
    Benign,
    /// Observed and corrected; data intact.
    Corrected,
    /// Detected uncorrectable error — data flagged, not consumed.
    Due,
    /// Silent data corruption: data wrong, decoder reported it usable.
    Sdc,
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Benign => "benign",
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::Due => "due",
            FaultOutcome::Sdc => "sdc",
        };
        f.write_str(s)
    }
}

/// One injected-fault event, for Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the faulty transaction was observed.
    pub cycle: Cycle,
    /// Channel the transaction issued on.
    pub channel: u16,
    /// Whether the fault hit a data or an ECC read.
    pub class: TrafficClass,
    /// Post-decode classification.
    pub outcome: FaultOutcome,
}

/// Aggregate in-situ injection counters, attached to
/// [`SimStats`](crate::stats::SimStats) when injection was configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// DRAM data-read transactions observed (fault-exposed).
    pub data_reads: u64,
    /// DRAM ECC-read transactions observed (fault-exposed).
    pub ecc_reads: u64,
    /// Faults injected (Bernoulli hits over all observed reads).
    pub injected: u64,
    /// Faults with no effect on consumed data and no decoder action.
    pub benign: u64,
    /// Faults corrected by the scheme's codec.
    pub corrected: u64,
    /// Detected uncorrectable errors.
    pub due: u64,
    /// Silent data corruptions.
    pub sdc: u64,
}

impl FaultStats {
    /// Faults the machine noticed (corrected or flagged).
    pub fn detected(&self) -> u64 {
        self.corrected + self.due
    }

    /// SDC fraction of injected faults (0 when nothing was injected).
    pub fn sdc_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.sdc as f64 / self.injected as f64
        }
    }
}

fn classify(outcome: DecodeOutcome, data_ok: bool) -> FaultOutcome {
    match outcome {
        DecodeOutcome::Clean => {
            if data_ok {
                FaultOutcome::Benign
            } else {
                FaultOutcome::Sdc
            }
        }
        DecodeOutcome::Corrected { .. } => {
            if data_ok {
                FaultOutcome::Corrected
            } else {
                FaultOutcome::Sdc
            }
        }
        DecodeOutcome::DetectedUncorrectable | DecodeOutcome::TagMismatch => FaultOutcome::Due,
    }
}

/// One codeword trial: encode random data, fault the exposed region
/// (data bytes for a data read, check bytes for an ECC read), decode, and
/// compare against ground truth.
fn codec_trial<R: Rng>(
    codec: &dyn Codec,
    injector: &Injector,
    class: TrafficClass,
    rng: &mut R,
) -> FaultOutcome {
    let k = codec.data_len();
    let original: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
    let check = codec.encode(&original);
    let mut data = original.clone();
    let mut check_stored = check;
    match class {
        TrafficClass::EccRead => {
            let _ = injector.apply(&mut check_stored, rng);
        }
        _ => {
            let _ = injector.apply(&mut data, rng);
        }
    }
    let outcome = codec.decode(&mut data, &check_stored);
    classify(outcome, data == original)
}

/// Samples faults over the DRAM read stream of a running simulation.
///
/// Constructed by the simulator when a [`FaultConfig`] is supplied; fed
/// per-cycle transaction deltas via [`observe`](FaultInjector::observe).
#[derive(Debug)]
pub struct FaultInjector {
    rng: SmallRng,
    injector: Injector,
    p: f64,
    codec: Option<Box<dyn Codec>>,
    stats: FaultStats,
    record_events: bool,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Creates an injector for one run under the given scheme codec.
    pub fn new(cfg: &FaultConfig, codec: ProtectionCodec) -> Self {
        FaultInjector {
            rng: SmallRng::seed_from_u64(cfg.seed),
            injector: Injector::new(cfg.pattern),
            p: cfg.rate.per_access_probability(),
            codec: codec.build(),
            stats: FaultStats::default(),
            record_events: false,
            events: Vec::new(),
        }
    }

    /// Enables per-fault event recording (for Chrome-trace export).
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Observes `n` DRAM read transactions of `class` on `channel` at
    /// cycle `now`, Bernoulli-sampling a fault for each. Classes other
    /// than [`TrafficClass::DataRead`] / [`TrafficClass::EccRead`] are
    /// ignored (writes overwrite any latent fault).
    pub fn observe(&mut self, class: TrafficClass, channel: u16, n: u64, now: Cycle) {
        match class {
            TrafficClass::DataRead => self.stats.data_reads += n,
            TrafficClass::EccRead => self.stats.ecc_reads += n,
            _ => return,
        }
        if self.p <= 0.0 {
            return;
        }
        for _ in 0..n {
            if !self.rng.gen_bool(self.p) {
                continue;
            }
            self.stats.injected += 1;
            let outcome = match &self.codec {
                // Unprotected reads have no decode step: a fault on a data
                // read is consumed as-is (SDC). ECC reads cannot occur.
                None => FaultOutcome::Sdc,
                Some(codec) => codec_trial(codec.as_ref(), &self.injector, class, &mut self.rng),
            };
            match outcome {
                FaultOutcome::Benign => self.stats.benign += 1,
                FaultOutcome::Corrected => self.stats.corrected += 1,
                FaultOutcome::Due => self.stats.due += 1,
                FaultOutcome::Sdc => self.stats.sdc += 1,
            }
            if self.record_events {
                self.events.push(FaultEvent {
                    cycle: now,
                    channel,
                    class,
                    outcome,
                });
            }
        }
    }

    /// Drains recorded fault events.
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_probability_and_fit_forms() {
        let c = FaultConfig::parse("symbol:1e-4").unwrap();
        assert_eq!(c.pattern, ErrorPattern::SymbolError);
        assert!(matches!(c.rate, FaultRate::PerAccess { p } if (p - 1e-4).abs() < 1e-18));

        let c = FaultConfig::parse("bit2:fit=5000").unwrap();
        assert_eq!(c.pattern, ErrorPattern::RandomBits { count: 2 });
        assert!(matches!(c.rate, FaultRate::FitPerGb { fit, exposure_hours }
                if fit == 5000.0 && exposure_hours == 1.0));

        let c = FaultConfig::parse("burst4:fit=100@24").unwrap();
        assert!(
            matches!(c.rate, FaultRate::FitPerGb { exposure_hours, .. } if exposure_hours == 24.0)
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "symbol",
            "nosuch:1e-6",
            "bit1:xyz",
            "bit1:2.0",
            "bit1:-0.5",
            "bit1:fit=abc",
            "bit1:fit=10@x",
            "bit1:fit=-1",
        ] {
            assert!(FaultConfig::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_non_finite_rates() {
        for bad in [
            "bit1:NaN",
            "bit1:nan",
            "bit1:inf",
            "bit1:-inf",
            "bit1:infinity",
            "bit1:fit=NaN",
            "bit1:fit=inf",
            "bit1:fit=10@NaN",
            "bit1:fit=10@inf",
        ] {
            let err = FaultConfig::parse(bad).expect_err(bad);
            assert!(err.contains("finite"), "wrong error for {bad:?}: {err}");
        }
    }

    #[test]
    fn canonical_spec_round_trips_and_omits_seed() {
        for spec in ["symbol:1e-4", "bit2:fit=5000", "burst4:fit=100@24"] {
            let c = FaultConfig::parse(spec).unwrap().with_seed(99);
            let canon = c.canonical_spec();
            let back = FaultConfig::parse(&canon).unwrap();
            assert_eq!(back.pattern, c.pattern, "{spec} -> {canon}");
            assert_eq!(back.rate, c.rate, "{spec} -> {canon}");
            // Seed does not leak into the spec.
            assert_eq!(canon, c.with_seed(0).canonical_spec());
        }
    }

    #[test]
    fn fit_rate_converts_to_tiny_probability() {
        let r = FaultRate::FitPerGb {
            fit: 1000.0,
            exposure_hours: 1.0,
        };
        let p = r.per_access_probability();
        let expected = 1000.0 * 1e-9 * (32.0 / (1u64 << 30) as f64);
        assert!((p - expected).abs() < 1e-24);
        // Absurd rates clamp instead of exceeding 1.
        let r = FaultRate::PerAccess { p: 7.0 };
        assert_eq!(r.per_access_probability(), 1.0);
    }

    #[test]
    fn rate_zero_injects_nothing() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 0.0 },
            seed: 1,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        fi.observe(TrafficClass::DataRead, 0, 10_000, 5);
        fi.observe(TrafficClass::EccRead, 1, 10_000, 6);
        let s = fi.stats();
        assert_eq!(s.data_reads, 10_000);
        assert_eq!(s.ecc_reads, 10_000);
        assert_eq!(s.injected, 0);
        assert_eq!(s.benign + s.corrected + s.due + s.sdc, 0);
    }

    #[test]
    fn rate_one_faults_every_read() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::RandomBits { count: 1 },
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 2,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        fi.observe(TrafficClass::DataRead, 0, 500, 1);
        let s = fi.stats();
        assert_eq!(s.injected, 500);
        // SEC-DED corrects every single-bit data fault.
        assert_eq!(s.corrected, 500);
        assert_eq!(s.sdc, 0);
        assert_eq!(s.due, 0);
    }

    #[test]
    fn unprotected_turns_data_faults_into_sdc() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 3,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::Unprotected);
        fi.observe(TrafficClass::DataRead, 0, 100, 1);
        let s = fi.stats();
        assert_eq!(s.injected, 100);
        assert_eq!(s.sdc, 100);
        assert_eq!(s.detected(), 0);
        assert_eq!(s.sdc_rate(), 1.0);
    }

    #[test]
    fn rs_corrects_symbol_faults_that_break_secded() {
        // A whole-symbol error overwhelms SEC-DED (DUE or SDC) but RS(36,32)
        // corrects it: the scheme-level contrast the under-load table shows.
        let cfg = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 4,
        };
        let mut rs = FaultInjector::new(&cfg, ProtectionCodec::Rs36_32);
        rs.observe(TrafficClass::DataRead, 0, 300, 1);
        let s = rs.stats();
        assert_eq!(s.injected, 300);
        assert_eq!(s.corrected, 300, "RS(36,32) corrects any one symbol");

        let mut sd = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        sd.observe(TrafficClass::DataRead, 0, 300, 1);
        let s = sd.stats();
        assert!(
            s.due + s.sdc > 0,
            "multi-bit symbol faults must defeat SEC-DED sometimes: {s:?}"
        );
    }

    #[test]
    fn ecc_read_faults_hit_check_bytes() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::RandomBits { count: 1 },
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 5,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        fi.observe(TrafficClass::EccRead, 0, 200, 1);
        let s = fi.stats();
        assert_eq!(s.injected, 200);
        // Check-side single-bit faults are observed and corrected (data
        // untouched), never SDC.
        assert_eq!(s.sdc, 0);
        assert_eq!(s.corrected + s.benign + s.due, 200);
    }

    #[test]
    fn writes_are_ignored() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 6,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        fi.observe(TrafficClass::DataWrite, 0, 100, 1);
        fi.observe(TrafficClass::EccWrite, 0, 100, 1);
        assert_eq!(fi.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_outcome_counts() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::RandomBits { count: 2 },
            rate: FaultRate::PerAccess { p: 0.05 },
            seed: 7,
        };
        let run = || {
            let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
            for cyc in 0..200 {
                fi.observe(TrafficClass::DataRead, (cyc % 4) as u16, 3, cyc);
            }
            fi.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_recorded_only_when_enabled() {
        let cfg = FaultConfig {
            pattern: ErrorPattern::RandomBits { count: 1 },
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 8,
        };
        let mut fi = FaultInjector::new(&cfg, ProtectionCodec::SecDed64);
        fi.observe(TrafficClass::DataRead, 2, 5, 17);
        assert!(fi.take_events().is_empty());
        fi.set_record_events(true);
        fi.observe(TrafficClass::DataRead, 2, 5, 18);
        let evs = fi.take_events();
        assert_eq!(evs.len(), 5);
        assert!(evs
            .iter()
            .all(|e| e.cycle == 18 && e.channel == 2 && e.class == TrafficClass::DataRead));
        assert!(fi.take_events().is_empty(), "take drains");
    }

    #[test]
    fn display_forms() {
        let c = FaultConfig::parse("symbol:1e-4").unwrap().with_seed(9);
        let s = c.to_string();
        assert!(s.contains("symbol") || s.contains("single-symbol"));
        assert!(s.contains("seed 9"));
        assert_eq!(FaultOutcome::Sdc.to_string(), "sdc");
    }
}
