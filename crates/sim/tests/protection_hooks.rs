//! Integration tests of the protection hook points through the public L2
//! API, using a mock scheme that exercises every hook: ECC fetches that
//! gate fills, buffered ECC writes drained with budget, and residency
//! queries during write-back planning.

use ccraft_sim::config::GpuConfig;
use ccraft_sim::dram::MapOrder;
use ccraft_sim::l2::L2Slice;
use ccraft_sim::msg::{L2Request, NO_L1_MSHR};
use ccraft_sim::protection::{FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan};
use ccraft_sim::types::{AccessKind, Cycle, LogicalAtom, PhysLoc, SmId, TrafficClass};
use std::collections::VecDeque;

/// A mock scheme: every fill needs one ECC fetch at `atom + ECC_BASE`;
/// every write-back buffers one ECC write, drained via the budgeted hook.
#[derive(Debug)]
struct MockScheme {
    pending: VecDeque<u64>,
    residency_answers: Vec<bool>,
    fills: u64,
    arrived: u64,
    writebacks: u64,
}

const ECC_BASE: u64 = 1 << 20;

impl MockScheme {
    fn new() -> Self {
        MockScheme {
            pending: VecDeque::new(),
            residency_answers: Vec::new(),
            fills: 0,
            arrived: 0,
            writebacks: 0,
        }
    }
}

impl ProtectionScheme for MockScheme {
    fn name(&self) -> &str {
        "mock"
    }
    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        PhysLoc::new(0, logical.0)
    }
    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        self.fills += 1;
        FillPlan {
            ecc_fetches: vec![ECC_BASE + loc.atom],
        }
    }
    fn ecc_arrived(&mut self, loc: PhysLoc, _now: Cycle) {
        assert!(loc.atom >= ECC_BASE, "non-ECC atom routed to ecc_arrived");
        self.arrived += 1;
    }
    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        self.writebacks += 1;
        // Probe residency of the atom itself (must be answerable).
        self.residency_answers.push(resident(loc.atom));
        self.pending.push_back(ECC_BASE + loc.atom);
        WritebackPlan::none()
    }
    fn drain_ecc_writes(&mut self, _channel: u16, _now: Cycle, budget: usize) -> Vec<u64> {
        let n = budget.min(self.pending.len());
        self.pending.drain(..n).collect()
    }
    fn flush(&mut self) {}
    fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
    fn stats(&self) -> ProtectionStats {
        ProtectionStats::default()
    }
}

fn run_until_idle(slice: &mut L2Slice, scheme: &mut MockScheme, start: Cycle) -> Cycle {
    let mut now = start;
    loop {
        slice.tick(scheme, now);
        let _ = slice.pop_responses(now);
        now += 1;
        if slice.is_idle() && scheme.is_drained() {
            return now;
        }
        assert!(now < 200_000, "livelock");
    }
}

fn read_req(atom: u64) -> L2Request {
    L2Request {
        loc: PhysLoc::new(0, atom),
        kind: AccessKind::Read,
        src: SmId(0),
        l1_mshr: 0,
    }
}

fn write_req(atom: u64) -> L2Request {
    L2Request {
        loc: PhysLoc::new(0, atom),
        kind: AccessKind::Write { full: true },
        src: SmId(0),
        l1_mshr: NO_L1_MSHR,
    }
}

#[test]
fn demand_fill_waits_for_ecc_piece() {
    let cfg = GpuConfig::tiny();
    let mut slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
    let mut scheme = MockScheme::new();
    slice.push(read_req(0));
    // Collect the response time; with an extra ECC fetch the fill cannot
    // complete before both DRAM reads are done.
    let mut responded_at = None;
    let mut now = 0;
    while responded_at.is_none() {
        slice.tick(&mut scheme, now);
        if !slice.pop_responses(now).is_empty() {
            responded_at = Some(now);
        }
        now += 1;
        assert!(now < 10_000, "no response");
    }
    assert_eq!(scheme.fills, 1);
    assert_eq!(
        scheme.arrived, 1,
        "ECC completion must be routed to the scheme"
    );
    let mc = slice.mc_stats();
    assert_eq!(mc.class_count(TrafficClass::DataRead), 1);
    assert_eq!(mc.class_count(TrafficClass::EccRead), 1);
    // Two sequential reads on one channel: strictly later than a single
    // read + L2 latency (tiny: ~11 + 8).
    assert!(
        responded_at.unwrap() > 19,
        "fill did not wait for the ECC piece"
    );
}

#[test]
fn buffered_ecc_writes_are_drained_with_budget() {
    let cfg = GpuConfig::tiny();
    let mut slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
    let mut scheme = MockScheme::new();
    // Dirty a few full atoms, then flush: write-backs buffer ECC writes in
    // the scheme, which the slice must drain to the controller.
    let mut now = 0;
    for i in 0..8u64 {
        slice.push(write_req(i));
        slice.tick(&mut scheme, now);
        now += 1;
    }
    let end = run_until_idle(&mut slice, &mut scheme, now);
    slice.flush_dirty(&mut scheme, end);
    let _ = run_until_idle(&mut slice, &mut scheme, end);
    assert_eq!(scheme.writebacks, 8);
    let mc = slice.mc_stats();
    assert_eq!(mc.class_count(TrafficClass::DataWrite), 8);
    assert_eq!(mc.class_count(TrafficClass::EccWrite), 8);
    assert_eq!(
        mc.class_count(TrafficClass::EccRead),
        0,
        "plan had no RMW reads"
    );
}

#[test]
fn residency_query_sees_co_evicted_atoms() {
    let cfg = GpuConfig::tiny();
    let mut slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
    let mut scheme = MockScheme::new();
    let mut now = 0;
    for i in 0..4u64 {
        slice.push(write_req(i));
        slice.tick(&mut scheme, now);
        now += 1;
    }
    let end = run_until_idle(&mut slice, &mut scheme, now);
    slice.flush_dirty(&mut scheme, end);
    let _ = run_until_idle(&mut slice, &mut scheme, end);
    // During flush the atom under write-back is still (or counted as)
    // resident for reconstruction purposes.
    assert_eq!(scheme.residency_answers.len(), 4);
    assert!(
        scheme.residency_answers.iter().all(|&r| r),
        "write-back atom not visible to the residency probe: {:?}",
        scheme.residency_answers
    );
}

#[test]
fn ecc_reads_share_queues_with_demand_traffic() {
    // With the mock scheme doubling every read, the controller must see
    // exactly 2x transactions and still drain.
    let cfg = GpuConfig::tiny();
    let mut slice = L2Slice::new(&cfg, 0, MapOrder::RoBaCo, 0);
    let mut scheme = MockScheme::new();
    let mut now = 0;
    for i in 0..16u64 {
        slice.push(read_req(i * 4));
        slice.tick(&mut scheme, now);
        now += 1;
    }
    let _ = run_until_idle(&mut slice, &mut scheme, now);
    let mc = slice.mc_stats();
    assert_eq!(mc.class_count(TrafficClass::DataRead), 16);
    assert_eq!(mc.class_count(TrafficClass::EccRead), 16);
}
