//! # ccraft-serve — persistent experiment service with a content-addressed result cache
//!
//! A warm daemon (`ccx serve`) that accepts sweep submissions over a
//! std-only HTTP API and answers them from a durable, content-addressed
//! cell result cache (`ccraft_harness::cellcache`). Cache hits skip
//! simulation entirely, so a repeated identical sweep costs O(changed
//! cells): the second submission of the same [`JobSpec`] re-simulates
//! nothing and returns byte-identical CSVs.
//!
//! ## API
//!
//! | Method | Path                 | Meaning                                     |
//! |--------|----------------------|---------------------------------------------|
//! | GET    | `/healthz`           | liveness probe (`ok`)                       |
//! | GET    | `/cache`             | cache counters + entry count (JSON)         |
//! | POST   | `/jobs`              | submit a [`JobSpec`] (JSON body) → job id   |
//! | GET    | `/jobs/<id>`         | job status summary (JSON)                   |
//! | GET    | `/jobs/<id>/events`  | per-cell progress log (JSON array; `?from=N` skips the first N) |
//! | GET    | `/jobs/<id>/manifest`| the job's `RunManifest` (JSON)              |
//! | GET    | `/jobs/<id>/csv`     | results CSV in durable encoding (crc32 footer; verify with `ccraft_harness::store`) |
//!
//! The listener reuses the `ccraft_harness::metrics` idiom — plain
//! `std::net::TcpListener`, one short-lived thread per connection, just
//! enough HTTP/1.1 for `curl` — because the vendored dependency set has
//! no HTTP crates. Each submitted job executes on its own thread through
//! the harness matrix engine with a cache-aware cell body, so many
//! clients can share one warm process.
//!
//! ## Cache keys
//!
//! A cell result is keyed by everything that determines it: scheme (with
//! full config), workload, machine, size, effective seed, canonical
//! inject spec, cargo feature flags, and the code version captured from
//! [`ccraft_telemetry::manifest::Provenance`] at daemon startup (see
//! `ccraft_harness::cellcache` for the digest definition). `sim_threads`
//! is excluded: results are bit-identical at every setting.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_harness::cellcache::{CellKey, ResultCache};
use ccraft_harness::report::Table;
use ccraft_harness::runner::{run_cell, run_matrix_cells_with_body, CellBody, CellRun};
use ccraft_harness::{CacheDisposition, CellOutcome, Error, ExpOptions};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::faults::FaultConfig;
use ccraft_telemetry::manifest::{CellManifest, Provenance, RunManifest};
use ccraft_workloads::{SizeClass, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Overrides the sweep seed for one `workload/scheme` cell, so a client
/// can re-run exactly one cell of an otherwise-cached sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedOverride {
    /// Workload short name.
    pub workload: String,
    /// Scheme short name.
    pub scheme: String,
    /// Seed for that cell.
    pub seed: u64,
}

/// One sweep submission: the JSON body of `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Workload names, or `["all"]`.
    #[serde(default)]
    pub workloads: Vec<String>,
    /// Scheme names, or `["all"]`.
    #[serde(default)]
    pub schemes: Vec<String>,
    /// Machine name (`gddr6` | `hbm2`).
    #[serde(default = "default_machine")]
    pub machine: String,
    /// Size class (`tiny` | `small` | `full`).
    #[serde(default = "default_size")]
    pub size: String,
    /// Base seed for every cell.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Fault-injection spec (e.g. `symbol:1e-6`), if any.
    #[serde(default)]
    pub inject: Option<String>,
    /// Shard count for simulated (non-injected) cells.
    #[serde(default = "default_seed_u32")]
    pub sim_threads: u32,
    /// Per-cell seed overrides.
    #[serde(default)]
    pub seed_overrides: Vec<SeedOverride>,
}

fn default_machine() -> String {
    "gddr6".to_string()
}
fn default_size() -> String {
    "small".to_string()
}
fn default_seed() -> u64 {
    1
}
fn default_seed_u32() -> u32 {
    1
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            workloads: vec!["all".to_string()],
            schemes: vec!["all".to_string()],
            machine: default_machine(),
            size: default_size(),
            seed: default_seed(),
            inject: None,
            sim_threads: 1,
            seed_overrides: Vec::new(),
        }
    }
}

/// Resolves a scheme short name against a machine config. Shared by the
/// daemon and the `ccx` front end so both accept the same vocabulary.
pub fn scheme_by_name(name: &str, cfg: &GpuConfig) -> Option<SchemeKind> {
    match name {
        "no-protection" | "off" => Some(SchemeKind::NoProtection),
        "inline-naive" | "naive" => Some(SchemeKind::InlineNaive { coverage: 8 }),
        "ecc-cache" => Some(SchemeKind::EccCache {
            coverage: 8,
            capacity_per_mc: 16 << 10,
        }),
        "cachecraft" => Some(SchemeKind::CacheCraft(CacheCraftConfig::for_machine(cfg))),
        _ => None,
    }
}

/// Resolves a machine name to its config.
pub fn machine_by_name(name: &str) -> Option<GpuConfig> {
    match name {
        "gddr6" => Some(GpuConfig::gddr6()),
        "hbm2" => Some(GpuConfig::hbm2()),
        _ => None,
    }
}

/// Resolves a size-class name.
pub fn size_by_name(name: &str) -> Option<SizeClass> {
    match name {
        "tiny" => Some(SizeClass::Tiny),
        "small" => Some(SizeClass::Small),
        "full" => Some(SizeClass::Full),
        _ => None,
    }
}

/// A resolved, validated job spec.
struct ResolvedSpec {
    cfg: GpuConfig,
    size: SizeClass,
    workloads: Vec<Workload>,
    schemes: Vec<SchemeKind>,
    inject: Option<FaultConfig>,
}

fn resolve_spec(spec: &JobSpec) -> Result<ResolvedSpec, Error> {
    let cfg = machine_by_name(&spec.machine)
        .ok_or_else(|| Error::Config(format!("unknown machine {:?}", spec.machine)))?;
    let size = size_by_name(&spec.size)
        .ok_or_else(|| Error::Config(format!("unknown size {:?}", spec.size)))?;
    let workloads: Vec<Workload> =
        if spec.workloads.is_empty() || spec.workloads.iter().any(|w| w == "all") {
            Workload::ALL.to_vec()
        } else {
            spec.workloads
                .iter()
                .map(|w| {
                    Workload::from_name(w)
                        .ok_or_else(|| Error::Config(format!("unknown workload {w:?}")))
                })
                .collect::<Result<_, _>>()?
        };
    let schemes: Vec<SchemeKind> =
        if spec.schemes.is_empty() || spec.schemes.iter().any(|s| s == "all") {
            SchemeKind::headline(&cfg).to_vec()
        } else {
            spec.schemes
                .iter()
                .map(|s| {
                    scheme_by_name(s, &cfg)
                        .ok_or_else(|| Error::Config(format!("unknown scheme {s:?}")))
                })
                .collect::<Result<_, _>>()?
        };
    let inject = match &spec.inject {
        None => None,
        Some(s) => Some(
            FaultConfig::parse(s)
                .map_err(Error::Config)?
                .with_seed(spec.seed),
        ),
    };
    Ok(ResolvedSpec {
        cfg,
        size,
        workloads,
        schemes,
        inject,
    })
}

/// Status summary of one job, as served by `GET /jobs/<id>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobView {
    /// Job id.
    pub id: String,
    /// `queued` | `running` | `done` | `failed`.
    pub status: String,
    /// Error message when `status == "failed"`.
    #[serde(default)]
    pub error: String,
    /// Total cells in the sweep.
    pub cells: u64,
    /// Cells served from the result cache.
    pub hits: u64,
    /// Cells that missed the cache.
    pub misses: u64,
    /// Cells actually simulated (cache misses + uncached failures).
    pub simulated: u64,
    /// Number of progress events so far.
    pub events: u64,
}

/// One job's full in-memory state.
#[derive(Debug)]
struct Job {
    view: JobView,
    events: Vec<String>,
    /// Durable-encoded CSV (crc32 footer included), ready for download.
    csv: Vec<u8>,
    manifest_json: String,
}

impl Job {
    fn new(id: String) -> Job {
        Job {
            view: JobView {
                id,
                status: "queued".to_string(),
                error: String::new(),
                cells: 0,
                hits: 0,
                misses: 0,
                simulated: 0,
                events: 0,
            },
            events: Vec::new(),
            csv: Vec::new(),
            manifest_json: String::new(),
        }
    }

    fn push_event(&mut self, line: String) {
        self.events.push(line);
        self.view.events = self.events.len() as u64;
    }
}

/// Shared daemon state: the cache, the job table, and the provenance
/// captured once at startup (every cell key embeds it).
#[derive(Debug)]
pub struct ServeState {
    cache: ResultCache,
    jobs: Mutex<BTreeMap<String, Arc<Mutex<Job>>>>,
    next_job: AtomicU64,
    code_version: String,
    features: Vec<String>,
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ServeState {
    /// Opens the cache directory and captures code-version provenance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the cache directory cannot be opened.
    pub fn open(cache_dir: &std::path::Path) -> Result<Arc<ServeState>, Error> {
        let prov = Provenance::capture();
        let mut features = Vec::new();
        if cfg!(feature = "check-invariants") {
            features.push("check-invariants".to_string());
        }
        Ok(Arc::new(ServeState {
            cache: ResultCache::open(cache_dir)?,
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(1),
            code_version: format!("{} @ {}", prov.rustc, prov.git_commit),
            features,
        }))
    }

    /// The result cache (for tests and the `/cache` endpoint).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Submits a job: validates the spec, registers it, and spawns its
    /// executor thread. Returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the spec does not resolve (unknown
    /// workload/scheme/machine/size or malformed inject spec).
    pub fn submit(self: &Arc<Self>, spec: JobSpec) -> Result<String, Error> {
        // Resolve eagerly so a bad spec fails the POST, not the job.
        let resolved = resolve_spec(&spec)?;
        let id = format!("job-{}", self.next_job.fetch_add(1, Ordering::Relaxed));
        let job = Arc::new(Mutex::new(Job::new(id.clone())));
        lock_clean(&job).view.cells = (resolved.workloads.len() * resolved.schemes.len()) as u64;
        lock_clean(&self.jobs).insert(id.clone(), Arc::clone(&job));
        let state = Arc::clone(self);
        let thread_job = Arc::clone(&job);
        let spawned = std::thread::Builder::new()
            .name(format!("ccraft-{id}"))
            .spawn(move || state.execute(&thread_job, &spec, resolved));
        if let Err(e) = spawned {
            let mut j = lock_clean(&job);
            j.view.status = "failed".to_string();
            j.view.error = format!("failed to spawn executor: {e}");
        }
        Ok(id)
    }

    /// Looks a job up by id.
    fn job(&self, id: &str) -> Option<Arc<Mutex<Job>>> {
        lock_clean(&self.jobs).get(id).cloned()
    }

    /// The cache key for one cell of a job.
    fn cell_key(
        &self,
        spec: &JobSpec,
        scheme: SchemeKind,
        workload: Workload,
        seed: u64,
    ) -> CellKey {
        CellKey {
            scheme: format!("{scheme:?}"),
            workload: workload.name().to_string(),
            machine: spec.machine.clone(),
            size: spec.size.clone(),
            seed,
            inject: spec
                .inject
                .as_deref()
                .and_then(|s| FaultConfig::parse(s).ok())
                .map_or_else(|| "none".to_string(), |fc| fc.canonical_spec()),
            features: self.features.clone(),
            code_version: self.code_version.clone(),
        }
    }

    /// Runs one job to completion on the calling thread.
    fn execute(self: Arc<Self>, job: &Arc<Mutex<Job>>, spec: &JobSpec, resolved: ResolvedSpec) {
        {
            let mut j = lock_clean(job);
            j.view.status = "running".to_string();
            j.push_event(format!(
                "job started: {} workloads x {} schemes, size {}, seed {}",
                resolved.workloads.len(),
                resolved.schemes.len(),
                spec.size,
                spec.seed
            ));
        }
        let base_opts = ExpOptions {
            size: resolved.size,
            seed: spec.seed,
            threads: 1,
            sim_threads: spec.sim_threads.max(1),
            inject: resolved.inject,
            ..ExpOptions::default()
        };
        let state = Arc::clone(&self);
        let body_job = Arc::clone(job);
        let body_spec = spec.clone();
        let cfg = resolved.cfg;
        let body: Arc<CellBody> = Arc::new(move |_, workload, scheme| {
            state.run_cached_cell(&body_job, &body_spec, &cfg, &base_opts, workload, scheme)
        });
        let outcomes =
            run_matrix_cells_with_body(&resolved.workloads, &resolved.schemes, &base_opts, body);

        let mut j = lock_clean(job);
        for o in &outcomes {
            match o.cache {
                CacheDisposition::Hit => j.view.hits += 1,
                CacheDisposition::Miss => j.view.misses += 1,
                CacheDisposition::Uncached => {}
            }
        }
        // Misses simulated successfully + failures that consumed attempts.
        j.view.simulated = outcomes
            .iter()
            .filter(|o| o.cache != CacheDisposition::Hit && o.attempts > 0)
            .count() as u64;
        let failed: Vec<&CellOutcome> = outcomes.iter().filter(|o| !o.status.is_ok()).collect();
        j.csv = ccraft_harness::store::encode(job_csv(&outcomes).as_bytes());
        j.manifest_json = job_manifest_json(self.as_ref(), spec, &outcomes);
        if failed.is_empty() {
            j.view.status = "done".to_string();
        } else {
            j.view.status = "failed".to_string();
            j.view.error = format!(
                "{} cell(s) failed: {}",
                failed.len(),
                failed
                    .iter()
                    .map(|o| o.cell_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let line = format!(
            "job finished: cells={} hits={} misses={} simulated={} status={}",
            j.view.cells, j.view.hits, j.view.misses, j.view.simulated, j.view.status
        );
        j.push_event(line);
    }

    /// The cache-aware cell body: lookup → hit, else simulate + insert.
    fn run_cached_cell(
        &self,
        job: &Arc<Mutex<Job>>,
        spec: &JobSpec,
        cfg: &GpuConfig,
        base_opts: &ExpOptions,
        workload: Workload,
        scheme: SchemeKind,
    ) -> CellRun {
        let cell = format!("{}/{}", workload.name(), scheme.name());
        let seed = spec
            .seed_overrides
            .iter()
            .find(|o| o.workload == workload.name() && o.scheme == scheme.name())
            .map_or(spec.seed, |o| o.seed);
        let key = self.cell_key(spec, scheme, workload, seed);
        if let Some(entry) = self.cache.lookup(&key) {
            lock_clean(job).push_event(format!("cell {cell}: cache hit ({})", key.digest()));
            return CellRun {
                stats: entry.stats,
                sim_threads: entry.sim_threads,
                cache: CacheDisposition::Hit,
            };
        }
        lock_clean(job).push_event(format!("cell {cell}: cache miss, simulating"));
        let cell_opts = ExpOptions { seed, ..*base_opts };
        // The injection seed derives from the cell index; use a stable
        // per-identity index so the result is independent of the sweep's
        // shape (the cache key must fully determine the result).
        let idx = stable_cell_index(&cell);
        let mut run = run_cell(cfg, &cell_opts, idx, workload, scheme);
        run.cache = CacheDisposition::Miss;
        if let Err(e) = self.cache.insert(&key, &run.stats, run.sim_threads) {
            lock_clean(job).push_event(format!("cell {cell}: cache insert failed: {e}"));
        } else {
            lock_clean(job).push_event(format!("cell {cell}: simulated and cached"));
        }
        run
    }
}

/// FNV-1a of the cell identity, used as a stable per-cell index for
/// injection seed derivation (independent of matrix position).
fn stable_cell_index(cell: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in cell.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

/// Renders a deterministic results CSV over the sweep's successful cells.
fn job_csv(outcomes: &[CellOutcome]) -> String {
    let mut table = Table::new(vec![
        "workload",
        "scheme",
        "cycles",
        "exec_cycles",
        "ipc",
        "l2_hit_rate",
        "row_hit_rate",
        "dram_bytes",
        "mean_read_latency",
        "cache",
    ]);
    for o in outcomes {
        let Some(stats) = &o.stats else { continue };
        table.row(vec![
            o.workload.name().to_string(),
            o.scheme.name().to_string(),
            stats.cycles.to_string(),
            stats.exec_cycles.to_string(),
            format!("{:.6}", stats.ipc()),
            format!("{:.6}", stats.l2_hit_rate()),
            format!("{:.6}", stats.row_hit_rate()),
            stats.dram_bytes().to_string(),
            format!("{:.4}", stats.mean_read_latency),
            o.cache.as_str().to_string(),
        ]);
    }
    table.to_csv()
}

/// Builds the job's manifest JSON: per-cell cache disposition and
/// effective `sim_threads`, plus the sweep parameters.
fn job_manifest_json(state: &ServeState, spec: &JobSpec, outcomes: &[CellOutcome]) -> String {
    let mut manifest = RunManifest::new("ccraft-serve");
    for f in &state.features {
        manifest.provenance.features.push(f.clone());
    }
    manifest.size = spec.size.clone();
    manifest.seed = spec.seed;
    manifest.threads = 1;
    manifest.sim_threads = spec.sim_threads.max(1);
    for o in outcomes {
        let status = match &o.status {
            s if s.is_ok() => "ok".to_string(),
            ccraft_harness::CellStatus::TimedOut { .. } => "timeout".to_string(),
            _ => "failed".to_string(),
        };
        manifest.record_cell(CellManifest {
            cell: o.cell_name(),
            sim_threads: o.sim_threads,
            cache: o.cache.as_str().to_string(),
            status,
        });
    }
    manifest.note("cache_entries", state.cache.len() as f64);
    manifest.stamp();
    serde_json::to_string_pretty(&manifest).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

// ---------------------------------------------------------------------
// The HTTP listener (same idiom as `ccraft_harness::metrics`).

/// A running `ccraft-serve` daemon; dropping (or [`Server::shutdown`])
/// stops the listener thread. Job executor threads run to completion
/// independently.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port) and serves `state` until
    /// shutdown.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the listener cannot bind.
    pub fn bind(addr: &str, state: Arc<ServeState>) -> Result<Server, Error> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::io("resolving bound address".to_string(), e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let conn_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("ccraft-serve".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let state = Arc::clone(&conn_state);
                        let _ = std::thread::Builder::new()
                            .name("ccraft-serve-conn".to_string())
                            .spawn(move || serve_connection(stream, &state));
                    }
                }
            })
            .map_err(|e| Error::io("spawning listener thread".to_string(), e))?;
        Ok(Server {
            addr: local,
            stop,
            handle: Some(handle),
            state,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops the listener thread and waits for it.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

/// Reads one HTTP/1.1 request head (+ `Content-Length` body) from
/// `stream`. Returns `(method, path, body)`.
fn read_request(stream: &mut TcpStream) -> Option<(String, String, Vec<u8>)> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 1 << 20 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.lines();
    let mut request = lines.next()?.split_whitespace();
    let method = request.next()?.to_string();
    let path = request.next()?.to_string();
    let content_length: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if content_length > 1 << 24 {
        return None;
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    body.truncate(content_length);
    Some((method, path, body))
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
}

fn respond_json(stream: &mut TcpStream, status: &str, body: String) {
    respond(stream, status, "application/json", body.as_bytes());
}

/// Routes one connection.
fn serve_connection(mut stream: TcpStream, state: &Arc<ServeState>) {
    let Some((method, path, body)) = read_request(&mut stream) else {
        return;
    };
    // Strip a query string; only /events uses one.
    let (route, query) = path.split_once('?').unwrap_or((path.as_str(), ""));
    match (method.as_str(), route) {
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", b"ok\n"),
        ("GET", "/cache") => {
            let c = state.cache().counters();
            let json = serde_json::to_string_pretty(&c).unwrap_or_default();
            // counters() has no entry count; splice it in as a sibling.
            let json = json.replacen(
                '{',
                &format!("{{\n  \"entries\": {},", state.cache().len()),
                1,
            );
            respond_json(&mut stream, "200 OK", json);
        }
        ("POST", "/jobs") => {
            let spec: JobSpec = match serde_json::from_str(&String::from_utf8_lossy(&body)) {
                Ok(s) => s,
                Err(e) => {
                    return respond_json(
                        &mut stream,
                        "400 Bad Request",
                        format!("{{\"error\":\"bad job spec: {e}\"}}"),
                    )
                }
            };
            match state.submit(spec) {
                Ok(id) => respond_json(&mut stream, "200 OK", format!("{{\"job\":\"{id}\"}}")),
                Err(e) => respond_json(
                    &mut stream,
                    "400 Bad Request",
                    format!("{{\"error\":\"{e}\"}}"),
                ),
            }
        }
        ("GET", route) if route.starts_with("/jobs/") => {
            let rest = &route["/jobs/".len()..];
            let (id, sub) = rest.split_once('/').unwrap_or((rest, ""));
            let Some(job) = state.job(id) else {
                return respond_json(
                    &mut stream,
                    "404 Not Found",
                    "{\"error\":\"no such job\"}".to_string(),
                );
            };
            let j = lock_clean(&job);
            match sub {
                "" => {
                    let json = serde_json::to_string_pretty(&j.view).unwrap_or_default();
                    respond_json(&mut stream, "200 OK", json);
                }
                "events" => {
                    let from: usize = query
                        .split('&')
                        .filter_map(|kv| kv.split_once('='))
                        .find(|(k, _)| *k == "from")
                        .and_then(|(_, v)| v.parse().ok())
                        .unwrap_or(0);
                    let slice: Vec<String> = j.events.iter().skip(from).cloned().collect();
                    let json = serde_json::to_string_pretty(&slice).unwrap_or_default();
                    respond_json(&mut stream, "200 OK", json);
                }
                "manifest" => {
                    if j.manifest_json.is_empty() {
                        respond_json(
                            &mut stream,
                            "404 Not Found",
                            "{\"error\":\"job not finished\"}".to_string(),
                        );
                    } else {
                        respond_json(&mut stream, "200 OK", j.manifest_json.clone());
                    }
                }
                "csv" => {
                    if j.csv.is_empty() {
                        respond_json(
                            &mut stream,
                            "404 Not Found",
                            "{\"error\":\"job not finished\"}".to_string(),
                        );
                    } else {
                        respond(&mut stream, "200 OK", "text/csv", &j.csv);
                    }
                }
                _ => respond_json(
                    &mut stream,
                    "404 Not Found",
                    "{\"error\":\"not found\"}".to_string(),
                ),
            }
        }
        _ => respond_json(
            &mut stream,
            "404 Not Found",
            "{\"error\":\"not found\"}".to_string(),
        ),
    }
}

// ---------------------------------------------------------------------
// Client side (used by `ccx submit` and the e2e tests).

/// Sends one HTTP request and returns `(status code, body bytes)`.
///
/// # Errors
///
/// Returns [`Error::Io`] on connection failures and [`Error::Config`]
/// on malformed responses.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Vec<u8>), Error> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| Error::io(format!("connecting to {addr}"), e))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| Error::io(format!("sending {method} {path}"), e))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| Error::io(format!("reading {method} {path} response"), e))?;
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| Error::Config(format!("malformed response to {method} {path}")))?;
    let head = String::from_utf8_lossy(&response[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Config(format!("no status line in response to {method} {path}")))?;
    Ok((status, response[header_end + 4..].to_vec()))
}

/// Submits `spec` to a daemon at `addr` and returns the job id.
///
/// # Errors
///
/// Propagates transport errors; [`Error::Config`] when the daemon
/// rejects the spec.
pub fn submit_job(addr: &str, spec: &JobSpec) -> Result<String, Error> {
    let body = serde_json::to_string(spec)
        .map_err(|e| Error::Config(format!("serializing job spec: {e}")))?;
    let (status, response) = http_request(addr, "POST", "/jobs", Some(body.as_bytes()))?;
    let text = String::from_utf8_lossy(&response).to_string();
    if status != 200 {
        return Err(Error::Config(format!("submit rejected ({status}): {text}")));
    }
    #[derive(Deserialize)]
    struct SubmitResponse {
        #[serde(default)]
        job: String,
    }
    let value: SubmitResponse = serde_json::from_str(&text)
        .map_err(|e| Error::Config(format!("malformed submit response: {e}")))?;
    if value.job.is_empty() {
        return Err(Error::Config(format!(
            "submit response missing job id: {text}"
        )));
    }
    Ok(value.job)
}

/// Polls `GET /jobs/<id>` until the job leaves `queued`/`running`,
/// printing progress events as they appear when `progress` is set.
///
/// # Errors
///
/// Propagates transport errors; [`Error::Config`] on malformed status.
pub fn wait_for_job(addr: &str, id: &str, progress: bool) -> Result<JobView, Error> {
    let mut seen = 0usize;
    loop {
        if progress {
            let (status, body) =
                http_request(addr, "GET", &format!("/jobs/{id}/events?from={seen}"), None)?;
            if status == 200 {
                if let Ok(events) =
                    serde_json::from_str::<Vec<String>>(&String::from_utf8_lossy(&body))
                {
                    for e in &events {
                        eprintln!("  {e}");
                    }
                    seen += events.len();
                }
            }
        }
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(Error::Config(format!(
                "job {id} vanished ({status}): {}",
                String::from_utf8_lossy(&body)
            )));
        }
        let view: JobView = serde_json::from_str(&String::from_utf8_lossy(&body))
            .map_err(|e| Error::Config(format!("malformed job status: {e}")))?;
        if view.status != "queued" && view.status != "running" {
            return Ok(view);
        }
        // lint: allow(wall-clock) reason=client-side poll interval while waiting on the daemon; host-side only, never inside simulated time
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Downloads and checksum-verifies a finished job's CSV. Returns the
/// *decoded* payload (footer stripped) plus the raw durable bytes.
///
/// # Errors
///
/// [`Error::Corrupt`] when the footer is missing or does not verify;
/// transport errors otherwise.
pub fn fetch_csv(addr: &str, id: &str) -> Result<(Vec<u8>, Vec<u8>), Error> {
    let (status, raw) = http_request(addr, "GET", &format!("/jobs/{id}/csv"), None)?;
    if status != 200 {
        return Err(Error::Config(format!(
            "csv download failed ({status}): {}",
            String::from_utf8_lossy(&raw)
        )));
    }
    let payload = ccraft_harness::store::strip_footer(&raw);
    if payload.len() == raw.len() {
        return Err(Error::corrupt(
            format!("/jobs/{id}/csv"),
            "durable checksum footer missing".to_string(),
        ));
    }
    let expected = ccraft_harness::store::footer_for(payload);
    if !raw.ends_with(expected.as_bytes()) {
        return Err(Error::corrupt(
            format!("/jobs/{id}/csv"),
            "crc32 footer mismatch".to_string(),
        ));
    }
    Ok((payload.to_vec(), raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccraft-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> JobSpec {
        JobSpec {
            workloads: vec!["vecadd".to_string(), "saxpy".to_string()],
            schemes: vec!["no-protection".to_string(), "cachecraft".to_string()],
            machine: "gddr6".to_string(),
            size: "tiny".to_string(),
            seed: 1,
            inject: None,
            sim_threads: 1,
            seed_overrides: Vec::new(),
        }
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let mut spec = tiny_spec();
        spec.inject = Some("symbol:1e-6".to_string());
        spec.seed_overrides.push(SeedOverride {
            workload: "vecadd".to_string(),
            scheme: "cachecraft".to_string(),
            seed: 9,
        });
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
        // Defaults fill an empty body.
        let sparse: JobSpec = serde_json::from_str("{}").expect("defaults");
        assert_eq!(sparse.machine, "gddr6");
        assert_eq!(sparse.seed, 1);
        assert!(sparse.inject.is_none());
    }

    #[test]
    fn bad_specs_fail_submit_eagerly() {
        let dir = temp_cache("badspec");
        let state = ServeState::open(&dir).expect("open state");
        let bad = JobSpec {
            workloads: vec!["nosuch".to_string()],
            ..tiny_spec()
        };
        assert!(state.submit(bad).is_err());
        let bad = JobSpec {
            machine: "pcie".to_string(),
            ..tiny_spec()
        };
        assert!(state.submit(bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmitted_sweep_is_fully_cached_and_byte_identical() {
        let dir = temp_cache("resubmit");
        let state = ServeState::open(&dir).expect("open state");
        let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.addr().to_string();

        let id1 = submit_job(&addr, &tiny_spec()).expect("submit 1");
        let v1 = wait_for_job(&addr, &id1, false).expect("wait 1");
        assert_eq!(v1.status, "done", "{v1:?}");
        assert_eq!(v1.cells, 4);
        assert_eq!(v1.hits, 0);
        assert_eq!(v1.misses, 4);
        assert_eq!(v1.simulated, 4);
        let (csv1, raw1) = fetch_csv(&addr, &id1).expect("csv 1");
        assert!(csv1.starts_with(b"workload,scheme,"), "csv header present");

        // The identical sweep again: zero cells re-simulated, CSV
        // byte-identical (modulo the per-cell cache column flipping from
        // miss to hit — so compare the durable payloads with that column
        // normalized out... no: the cache column is provenance, so the
        // raw payloads differ there by design; assert the *data* columns
        // match byte-for-byte instead).
        let id2 = submit_job(&addr, &tiny_spec()).expect("submit 2");
        let v2 = wait_for_job(&addr, &id2, false).expect("wait 2");
        assert_eq!(v2.status, "done", "{v2:?}");
        assert_eq!(v2.hits, 4);
        assert_eq!(v2.misses, 0);
        assert_eq!(v2.simulated, 0, "nothing re-simulated");
        let (csv2, _raw2) = fetch_csv(&addr, &id2).expect("csv 2");
        let strip_cache = |b: &[u8]| {
            String::from_utf8_lossy(b)
                .lines()
                .map(|l| {
                    l.rsplit_once(',')
                        .map_or_else(|| l.to_string(), |(d, _)| d.to_string())
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip_cache(&csv1),
            strip_cache(&csv2),
            "cached sweep returns byte-identical data"
        );
        assert!(!raw1.is_empty());

        // Changing one cell's seed re-runs exactly that cell.
        let mut spec3 = tiny_spec();
        spec3.seed_overrides.push(SeedOverride {
            workload: "saxpy".to_string(),
            scheme: "cachecraft".to_string(),
            seed: 2,
        });
        let id3 = submit_job(&addr, &spec3).expect("submit 3");
        let v3 = wait_for_job(&addr, &id3, false).expect("wait 3");
        assert_eq!(v3.status, "done", "{v3:?}");
        assert_eq!(v3.hits, 3, "three cells still cached");
        assert_eq!(v3.misses, 1, "exactly the overridden cell missed");
        assert_eq!(v3.simulated, 1);

        // The manifest records per-cell dispositions.
        let (status, manifest) =
            http_request(&addr, "GET", &format!("/jobs/{id2}/manifest"), None).expect("manifest");
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&manifest).to_string();
        assert!(text.contains("\"cache\": \"hit\""), "{text}");

        // /cache reflects the traffic.
        let (status, cache) = http_request(&addr, "GET", "/cache", None).expect("cache");
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&cache).to_string();
        assert!(text.contains("\"entries\": 5"), "{text}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_surface_serves_health_events_and_404s() {
        let dir = temp_cache("http");
        let state = ServeState::open(&dir).expect("open state");
        let server = Server::bind("127.0.0.1:0", state).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = http_request(&addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
        let (status, _) = http_request(&addr, "GET", "/jobs/nope", None).expect("missing job");
        assert_eq!(status, 404);
        let (status, _) = http_request(&addr, "GET", "/bogus", None).expect("bogus route");
        assert_eq!(status, 404);
        let (status, body) = http_request(&addr, "POST", "/jobs", Some(b"{\"machine\":\"pcie\"}"))
            .expect("bad spec");
        assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

        // Events stream incrementally with ?from=.
        let spec = JobSpec {
            workloads: vec!["vecadd".to_string()],
            schemes: vec!["no-protection".to_string()],
            ..tiny_spec()
        };
        let id = submit_job(&addr, &spec).expect("submit");
        let v = wait_for_job(&addr, &id, false).expect("wait");
        assert_eq!(v.status, "done");
        let (status, body) =
            http_request(&addr, "GET", &format!("/jobs/{id}/events"), None).expect("events");
        assert_eq!(status, 200);
        let events: Vec<String> =
            serde_json::from_str(&String::from_utf8_lossy(&body)).expect("events json");
        assert!(events.len() >= 3, "{events:?}");
        assert!(
            events.iter().any(|e| e.contains("cache miss")),
            "{events:?}"
        );
        let (status, body) = http_request(
            &addr,
            "GET",
            &format!("/jobs/{id}/events?from={}", events.len()),
            None,
        )
        .expect("events tail");
        assert_eq!(status, 200);
        let tail: Vec<String> =
            serde_json::from_str(&String::from_utf8_lossy(&body)).expect("tail json");
        assert!(tail.is_empty(), "{tail:?}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_sweeps_cache_and_replay_deterministically() {
        let dir = temp_cache("inject");
        let state = ServeState::open(&dir).expect("open state");
        let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.addr().to_string();
        let spec = JobSpec {
            workloads: vec!["vecadd".to_string()],
            schemes: vec!["no-protection".to_string(), "cachecraft".to_string()],
            inject: Some("symbol:1.0".to_string()),
            ..tiny_spec()
        };
        let id1 = submit_job(&addr, &spec).expect("submit 1");
        let v1 = wait_for_job(&addr, &id1, false).expect("wait 1");
        assert_eq!(v1.status, "done", "{v1:?}");
        assert_eq!(v1.misses, 2);
        let id2 = submit_job(&addr, &spec).expect("submit 2");
        let v2 = wait_for_job(&addr, &id2, false).expect("wait 2");
        assert_eq!(v2.hits, 2, "injected cells are cacheable too");
        assert_eq!(v2.simulated, 0);
        // An injected sweep differs from the fault-free one in the key.
        let clean = JobSpec {
            inject: None,
            ..spec.clone()
        };
        let id3 = submit_job(&addr, &clean).expect("submit 3");
        let v3 = wait_for_job(&addr, &id3, false).expect("wait 3");
        assert_eq!(v3.misses, 2, "inject spec reaches the cache key");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
