//! `ccx` — the CacheCraft command-line driver.
//!
//! A user-facing front end over the library for one-off simulations,
//! without writing Rust:
//!
//! ```text
//! ccx list                               # workloads, schemes, machines
//! ccx run --workload spmv --scheme cachecraft --size small
//! ccx run --workload triad --scheme all --machine hbm2 --energy
//! ccx reliability --codec rs36 --pattern symbol --trials 5000
//! ccx serve --addr 127.0.0.1:8077 &
//! ccx submit --workload all --scheme all --size tiny
//! ```

use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, run_scheme_exec, SchemeKind};
use ccraft_core::reliability::{Campaign, CodecKind};
use ccraft_ecc::inject::ErrorPattern;
use ccraft_harness::perfdiff::{self, DiffOptions};
use ccraft_harness::report::{results_dir, write_manifest};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::energy::EnergyModel;
use ccraft_telemetry::chrome_trace::ChromeTrace;
use ccraft_telemetry::manifest::RunManifest;
use ccraft_telemetry::profiler::{CellProfile, ProfileReport};
use ccraft_telemetry::TelemetryConfig;
use ccraft_workloads::{SizeClass, Workload};
use serde::{Serialize, Value};
use std::process::ExitCode;

const USAGE: &str = "\
ccx — CacheCraft simulator driver

USAGE:
  ccx list
  ccx run --workload <name|all> [--scheme <name|all>] [--size tiny|small|full]
          [--machine gddr6|hbm2] [--seed N] [--energy] [--sim-threads N]
          [--inject <pattern>:<rate>]
          [--hist] [--timeline <file>] [--trace <file>] [--profile]
  ccx reliability [--codec <secded|rs36|rs18|crc32|tagged4>]
                  [--pattern <bit1|bit2|bit3|burst4|symbol|chiplane>] [--trials N] [--seed N]
  ccx perf-diff <run-dir-A> <run-dir-B> [--threshold-pct P] [--hit-threshold-pts P]
                [--min-wall-delta SECS] [--bench-a FILE] [--bench-b FILE] [--force]
  ccx chaos-soak <exp-name> [--size smoke|tiny|small|full] [--seed N] [--threads N]
                 [--sim-threads N] [--chaos <spec>] [--kills N] [--max-attempts N]
                 [--exe PATH]
  ccx serve [--addr HOST:PORT] [--cache-dir DIR]
  ccx submit [--addr HOST:PORT] [--workload <name,...|all>] [--scheme <name,...|all>]
             [--size tiny|small|full] [--machine gddr6|hbm2] [--seed N]
             [--inject <pattern>:<rate>] [--sim-threads N]
             [--override-seed <workload>/<scheme>:<seed>]...
             [--csv-out FILE] [--manifest-out FILE]

EXPERIMENT SERVICE (ccx serve / ccx submit):
  `ccx serve` starts a persistent daemon with a content-addressed result
  cache (default results/cellcache): every cell result is keyed by scheme,
  workload, machine, size, seed, inject spec, feature flags and code
  version, and stored durably with a crc32 footer. `ccx submit` sends a
  sweep to the daemon; cells already in the cache are served without
  simulation, so resubmitting an identical sweep re-simulates nothing and
  returns byte-identical data. --override-seed re-runs exactly one cell.
  submit prints a greppable summary line: cells=N hits=N misses=N
  simulated=N.

SHARDED SIMULATION (--sim-threads):
  --sim-threads N    shard each simulation's cycle loop across N threads by
                     memory channel. Statistics are bit-identical to
                     --sim-threads 1; only wall-clock changes, so the value
                     is recorded in manifest.json and perf-diff refuses
                     mixed-sim_threads wall comparisons without --force.
                     Telemetry (--hist/--timeline/--trace) and --inject
                     fall back to the single-threaded loop.

CHAOS SOAK (ccx chaos-soak):
  Verifies crash/fault recovery end to end: runs <exp-name> (e.g.
  exp-main) once fault-free as a golden reference, then again with I/O
  faults injected via CCRAFT_CHAOS (--chaos, e.g.
  \"seed=7,eio=0.05,torn=0.05,flip=0.02\"), SIGKILLed at seeded points
  and resumed with --resume until it completes. Exits 0 only when every
  reference CSV comes back byte-identical and checksum-valid from the
  chaos run. --size smoke is an alias for tiny. A chaos spec of
  probabilities 0 (the default) degenerates to a pure kill/resume soak.

PERF DIFF (ccx perf-diff):
  Joins each run directory's manifest.json, profile.json (from --profile)
  and newest BENCH_*.json (from scripts/bench_smoke), prints a regression
  table, and exits 1 when run B regressed past the thresholds (0 clean,
  2 unusable or incomparable inputs). Runs must match on experiment,
  size, seed and feature flags unless --force is given.

FAULT INJECTION (ccx run):
  --inject <pattern>:<rate>  expose DRAM reads to in-situ faults while the
                     simulation runs: pattern is bit1|bit2|bit3|burst4|
                     symbol|chiplane, rate is a per-access probability
                     (e.g. symbol:1e-6) or FIT-style (bit2:fit=5000@24 =
                     5000 FIT/GB for a 24-hour exposure). Decode outcomes
                     (benign/corrected/DUE/SDC) go through each scheme's
                     stored codec and are reported per cell. Injection is
                     observational: timing and traffic are unchanged.

TELEMETRY (ccx run):
  --profile          self-profile the simulator: host wall-time per component,
                     idle/sleep memo hit rates, FR-FCFS scan depths and a
                     per-channel load table, written to results/profile.json
  --hist             print read-latency percentiles (p50/p90/p99/max) per cell
  --timeline <file>  write every cell's epoch time-series as JSON
  --trace <file>     write a Chrome/Perfetto trace (open in chrome://tracing
                     or ui.perfetto.dev); with multiple cells the trace
                     covers the last cell run
  Every `ccx run` also writes results/manifest.json describing the run.
  Telemetry is passive: --energy reports identical numbers with or without
  --hist/--timeline/--trace, because energy is computed post hoc from the
  same aggregate statistics that telemetry leaves untouched.

Run `ccx list` to see every workload and scheme name.";

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scheme_by_name(name: &str, cfg: &GpuConfig) -> Option<SchemeKind> {
    match name {
        "no-protection" | "off" => Some(SchemeKind::NoProtection),
        "inline-naive" | "naive" => Some(SchemeKind::InlineNaive { coverage: 8 }),
        "ecc-cache" => Some(SchemeKind::EccCache {
            coverage: 8,
            capacity_per_mc: 16 << 10,
        }),
        "cachecraft" => Some(SchemeKind::CacheCraft(CacheCraftConfig::for_machine(cfg))),
        _ => None,
    }
}

fn cmd_list() -> ExitCode {
    println!("workloads:");
    for w in Workload::ALL {
        println!("  {w}");
    }
    println!("schemes:\n  no-protection\n  inline-naive\n  ecc-cache\n  cachecraft");
    println!("machines:\n  gddr6 (default)\n  hbm2");
    println!("sizes:\n  tiny\n  small (default)\n  full");
    println!("codecs:\n  secded  rs36  rs18  crc32  tagged4");
    println!("patterns:\n  bit1  bit2  bit3  burst4  symbol  chiplane");
    println!(
        "telemetry flags (ccx run):\n  --hist            latency percentiles\n  \
         --timeline FILE   epoch time-series JSON\n  --trace FILE      Chrome trace-event JSON"
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let machine = parse_flag(args, "--machine").unwrap_or_else(|| "gddr6".into());
    let cfg = match machine.as_str() {
        "gddr6" => GpuConfig::gddr6(),
        "hbm2" => GpuConfig::hbm2(),
        other => {
            eprintln!("unknown machine {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let size = match parse_flag(args, "--size").as_deref() {
        None | Some("small") => SizeClass::Small,
        Some("tiny") => SizeClass::Tiny,
        Some("full") => SizeClass::Full,
        Some(other) => {
            eprintln!("unknown size {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = match parse_flag(args, "--seed").map(|s| s.parse()) {
        None => 1,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("--seed expects an integer\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let fault_cfg = match parse_flag(args, "--inject") {
        None => None,
        Some(spec) => match ccraft_sim::faults::FaultConfig::parse(&spec) {
            Ok(fc) => Some(fc.with_seed(seed)),
            Err(e) => {
                eprintln!("{e}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
    };
    let show_energy = args.iter().any(|a| a == "--energy");
    let show_hist = args.iter().any(|a| a == "--hist");
    let profile = args.iter().any(|a| a == "--profile");
    let sim_threads: u32 = match parse_flag(args, "--sim-threads").map(|s| s.parse()) {
        None => 1,
        Some(Ok(v)) if v >= 1 => v,
        Some(_) => {
            eprintln!("--sim-threads expects an integer >= 1\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let timeline_path = parse_flag(args, "--timeline");
    let trace_path = parse_flag(args, "--trace");
    for (flag, value) in [("--timeline", &timeline_path), ("--trace", &trace_path)] {
        if value.as_deref().is_some_and(|v| v.starts_with("--")) {
            eprintln!("{flag} expects a file path\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let tel = if trace_path.is_some() {
        TelemetryConfig::full()
    } else if show_hist || timeline_path.is_some() {
        TelemetryConfig::enabled()
    } else {
        TelemetryConfig::disabled()
    };
    let telemetry_on = tel.enabled || tel.trace_events;
    if sim_threads > 1 && (telemetry_on || fault_cfg.is_some()) {
        eprintln!(
            "note: telemetry/fault-injection cells run single-threaded (--sim-threads ignored)"
        );
    }
    let Some(workload_arg) = parse_flag(args, "--workload") else {
        eprintln!("--workload is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let workloads: Vec<Workload> = if workload_arg == "all" {
        Workload::ALL.to_vec()
    } else {
        match Workload::from_name(&workload_arg) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload {workload_arg:?} (see `ccx list`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let scheme_arg = parse_flag(args, "--scheme").unwrap_or_else(|| "all".into());
    let schemes: Vec<SchemeKind> = if scheme_arg == "all" {
        SchemeKind::headline(&cfg).to_vec()
    } else {
        match scheme_by_name(&scheme_arg, &cfg) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown scheme {scheme_arg:?} (see `ccx list`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let model = EnergyModel::gddr6();
    // lint: allow(wall-clock) reason=CLI elapsed-time readout for the operator; never feeds back into simulated state
    let started = std::time::Instant::now();
    let mut timeline_cells: Vec<Value> = Vec::new();
    let mut last_trace: Option<(String, ChromeTrace)> = None;
    let mut last_percentiles: Option<(u64, u64, u64, u64)> = None;
    let mut fault_totals = ccraft_sim::faults::FaultStats::default();
    let mut cells = 0u64;
    let mut cell_names: Vec<String> = Vec::new();
    let mut profile_report = ProfileReport::new();
    for w in workloads {
        let trace = w.generate(size, seed);
        println!("\n{trace}");
        for &kind in &schemes {
            let s = if profile || telemetry_on || fault_cfg.is_some() || sim_threads > 1 {
                let out = run_scheme_exec(
                    &cfg,
                    kind,
                    &trace,
                    &tel,
                    fault_cfg.as_ref(),
                    profile,
                    &ccraft_sim::ExecConfig { sim_threads },
                );
                if let Some(chrome) = out.trace {
                    last_trace = Some((format!("{}/{}", w.name(), kind.name()), chrome));
                }
                if let Some(tl) = &out.stats.timeline {
                    timeline_cells.push(Value::Object(vec![
                        ("workload".to_string(), Value::String(w.name().to_string())),
                        ("scheme".to_string(), Value::String(kind.name().to_string())),
                        ("timeline".to_string(), tl.to_value()),
                    ]));
                }
                if let Some(p) = out.profile {
                    print_profile_summary(&p);
                    profile_report.cells.push(CellProfile {
                        workload: w.name().to_string(),
                        scheme: kind.name().to_string(),
                        profile: p,
                    });
                }
                out.stats
            } else {
                run_scheme(&cfg, kind, &trace)
            };
            cells += 1;
            cell_names.push(format!("{}/{}", w.name(), kind.name()));
            println!("{s}");
            if let Some(fs) = &s.faults {
                println!(
                    "  faults: {} injected over {} data + {} ecc reads -> \
                     {} benign / {} corrected / {} DUE / {} SDC",
                    fs.injected,
                    fs.data_reads,
                    fs.ecc_reads,
                    fs.benign,
                    fs.corrected,
                    fs.due,
                    fs.sdc,
                );
                fault_totals.data_reads += fs.data_reads;
                fault_totals.ecc_reads += fs.ecc_reads;
                fault_totals.injected += fs.injected;
                fault_totals.benign += fs.benign;
                fault_totals.corrected += fs.corrected;
                fault_totals.due += fs.due;
                fault_totals.sdc += fs.sdc;
            }
            if let Some(h) = &s.latency_hist {
                last_percentiles = Some((h.p50(), h.p90(), h.p99(), h.max));
                if show_hist {
                    println!(
                        "  read latency: p50 {} / p90 {} / p99 {} / max {} cycles \
                         (mean {:.1} over {} reads)",
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                        h.mean(),
                        h.count,
                    );
                }
            }
            if show_energy {
                println!("  energy: {}", model.evaluate(&s, cfg.mem.channels));
            }
        }
    }
    let mut manifest = RunManifest::new("ccx-run");
    // Behavior-altering feature flags go into provenance so perf-diff can
    // refuse to compare e.g. an oracle build against a stock one.
    if cfg!(feature = "check-invariants") {
        manifest
            .provenance
            .features
            .push("check-invariants".to_string());
    }
    manifest.size = size.to_string();
    manifest.seed = seed;
    manifest.threads = 1;
    manifest.sim_threads = sim_threads;
    manifest.wall_time_secs = started.elapsed().as_secs_f64();
    // Per-cell provenance: telemetry and fault-injection cells fall back
    // to the single-threaded loop, so their *effective* sim_threads is 1
    // regardless of the flag; perf-diff compares on this truth.
    let effective = if telemetry_on || fault_cfg.is_some() {
        1
    } else {
        sim_threads
    };
    for name in &cell_names {
        manifest.record_cell(ccraft_telemetry::manifest::CellManifest {
            cell: name.clone(),
            sim_threads: effective,
            cache: "uncached".to_string(),
            status: "ok".to_string(),
        });
    }
    manifest.note("cells", cells as f64);
    if fault_cfg.is_some() {
        manifest.note("faults_injected", fault_totals.injected as f64);
        manifest.note("faults_corrected", fault_totals.corrected as f64);
        manifest.note("faults_due", fault_totals.due as f64);
        manifest.note("faults_sdc", fault_totals.sdc as f64);
    }
    if let Some((p50, p90, p99, max)) = last_percentiles {
        manifest.note("read_latency_p50", p50 as f64);
        manifest.note("read_latency_p90", p90 as f64);
        manifest.note("read_latency_p99", p99 as f64);
        manifest.note("read_latency_max", max as f64);
    }
    if let Some(path) = &timeline_path {
        let json = serde_json::to_string_pretty(&RawValue(Value::Array(timeline_cells)))
            .expect("timeline serialization is infallible");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("timeline: {path}");
        manifest.output(path);
    }
    if let Some(path) = &trace_path {
        let Some((cell, chrome)) = &last_trace else {
            eprintln!("--trace requested but no cell produced a trace");
            return ExitCode::FAILURE;
        };
        if cells > 1 {
            eprintln!("note: trace covers the last cell only ({cell})");
        }
        if let Err(e) = std::fs::write(path, chrome.to_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace: {path} ({} events)", chrome.len());
        manifest.output(path);
    }
    if profile {
        let json = serde_json::to_string_pretty(&profile_report)
            .expect("profile serialization is infallible");
        let path = match results_dir() {
            Ok(dir) => dir.join("profile.json"),
            Err(e) => {
                eprintln!("failed to resolve results dir: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Durable, checksummed write: perf-diff refuses to read a torn
        // or bit-flipped profile silently.
        if let Err(e) = ccraft_harness::store::write_durable(&path, json.as_bytes()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "profile: {} ({} cells)",
            path.display(),
            profile_report.cells.len()
        );
        manifest.output("profile.json");
        manifest.note(
            "profile_host_ms",
            profile_report.total_host_ns() as f64 / 1e6,
        );
        manifest.note(
            "profile_sm_sleep_hit_rate",
            profile_report.mean_sm_sleep_hit_rate(),
        );
        manifest.note(
            "profile_scan_memo_hit_rate",
            profile_report.mean_scan_memo_hit_rate(),
        );
        manifest.note(
            "profile_busy_imbalance",
            profile_report.mean_busy_imbalance(),
        );
    }
    manifest.stamp();
    match write_manifest(&manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write manifest.json: {e}"),
    }
    ExitCode::SUCCESS
}

/// Prints one cell's self-profile as a compact human summary; the full
/// numbers land in `results/profile.json`.
fn print_profile_summary(p: &ccraft_telemetry::profiler::SimProfile) {
    let total = p.host_ns_total.max(1);
    let pct = |name: &str| 100.0 * p.component_ns(name) as f64 / total as f64;
    println!(
        "  profile: host {:.1}ms over {} cycles | sm {:.0}% l1 {:.0}% xbar {:.0}% \
         l2 {:.0}% mc {:.0}% dram {:.0}% other {:.0}%",
        p.host_ns_total as f64 / 1e6,
        p.cycles,
        pct("sm"),
        pct("l1"),
        pct("xbar"),
        pct("l2"),
        pct("mc"),
        pct("dram"),
        pct("flush") + pct("idle_probe") + pct("other"),
    );
    println!(
        "           sleep memo {:.1}% hit, scan memo {:.1}% hit, \
         busy imbalance {:.2}x, idle: {} jumps skipping {} cycles",
        100.0 * p.sm_sleep.hit_rate(),
        100.0 * p.scan_memo.hit_rate(),
        p.busy_imbalance(),
        p.idle_jumps,
        p.idle_cycles_skipped,
    );
}

/// `ccx perf-diff A B`: joins two run directories and flags regressions.
/// Exit codes: 0 clean, 1 regression(s), 2 unusable or incomparable input.
fn cmd_perf_diff(args: &[String]) -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut dirs: Vec<String> = Vec::new();
    let mut i = 1; // args[0] is "perf-diff"
    while i < args.len() {
        match args[i].as_str() {
            "--force" => opts.force = true,
            "--threshold-pct" | "--hit-threshold-pts" | "--min-wall-delta" => {
                let flag = args[i].clone();
                i += 1;
                let Some(Ok(v)) = args.get(i).map(|s| s.parse::<f64>()) else {
                    eprintln!("{flag} expects a number\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--threshold-pct" => opts.wall_threshold_pct = v,
                    "--hit-threshold-pts" => opts.hit_threshold_pts = v,
                    _ => opts.min_wall_delta_secs = v,
                }
            }
            "--bench-a" | "--bench-b" => {
                let flag = args[i].clone();
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("{flag} expects a file path\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                let path = std::path::PathBuf::from(path);
                if flag == "--bench-a" {
                    opts.bench_a = Some(path);
                } else {
                    opts.bench_b = Some(path);
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            dir => dirs.push(dir.to_string()),
        }
        i += 1;
    }
    if dirs.len() != 2 {
        eprintln!(
            "perf-diff expects exactly two run directories, got {}\n\n{USAGE}",
            dirs.len()
        );
        return ExitCode::from(2);
    }
    match perfdiff::perf_diff(
        std::path::Path::new(&dirs[0]),
        std::path::Path::new(&dirs[1]),
        &opts,
    ) {
        Ok(report) => {
            print!("{}", report.render());
            if report.regressions() > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Serializes an already-built JSON value (the vendored serde data model
/// has no blanket `Serialize for Value`).
struct RawValue(Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// `ccx chaos-soak <exp-name>`: crash/fault recovery verifier (see
/// `ccraft_harness::soak`). Exit codes: 0 recovery contract held,
/// 1 violated or soak setup failed, 2 bad arguments.
fn cmd_chaos_soak(args: &[String]) -> ExitCode {
    let mut opts = ccraft_harness::soak::SoakOptions::default();
    let mut experiment: Option<String> = None;
    let mut i = 1; // args[0] is "chaos-soak"
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                opts.size = match args.get(i).map(String::as_str) {
                    // "smoke" is the CI alias for the smallest class.
                    Some("smoke") | Some("tiny") => "tiny".to_string(),
                    Some(s @ ("small" | "full")) => s.to_string(),
                    other => {
                        eprintln!("--size expects smoke|tiny|small|full, got {other:?}\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--seed" | "--threads" | "--sim-threads" | "--kills" | "--max-attempts" => {
                let flag = args[i].clone();
                i += 1;
                let Some(Ok(v)) = args.get(i).map(|s| s.parse::<u64>()) else {
                    eprintln!("{flag} expects an integer\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--seed" => opts.seed = v,
                    "--threads" => opts.threads = v as usize,
                    "--sim-threads" => opts.sim_threads = (v as u32).max(1),
                    "--kills" => opts.kills = v as u32,
                    _ => opts.max_attempts = v as u32,
                }
            }
            "--chaos" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--chaos expects a spec (e.g. seed=7,eio=0.05)\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.chaos = match ccraft_harness::chaos::ChaosConfig::parse(spec) {
                    Ok(cfg) => cfg,
                    Err(e) => {
                        eprintln!("--chaos: {e}\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--exe" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--exe expects a file path\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.exe = Some(std::path::PathBuf::from(path));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            name => experiment = Some(name.to_string()),
        }
        i += 1;
    }
    let Some(experiment) = experiment else {
        eprintln!("chaos-soak expects an experiment name (e.g. exp-main)\n\n{USAGE}");
        return ExitCode::from(2);
    };
    opts.experiment = experiment;
    match ccraft_harness::soak::run_soak(&opts) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos-soak: FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_reliability(args: &[String]) -> ExitCode {
    let codec = match parse_flag(args, "--codec").as_deref() {
        None | Some("secded") => CodecKind::SecDed64,
        Some("rs36") => CodecKind::Rs36_32,
        Some("rs18") => CodecKind::Rs18_16,
        Some("crc32") => CodecKind::Crc32,
        Some("tagged4") => CodecKind::Tagged4,
        Some(other) => {
            eprintln!("unknown codec {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let pattern = match parse_flag(args, "--pattern").as_deref() {
        None | Some("bit1") => ErrorPattern::RandomBits { count: 1 },
        Some("bit2") => ErrorPattern::RandomBits { count: 2 },
        Some("bit3") => ErrorPattern::RandomBits { count: 3 },
        Some("burst4") => ErrorPattern::AdjacentBurst { len: 4 },
        Some("symbol") => ErrorPattern::SymbolError,
        Some("chiplane") => ErrorPattern::ChipLane { stride: 4 },
        Some(other) => {
            eprintln!("unknown pattern {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let trials: u32 = match parse_flag(args, "--trials").map(|s| s.parse()) {
        None => 2_000,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("--trials expects an integer\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = match parse_flag(args, "--seed").map(|s| s.parse()) {
        None => 1,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("--seed expects an integer\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let r = Campaign {
        codec,
        pattern,
        trials,
        seed,
    }
    .run();
    println!("{codec} under {pattern} ({trials} trials):");
    println!(
        "  benign {:.2}%  corrected {:.2}%  DUE {:.2}%  SDC {:.2}%",
        100.0 * r.benign as f64 / r.trials as f64,
        100.0 * r.corrected as f64 / r.trials as f64,
        100.0 * r.due_rate(),
        100.0 * r.sdc_rate(),
    );
    ExitCode::SUCCESS
}

/// `ccx serve`: runs the persistent experiment daemon until killed.
fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = parse_flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into());
    let cache_dir = match parse_flag(args, "--cache-dir") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => match results_dir() {
            Ok(dir) => dir.join("cellcache"),
            Err(e) => {
                eprintln!("failed to resolve results dir: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let state = match ccraft_serve::ServeState::open(&cache_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open cache {}: {e}", cache_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let entries = state.cache().len();
    let server = match ccraft_serve::Server::bind(&addr, state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "ccraft-serve listening on http://{} (cache: {} with {entries} entries)",
        server.addr(),
        cache_dir.display(),
    );
    loop {
        std::thread::park();
    }
}

/// `ccx submit`: sends one sweep to a running daemon, waits for it, and
/// prints a greppable summary (`cells=N hits=N misses=N simulated=N`).
/// Exit codes: 0 done, 1 job failed, 2 transport or argument errors.
fn cmd_submit(args: &[String]) -> ExitCode {
    let addr = parse_flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into());
    let split_list = |v: Option<String>| -> Vec<String> {
        v.unwrap_or_else(|| "all".into())
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    let mut spec = ccraft_serve::JobSpec {
        workloads: split_list(parse_flag(args, "--workload")),
        schemes: split_list(parse_flag(args, "--scheme")),
        ..ccraft_serve::JobSpec::default()
    };
    if let Some(machine) = parse_flag(args, "--machine") {
        spec.machine = machine;
    }
    if let Some(size) = parse_flag(args, "--size") {
        spec.size = size;
    }
    match parse_flag(args, "--seed").map(|s| s.parse()) {
        None => {}
        Some(Ok(v)) => spec.seed = v,
        Some(Err(_)) => {
            eprintln!("--seed expects an integer\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    match parse_flag(args, "--sim-threads").map(|s| s.parse()) {
        None => {}
        Some(Ok(v)) if v >= 1 => spec.sim_threads = v,
        Some(_) => {
            eprintln!("--sim-threads expects an integer >= 1\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    spec.inject = parse_flag(args, "--inject");
    // --override-seed is repeatable: every occurrence adds one override.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--override-seed" {
            i += 1;
            let parsed = args.get(i).and_then(|v| {
                let (cell, seed) = v.rsplit_once(':')?;
                let (workload, scheme) = cell.split_once('/')?;
                Some(ccraft_serve::SeedOverride {
                    workload: workload.to_string(),
                    scheme: scheme.to_string(),
                    seed: seed.parse().ok()?,
                })
            });
            match parsed {
                Some(o) => spec.seed_overrides.push(o),
                None => {
                    eprintln!("--override-seed expects <workload>/<scheme>:<seed>\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
        i += 1;
    }
    let id = match ccraft_serve::submit_job(&addr, &spec) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("submit failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("submitted {id} to {addr}");
    let view = match ccraft_serve::wait_for_job(&addr, &id, true) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("waiting for {id} failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = parse_flag(args, "--csv-out") {
        match ccraft_serve::fetch_csv(&addr, &id) {
            // The raw durable bytes (crc32 footer included) land on disk,
            // so downstream readers can re-verify with the store layer.
            Ok((_, raw)) => {
                if let Err(e) = std::fs::write(&path, raw) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("csv: {path} (checksum verified)");
            }
            Err(e) => {
                eprintln!("csv download failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = parse_flag(args, "--manifest-out") {
        match ccraft_serve::http_request(&addr, "GET", &format!("/jobs/{id}/manifest"), None) {
            Ok((200, body)) => {
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("manifest: {path}");
            }
            Ok((status, _)) => {
                eprintln!("manifest download failed ({status})");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("manifest download failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "job {} {}: cells={} hits={} misses={} simulated={}",
        view.id, view.status, view.cells, view.hits, view.misses, view.simulated
    );
    if view.status == "done" {
        ExitCode::SUCCESS
    } else {
        eprintln!("job failed: {}", view.error);
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args),
        Some("reliability") => cmd_reliability(&args),
        Some("perf-diff") => cmd_perf_diff(&args),
        Some("chaos-soak") => cmd_chaos_soak(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
