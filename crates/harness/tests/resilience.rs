//! Process-level crash-resilience: kill a running experiment binary and
//! resume it through `results/checkpoint.json`.
//!
//! Drives the actual `exp-faults` executable (not an in-process harness),
//! so the whole chain is exercised: option parsing, the global checkpoint
//! session, atomic checkpoint writes surviving a SIGKILL, and `--resume`
//! replaying finished cells.

use ccraft_harness::checkpoint::Checkpoint;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Cells exp-faults runs: SWEEP_SUBSET (6 workloads) × 4 headline schemes.
const TOTAL_CELLS: usize = 24;

fn read_checkpoint(path: &Path) -> Option<Checkpoint> {
    // Checkpoints carry a checksum footer now; read through the store
    // (which also verifies it — a torn write must never parse).
    let (text, _verified) = ccraft_harness::store::read_verified_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn ok_cells(cp: &Checkpoint) -> usize {
    cp.cells.iter().filter(|c| c.is_ok()).count()
}

#[test]
fn killed_experiment_resumes_from_checkpoint() {
    let dir = std::env::temp_dir().join(format!("ccraft-kill-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint_path = dir.join("checkpoint.json");
    let exe = env!("CARGO_BIN_EXE_exp-faults");
    let base_args = ["--size", "tiny", "--threads", "1", "--seed", "3"];

    // First run: kill it as soon as some (but not all) cells are
    // checkpointed. Single-threaded tiny cells take long enough that the
    // poll wins the race in practice; if the run still finishes first,
    // the resume below degenerates to "skip everything", which is also a
    // valid round-trip.
    let mut child = Command::new(exe)
        .args(base_args)
        .env("CCRAFT_RESULTS", &dir)
        .env("CCRAFT_PROGRESS", "0")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn exp-faults");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut first_run_completed = false;
    loop {
        if let Some(cp) = read_checkpoint(&checkpoint_path) {
            if ok_cells(&cp) >= 2 {
                break;
            }
        }
        if child.try_wait().expect("poll child").is_some() {
            first_run_completed = true;
            break;
        }
        assert!(Instant::now() < deadline, "first run made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    if !first_run_completed {
        child.kill().expect("kill exp-faults");
        let _ = child.wait();
    }

    let cp = read_checkpoint(&checkpoint_path).expect("checkpoint exists after kill");
    let cells_after_kill = ok_cells(&cp);
    assert!(cells_after_kill >= 2, "kill happened after >= 2 cells");
    // Fingerprint carries the canonical inject spec ("none" here: the
    // fault experiment configures injection per cell, not via --inject).
    assert_eq!(cp.fingerprint, "exp-faults/tiny/3/none");
    if !first_run_completed {
        assert!(
            cells_after_kill < TOTAL_CELLS,
            "kill should interrupt mid-run (got all {TOTAL_CELLS} cells)"
        );
    }

    // Second run resumes: it must skip everything already checkpointed
    // and finish the rest.
    let out = Command::new(exe)
        .args(base_args)
        .arg("--resume")
        .env("CCRAFT_RESULTS", &dir)
        .env("CCRAFT_PROGRESS", "0")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run exp-faults --resume");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume run failed: {stderr}");
    let skipped: usize = stderr
        .lines()
        .find_map(|l| {
            l.strip_prefix("resume: skipping ")
                .and_then(|rest| rest.split('/').next())
                .and_then(|n| n.parse().ok())
        })
        .expect("resume run reports skipped cells");
    assert!(
        skipped >= cells_after_kill,
        "resume must skip at least the {cells_after_kill} cells present at kill time, skipped {skipped}"
    );
    assert!(skipped <= TOTAL_CELLS);

    // Final checkpoint: the full matrix, all ok.
    let final_cp = read_checkpoint(&checkpoint_path).expect("final checkpoint");
    assert_eq!(final_cp.cells.len(), TOTAL_CELLS);
    assert_eq!(ok_cells(&final_cp), TOTAL_CELLS);
    // Cells executed by the resume run = total - skipped; together with
    // the skipped set they cover the matrix exactly once.
    assert_eq!(final_cp.fingerprint, "exp-faults/tiny/3/none");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Generalizes the single-kill test into a sweep: SIGKILL the experiment
/// at several different checkpoint depths, resuming after each, and
/// assert the final `--resume` leaves a complete, checksum-valid results
/// directory — every CSV verifies through the store and the checkpoint
/// holds the whole matrix.
#[test]
fn kill_point_sweep_recovers_at_every_depth() {
    let dir = std::env::temp_dir().join(format!("ccraft-kill-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint_path = dir.join("checkpoint.json");
    let exe = env!("CARGO_BIN_EXE_exp-faults");
    let base_args = ["--size", "tiny", "--threads", "1", "--seed", "5"];

    // Kill once the checkpoint first reaches each of these depths. A fast
    // machine may blow past a target (or finish); both degrade safely.
    let mut completed = false;
    for (round, target) in [1usize, 4, 9].into_iter().enumerate() {
        let mut cmd = Command::new(exe);
        cmd.args(base_args);
        if round > 0 {
            cmd.arg("--resume");
        }
        let mut child = cmd
            .env("CCRAFT_RESULTS", &dir)
            .env("CCRAFT_PROGRESS", "0")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn exp-faults");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if read_checkpoint(&checkpoint_path).is_some_and(|cp| ok_cells(&cp) >= target) {
                break;
            }
            if child.try_wait().expect("poll child").is_some() {
                completed = true;
                break;
            }
            assert!(
                Instant::now() < deadline,
                "round {round} made no progress toward {target} cells"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        if completed {
            break;
        }
        child.kill().expect("kill exp-faults");
        let _ = child.wait();
        // Whatever survived each kill must already be a valid checkpoint:
        // atomic rename means we never observe a torn file.
        let cp = read_checkpoint(&checkpoint_path).expect("checkpoint readable after kill");
        assert_eq!(cp.fingerprint, "exp-faults/tiny/5/none");
    }

    // Final resume runs the remainder to completion.
    let out = Command::new(exe)
        .args(base_args)
        .arg("--resume")
        .env("CCRAFT_RESULTS", &dir)
        .env("CCRAFT_PROGRESS", "0")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .output()
        .expect("final resume");
    assert!(out.status.success(), "final resume failed");
    let final_cp = read_checkpoint(&checkpoint_path).expect("final checkpoint");
    assert_eq!(ok_cells(&final_cp), TOTAL_CELLS);

    // The resumed run rewrote complete, checksum-valid CSVs.
    let csvs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
        .collect();
    assert!(!csvs.is_empty(), "exp-faults must emit at least one CSV");
    for entry in csvs {
        let v = ccraft_harness::store::read_verified(&entry.path()).expect("CSV readable");
        assert!(
            v.verified,
            "{:?} must carry a valid checksum footer",
            entry.file_name()
        );
        assert!(!v.payload.is_empty());
    }
    // No quarantine files: SIGKILL must never corrupt the store's files.
    let corrupt: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".corrupt-"))
        .collect();
    assert!(corrupt.is_empty(), "kill left corrupt files: {corrupt:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_complete_run_executes_nothing() {
    let dir = std::env::temp_dir().join(format!("ccraft-full-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let exe = env!("CARGO_BIN_EXE_exp-faults");
    let base_args = ["--size", "tiny", "--threads", "2", "--seed", "9"];

    let run = |resume: bool| {
        let mut cmd = Command::new(exe);
        cmd.args(base_args);
        if resume {
            cmd.arg("--resume");
        }
        cmd.env("CCRAFT_RESULTS", &dir)
            .env("CCRAFT_PROGRESS", "0")
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("run exp-faults")
    };
    let first = run(false);
    assert!(first.status.success());
    let second = run(true);
    assert!(second.status.success());
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains(&format!("resume: skipping {TOTAL_CELLS}/{TOTAL_CELLS}")),
        "complete run must be skipped wholesale: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
