//! Smoke test for the live metrics endpoint: binds a real socket, speaks
//! HTTP over a raw `TcpStream`, and validates the response is a
//! well-formed Prometheus text exposition (satellite 6 of the
//! performance-observatory change).

use ccraft_harness::metrics::{MetricsRegistry, MetricsServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Sends one HTTP request and returns (status line, headers, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_string();
    (
        status,
        lines.map(str::to_string).collect(),
        body.to_string(),
    )
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let registry = Arc::new(MetricsRegistry::new());
    registry.add_planned(8);
    registry.set_workers(4);
    registry.observe_cell(0.02, true, 1, false);
    registry.observe_cell(2.5, true, 2, false);
    registry.observe_cell(10.0, false, 1, false);
    let server =
        MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind ephemeral port");
    let addr = server.addr();

    let (status, headers, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case("content-type: text/plain; version=0.0.4")),
        "Prometheus content type required, got {headers:?}"
    );
    assert!(
        headers.iter().any(|h| {
            h.to_ascii_lowercase()
                .strip_prefix("content-length: ")
                .is_some_and(|n| n.parse::<usize>() == Ok(body.len()))
        }),
        "content-length must match the body, got {headers:?}"
    );

    // Exposition format: every non-comment line is `name{labels} value`,
    // every metric is preceded by HELP/TYPE comments.
    let mut seen_metrics = Vec::new();
    for line in body.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value must be numeric: {line:?}"
        );
        let name = name_and_labels
            .split_once('{')
            .map_or(name_and_labels, |(n, _)| n);
        assert!(
            name.starts_with("ccraft_"),
            "metrics share the ccraft_ namespace: {line:?}"
        );
        // Histogram samples (_bucket/_sum/_count) are typed under the
        // base metric name.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| body.contains(&format!("# TYPE {b} histogram")))
            .unwrap_or(name);
        assert!(
            body.contains(&format!("# TYPE {base} ")),
            "{name} is missing its TYPE comment"
        );
        seen_metrics.push(name.to_string());
    }
    for expected in [
        "ccraft_cells_planned",
        "ccraft_cells_completed_total",
        "ccraft_cells_failed_total",
        "ccraft_cells_retried_total",
        "ccraft_workers",
        "ccraft_workers_active",
        "ccraft_run_eta_seconds",
        "ccraft_cell_seconds_bucket",
        "ccraft_cell_seconds_sum",
        "ccraft_cell_seconds_count",
    ] {
        assert!(
            seen_metrics.iter().any(|m| m == expected),
            "missing metric {expected} in:\n{body}"
        );
    }

    // Histogram contract: cumulative buckets ending in le="+Inf" whose
    // count equals _count.
    let bucket_counts: Vec<u64> = body
        .lines()
        .filter(|l| l.starts_with("ccraft_cell_seconds_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!bucket_counts.is_empty());
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "histogram buckets must be cumulative: {bucket_counts:?}"
    );
    let inf_line = body
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .expect("+Inf bucket present");
    assert_eq!(inf_line.rsplit_once(' ').unwrap().1, "3");
    assert!(body.contains("ccraft_cell_seconds_count 3"));
    assert!(body.contains("ccraft_cells_completed_total 3"));
    assert!(body.contains("ccraft_cells_failed_total 1"));
    assert!(body.contains("ccraft_cells_retried_total 1"));

    // The bare root also answers (for curl convenience); anything else 404s.
    let (status, _, _) = http_get(addr, "/");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, _, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    server.shutdown();
}

#[test]
fn endpoint_survives_garbage_requests() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = MetricsServer::bind("127.0.0.1:0", registry).expect("bind ephemeral port");
    let addr = server.addr();

    // A connection that sends nothing and hangs up.
    drop(TcpStream::connect(addr).expect("connect"));
    // A connection that sends a malformed request line.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"not-http at all\r\n\r\n").expect("send");
    let mut junk_response = String::new();
    let _ = stream.read_to_string(&mut junk_response);
    drop(stream);

    // The server still answers real requests afterwards.
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("ccraft_cells_planned 0"));
    server.shutdown();
}
