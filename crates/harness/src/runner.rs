//! Parallel execution of workload × scheme simulation matrices.

use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::stats::SimStats;
use ccraft_workloads::{SizeClass, Workload};
use std::sync::Mutex;

/// Options shared by every experiment binary, parsed from the command
/// line (`--size tiny|small|full`, `--seed N`, `--threads N`).
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Workload size class.
    pub size: SizeClass,
    /// Trace-generation seed.
    pub seed: u64,
    /// Worker threads (0 = number of CPUs).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            size: SizeClass::Small,
            seed: 1,
            threads: 0,
        }
    }
}

impl ExpOptions {
    /// Parses options from `std::env::args` (unknown arguments are
    /// ignored so binaries can add their own).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values.
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--size" => {
                    i += 1;
                    opts.size = match args.get(i).map(String::as_str) {
                        Some("tiny") => SizeClass::Tiny,
                        Some("small") => SizeClass::Small,
                        Some("full") => SizeClass::Full,
                        other => panic!("--size expects tiny|small|full, got {other:?}"),
                    };
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed expects an integer");
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--threads expects an integer");
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// One cell of a run matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// The workload.
    pub workload: Workload,
    /// The scheme.
    pub scheme: SchemeKind,
    /// Simulation results.
    pub stats: SimStats,
}

impl MatrixResult {
    /// Performance normalized to a baseline run of the same workload
    /// (baseline cycles / this run's cycles — higher is better, 1.0 means
    /// parity with the baseline).
    pub fn normalized_perf(&self, baseline: &SimStats) -> f64 {
        baseline.exec_cycles as f64 / self.stats.exec_cycles as f64
    }
}

/// Runs every `(workload, scheme)` pair in parallel and returns results in
/// deterministic (workload-major, scheme-minor) order.
///
/// Each cell is an independent simulation with its own scheme instance, so
/// results are identical to sequential execution.
pub fn run_matrix(
    cfg: &GpuConfig,
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
) -> Vec<MatrixResult> {
    let jobs: Vec<(usize, Workload, SchemeKind)> = workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| (w, s)))
        .enumerate()
        .map(|(i, (w, s))| (i, w, s))
        .collect();
    let results: Mutex<Vec<Option<MatrixResult>>> = Mutex::new(vec![None; jobs.len()]);
    let queue = Mutex::new(jobs);
    let workers = opts.effective_threads().min(64).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, workload, scheme)) = job else {
                    break;
                };
                let trace = workload.generate(opts.size, opts.seed);
                let stats = run_scheme(cfg, scheme, &trace);
                results.lock().expect("results lock")[idx] = Some(MatrixResult {
                    workload,
                    scheme,
                    stats,
                });
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Finds the result of `(workload, scheme)` in a matrix.
pub fn find<'a>(
    results: &'a [MatrixResult],
    workload: Workload,
    scheme_name: &str,
) -> Option<&'a MatrixResult> {
    results
        .iter()
        .find(|r| r.workload == workload && r.scheme.name() == scheme_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_all_cells_in_order() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 2,
        };
        let workloads = [Workload::VecAdd, Workload::Histogram];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ];
        let results = run_matrix(&cfg, &workloads, &schemes, &opts);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].workload, Workload::VecAdd);
        assert_eq!(results[0].scheme.name(), "no-protection");
        assert_eq!(results[3].workload, Workload::Histogram);
        assert_eq!(results[3].scheme.name(), "inline-naive");
        for r in &results {
            assert!(!r.stats.timed_out);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = GpuConfig::tiny();
        let workloads = [Workload::Saxpy];
        let schemes = [SchemeKind::InlineNaive { coverage: 8 }];
        let par = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                size: SizeClass::Tiny,
                seed: 5,
                threads: 4,
            },
        );
        let seq = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                size: SizeClass::Tiny,
                seed: 5,
                threads: 1,
            },
        );
        assert_eq!(par[0].stats, seq[0].stats);
    }

    #[test]
    fn normalized_perf_is_relative() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 1,
        };
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
        );
        let baseline = &results[0].stats;
        assert!((results[0].normalized_perf(baseline) - 1.0).abs() < 1e-12);
        assert!(results[1].normalized_perf(baseline) <= 1.0);
    }

    #[test]
    fn find_locates_cells() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 1,
        };
        let results = run_matrix(&cfg, &[Workload::VecAdd], &[SchemeKind::NoProtection], &opts);
        assert!(find(&results, Workload::VecAdd, "no-protection").is_some());
        assert!(find(&results, Workload::VecAdd, "cachecraft").is_none());
    }
}
