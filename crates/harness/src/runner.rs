//! Parallel execution of workload × scheme simulation matrices.

use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::stats::SimStats;
use ccraft_telemetry::manifest::RunManifest;
use ccraft_workloads::{SizeClass, Workload};
use std::io::IsTerminal as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Usage text for the options shared by every experiment binary.
pub const OPTIONS_USAGE: &str = "\
common experiment options:
  --size tiny|small|full   workload size class (default: small)
  --seed N                 trace-generation seed (default: 1)
  --threads N              worker threads, 0 = number of CPUs (default: 0)

Unrecognized flags are ignored here so each binary can define its own.";

/// Options shared by every experiment binary, parsed from the command
/// line (`--size tiny|small|full`, `--seed N`, `--threads N`).
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Workload size class.
    pub size: SizeClass,
    /// Trace-generation seed.
    pub seed: u64,
    /// Worker threads (0 = number of CPUs).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            size: SizeClass::Small,
            seed: 1,
            threads: 0,
        }
    }
}

impl ExpOptions {
    /// Parses options from an argument list (without the binary name).
    /// Unknown arguments are ignored so binaries can add their own.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a malformed or missing value
    /// for a recognized flag.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--size" => {
                    i += 1;
                    opts.size = match args.get(i).map(String::as_str) {
                        Some("tiny") => SizeClass::Tiny,
                        Some("small") => SizeClass::Small,
                        Some("full") => SizeClass::Full,
                        other => {
                            return Err(format!("--size expects tiny|small|full, got {other:?}"))
                        }
                    };
                }
                "--seed" => {
                    i += 1;
                    opts.seed = match args.get(i).map(|s| s.parse()) {
                        Some(Ok(v)) => v,
                        _ => {
                            return Err(format!("--seed expects an integer, got {:?}", args.get(i)))
                        }
                    };
                }
                "--threads" => {
                    i += 1;
                    opts.threads = match args.get(i).map(|s| s.parse()) {
                        Some(Ok(v)) => v,
                        _ => {
                            return Err(format!(
                                "--threads expects an integer, got {:?}",
                                args.get(i)
                            ))
                        }
                    };
                }
                _ => {}
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Parses options from `std::env::args`. On a malformed value this
    /// prints the error and [`OPTIONS_USAGE`] to stderr and exits with
    /// status 2 instead of panicking.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{OPTIONS_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Whether per-cell progress lines should be written to stderr.
///
/// Controlled by `CCRAFT_PROGRESS` (`0` forces off, anything else forces
/// on); when unset, progress is shown only when stderr is a terminal, so
/// test runs and redirected logs stay clean.
fn progress_enabled() -> bool {
    match std::env::var("CCRAFT_PROGRESS") {
        Ok(v) => v != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// Renders one progress line: completed/total cells, the cell that just
/// finished, elapsed wall time, and a linear-extrapolation ETA.
fn progress_line(done: usize, total: usize, workload: &str, scheme: &str, elapsed: f64) -> String {
    if done < total {
        let eta = elapsed / done.max(1) as f64 * (total - done) as f64;
        format!("[{done}/{total}] {workload}/{scheme} done ({elapsed:.1}s elapsed, ETA {eta:.1}s)")
    } else {
        format!("[{done}/{total}] {workload}/{scheme} done ({elapsed:.1}s total)")
    }
}

/// One cell of a run matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// The workload.
    pub workload: Workload,
    /// The scheme.
    pub scheme: SchemeKind,
    /// Simulation results.
    pub stats: SimStats,
}

impl MatrixResult {
    /// Performance normalized to a baseline run of the same workload
    /// (baseline cycles / this run's cycles — higher is better, 1.0 means
    /// parity with the baseline).
    pub fn normalized_perf(&self, baseline: &SimStats) -> f64 {
        baseline.exec_cycles as f64 / self.stats.exec_cycles as f64
    }
}

/// Runs every `(workload, scheme)` pair in parallel and returns results in
/// deterministic (workload-major, scheme-minor) order.
///
/// Each cell is an independent simulation with its own scheme instance, so
/// results are identical to sequential execution.
pub fn run_matrix(
    cfg: &GpuConfig,
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
) -> Vec<MatrixResult> {
    let jobs: Vec<(usize, Workload, SchemeKind)> = workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| (w, s)))
        .enumerate()
        .map(|(i, (w, s))| (i, w, s))
        .collect();
    let total = jobs.len();
    let results: Mutex<Vec<Option<MatrixResult>>> = Mutex::new(vec![None; jobs.len()]);
    let queue = Mutex::new(jobs);
    let workers = opts.effective_threads().clamp(1, 64);
    let started = Instant::now();
    let completed = AtomicUsize::new(0);
    let show_progress = progress_enabled();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, workload, scheme)) = job else {
                    break;
                };
                let trace = workload.generate(opts.size, opts.seed);
                let stats = run_scheme(cfg, scheme, &trace);
                results.lock().expect("results lock")[idx] = Some(MatrixResult {
                    workload,
                    scheme,
                    stats,
                });
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                if show_progress {
                    eprintln!(
                        "{}",
                        progress_line(
                            done,
                            total,
                            workload.name(),
                            scheme.name(),
                            started.elapsed().as_secs_f64(),
                        )
                    );
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Standard entry point for an experiment binary: parses [`ExpOptions`]
/// from the command line, times `body`, and writes a
/// `results/manifest.json` recording what produced the results directory
/// (experiment id, argv, size class, seed, threads, wall time).
///
/// Manifest-write failures are reported on stderr but do not fail the
/// run — the experiment's own artifacts are already on disk.
pub fn run_experiment(id: &str, body: impl FnOnce(&ExpOptions)) {
    let opts = ExpOptions::from_args();
    let started = Instant::now();
    body(&opts);
    let mut manifest = RunManifest::new(id);
    manifest.size = opts.size.to_string();
    manifest.seed = opts.seed;
    manifest.threads = opts.effective_threads();
    manifest.wall_time_secs = started.elapsed().as_secs_f64();
    manifest.stamp();
    match crate::report::write_manifest(&manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write manifest.json: {e}"),
    }
}

/// Finds the result of `(workload, scheme)` in a matrix.
pub fn find<'a>(
    results: &'a [MatrixResult],
    workload: Workload,
    scheme_name: &str,
) -> Option<&'a MatrixResult> {
    results
        .iter()
        .find(|r| r.workload == workload && r.scheme.name() == scheme_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_valid_options() {
        let o = ExpOptions::parse(&argv(&["--size", "tiny", "--seed", "7", "--threads", "3"]))
            .expect("valid options parse");
        assert_eq!(o.size, SizeClass::Tiny);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 3);
        // Defaults survive an empty argument list.
        let d = ExpOptions::parse(&[]).unwrap();
        assert_eq!(d.size, SizeClass::Small);
        assert_eq!(d.seed, 1);
        assert_eq!(d.threads, 0);
    }

    #[test]
    fn parse_rejects_malformed_values() {
        let e = ExpOptions::parse(&argv(&["--seed", "not-a-number"])).unwrap_err();
        assert!(e.contains("--seed"), "{e}");
        let e = ExpOptions::parse(&argv(&["--threads"])).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = ExpOptions::parse(&argv(&["--size", "huge"])).unwrap_err();
        assert!(e.contains("--size"), "{e}");
    }

    #[test]
    fn parse_passes_unknown_flags_through() {
        let o = ExpOptions::parse(&argv(&["--workload", "spmv", "--energy", "--seed", "4"]))
            .expect("unknown flags are ignored");
        assert_eq!(o.seed, 4);
        assert_eq!(o.size, SizeClass::Small);
    }

    #[test]
    fn progress_line_extrapolates_eta() {
        let line = progress_line(2, 8, "spmv", "cachecraft", 4.0);
        assert!(line.contains("[2/8]"), "{line}");
        assert!(line.contains("spmv/cachecraft"), "{line}");
        assert!(line.contains("ETA 12.0s"), "{line}");
        let last = progress_line(8, 8, "spmv", "cachecraft", 16.0);
        assert!(last.contains("16.0s total"), "{last}");
        // Never divides by zero even if called before any completion.
        let first = progress_line(0, 8, "w", "s", 1.0);
        assert!(first.contains("[0/8]"), "{first}");
    }

    #[test]
    fn matrix_runs_all_cells_in_order() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 2,
        };
        let workloads = [Workload::VecAdd, Workload::Histogram];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ];
        let results = run_matrix(&cfg, &workloads, &schemes, &opts);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].workload, Workload::VecAdd);
        assert_eq!(results[0].scheme.name(), "no-protection");
        assert_eq!(results[3].workload, Workload::Histogram);
        assert_eq!(results[3].scheme.name(), "inline-naive");
        for r in &results {
            assert!(!r.stats.timed_out);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = GpuConfig::tiny();
        let workloads = [Workload::Saxpy];
        let schemes = [SchemeKind::InlineNaive { coverage: 8 }];
        let par = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                size: SizeClass::Tiny,
                seed: 5,
                threads: 4,
            },
        );
        let seq = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                size: SizeClass::Tiny,
                seed: 5,
                threads: 1,
            },
        );
        assert_eq!(par[0].stats, seq[0].stats);
    }

    #[test]
    fn normalized_perf_is_relative() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 1,
        };
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
        );
        let baseline = &results[0].stats;
        assert!((results[0].normalized_perf(baseline) - 1.0).abs() < 1e-12);
        assert!(results[1].normalized_perf(baseline) <= 1.0);
    }

    #[test]
    fn find_locates_cells() {
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads: 1,
        };
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
        );
        assert!(find(&results, Workload::VecAdd, "no-protection").is_some());
        assert!(find(&results, Workload::VecAdd, "cachecraft").is_none());
    }
}
