//! Parallel, crash-resilient execution of workload × scheme simulation
//! matrices.
//!
//! Every cell runs under [`std::panic::catch_unwind`] (optionally behind a
//! watchdog timeout), so one diverging or panicking simulation marks only
//! its own cell as failed instead of poisoning the worker pool. Completed
//! cells are persisted to `results/checkpoint.json` through the
//! process-global [`crate::checkpoint`] session installed by
//! [`run_experiment`], and a killed run restarted with `--resume` skips
//! the cells that already finished.

use crate::checkpoint::{self, CellRecord, STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT};
use crate::error::Error;
use ccraft_core::factory::{run_scheme_exec, run_scheme_instrumented, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::faults::FaultConfig;
use ccraft_sim::stats::SimStats;
use ccraft_telemetry::manifest::RunManifest;
use ccraft_telemetry::TelemetryConfig;
use ccraft_workloads::{SizeClass, Workload};
use std::io::IsTerminal as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Usage text for the options shared by every experiment binary.
pub const OPTIONS_USAGE: &str = "\
common experiment options:
  --size tiny|small|full   workload size class (default: small)
  --seed N                 trace-generation seed (default: 1)
  --threads N              worker threads, 0 = number of CPUs (default: 0)
  --sim-threads N          shard each simulation's cycle loop across N
                           threads by memory channel (default: 1); stats
                           are bit-identical at every setting, and the
                           worker pool shrinks so that
                           workers x sim-threads stays within the budget
  --inject <pat>:<rate>    in-situ DRAM fault injection, e.g. symbol:1e-6
                           or bit2:fit=5000@24 (pattern bit1|bit2|bit3|
                           burst4|symbol|chiplane; rate per access or
                           fit=<FIT>[@hours])
  --resume                 skip cells already in results/checkpoint.json
  --cell-timeout N         per-cell watchdog in seconds (default: none)
  --retries N              re-run a failed/timed-out cell N times (default: 0)
  --metrics-addr ADDR      serve live Prometheus metrics over HTTP while the
                           run executes, e.g. 127.0.0.1:9184 (default: off)
  --fail-fast              abort the sweep on the first permanently failing
                           cell and exit 2, instead of quarantining it and
                           completing degraded (exit 3)

Unrecognized flags are passed through so each binary can define its own,
but they are reported (stderr + manifest warnings) so a typo like
--sim-thread is never silently ignored.";

/// Flags parsed outside [`ExpOptions`] that are still legitimate on
/// harness binaries: `--metrics-addr` is consumed by
/// [`run_experiment`]'s metrics listener, `--workload` by the `probe`
/// diagnostic binary. They are excluded from the unrecognized-flag
/// warning.
pub const EXTRA_HARNESS_FLAGS: [&str; 2] = ["--metrics-addr", "--workload"];

/// Exit status of a fully successful run.
pub const EXIT_OK: i32 = 0;
/// Exit status of a failed run (configuration error, `--fail-fast`
/// abort, or a non-cell failure).
pub const EXIT_FAILED: i32 = 2;
/// Exit status of a *degraded* run: one or more cells were quarantined
/// after exhausting their attempts, but the sweep itself completed.
pub const EXIT_DEGRADED: i32 = 3;

/// Options shared by every experiment binary, parsed from the command
/// line.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Workload size class.
    pub size: SizeClass,
    /// Trace-generation seed.
    pub seed: u64,
    /// Worker threads (0 = number of CPUs).
    pub threads: usize,
    /// Threads each simulation's cycle loop is sharded across (1 = the
    /// plain single-threaded loop). Purely an execution strategy: stats
    /// stay bit-identical at every setting.
    pub sim_threads: u32,
    /// In-situ fault injection, when configured (`--inject`).
    pub inject: Option<FaultConfig>,
    /// Resume from `results/checkpoint.json`, skipping finished cells.
    pub resume: bool,
    /// Per-cell watchdog timeout in seconds (`None` = unlimited).
    pub cell_timeout_secs: Option<u64>,
    /// Bounded retries for failed or timed-out cells.
    pub retries: u32,
    /// Abort the sweep on the first permanently failing cell instead of
    /// quarantining it and completing degraded.
    pub fail_fast: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            size: SizeClass::Small,
            seed: 1,
            threads: 0,
            sim_threads: 1,
            inject: None,
            resume: false,
            cell_timeout_secs: None,
            retries: 0,
            fail_fast: false,
        }
    }
}

impl ExpOptions {
    /// Parses options from an argument list (without the binary name).
    /// Unknown arguments are ignored so binaries can add their own; use
    /// [`ExpOptions::parse_with_unknown`] to also learn which `--` flags
    /// went unrecognized.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on a malformed or missing value for a
    /// recognized flag.
    pub fn parse(args: &[String]) -> Result<Self, Error> {
        Self::parse_with_unknown(args).map(|(opts, _)| opts)
    }

    /// [`ExpOptions::parse`], additionally returning every `--` flag the
    /// parser did not recognize (excluding [`EXTRA_HARNESS_FLAGS`], which
    /// other harness layers consume). Values of unknown flags are not
    /// reported — only the flags themselves — so a typo like
    /// `--sim-thread 4` surfaces as `--sim-thread`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on a malformed or missing value for a
    /// recognized flag.
    pub fn parse_with_unknown(args: &[String]) -> Result<(Self, Vec<String>), Error> {
        let mut opts = ExpOptions::default();
        let mut unknown: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--size" => {
                    i += 1;
                    opts.size = match args.get(i).map(String::as_str) {
                        Some("tiny") => SizeClass::Tiny,
                        Some("small") => SizeClass::Small,
                        Some("full") => SizeClass::Full,
                        other => {
                            return Err(Error::config(format!(
                                "--size expects tiny|small|full, got {other:?}"
                            )))
                        }
                    };
                }
                "--seed" => {
                    i += 1;
                    opts.seed = parse_value(args, i, "--seed", "an integer")?;
                }
                "--threads" => {
                    i += 1;
                    opts.threads = parse_value(args, i, "--threads", "an integer")?;
                }
                "--sim-threads" => {
                    i += 1;
                    let n: u32 = parse_value(args, i, "--sim-threads", "an integer")?;
                    if n == 0 {
                        return Err(Error::config("--sim-threads must be at least 1"));
                    }
                    opts.sim_threads = n;
                }
                "--inject" => {
                    i += 1;
                    let spec = args.get(i).ok_or_else(|| {
                        Error::config("--inject expects <pattern>:<rate>".to_string())
                    })?;
                    opts.inject = Some(FaultConfig::parse(spec).map_err(Error::Config)?);
                }
                "--resume" => opts.resume = true,
                "--fail-fast" => opts.fail_fast = true,
                "--cell-timeout" => {
                    i += 1;
                    let secs: u64 = parse_value(args, i, "--cell-timeout", "seconds")?;
                    if secs == 0 {
                        return Err(Error::config("--cell-timeout must be at least 1 second"));
                    }
                    opts.cell_timeout_secs = Some(secs);
                }
                "--retries" => {
                    i += 1;
                    opts.retries = parse_value(args, i, "--retries", "an integer")?;
                }
                other => {
                    if other.starts_with("--") && !EXTRA_HARNESS_FLAGS.contains(&other) {
                        unknown.push(other.to_string());
                    }
                }
            }
            i += 1;
        }
        Ok((opts, unknown))
    }

    /// Parses options from `std::env::args`. On a malformed value this
    /// prints the error and [`OPTIONS_USAGE`] to stderr and exits with
    /// status 2 instead of panicking. Unrecognized `--` flags are
    /// reported on stderr (they may be typos of recognized ones).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_with_unknown(&args) {
            Ok((opts, unknown)) => {
                warn_unknown_flags(&unknown);
                opts
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{OPTIONS_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// Effective per-simulation shard count (floor 1). This is the
    /// *requested* value; see [`ExpOptions::effective_cell_sim_threads`]
    /// for what a standard simulation cell actually runs with.
    pub fn effective_sim_threads(&self) -> u32 {
        self.sim_threads.max(1)
    }

    /// Shard count a standard simulation cell *actually* runs with:
    /// fault-injection cells always take the single-threaded
    /// instrumented loop, regardless of `--sim-threads`. Manifests
    /// record this truthful per-cell value, not the request.
    pub fn effective_cell_sim_threads(&self) -> u32 {
        if self.inject.is_some() {
            1
        } else {
            self.effective_sim_threads()
        }
    }

    /// Worker count the matrix engine actually spawns: the effective
    /// thread count clamped to `[1, 64]`, then shrunk so the total
    /// `workers x sim_threads` footprint stays within the same budget —
    /// sharded cells each occupy `sim_threads` CPUs, so the pool narrows
    /// rather than oversubscribing. This — not the raw request — is what
    /// run manifests record.
    pub fn effective_workers(&self) -> usize {
        let budget = self.effective_threads().clamp(1, 64);
        (budget / self.effective_sim_threads() as usize).max(1)
    }

    /// Canonical inject spec for checkpoint fingerprints (`"none"` when
    /// no injection is configured). A resumed run whose `--inject`
    /// differs must not replay cells recorded under the old fault
    /// configuration.
    pub fn inject_fingerprint(&self) -> String {
        self.inject
            .map_or_else(|| "none".to_string(), |cfg| cfg.canonical_spec())
    }
}

/// Reports unrecognized `--` flags on stderr (once, comma-joined).
fn warn_unknown_flags(unknown: &[String]) {
    if !unknown.is_empty() {
        eprintln!(
            "warning: unrecognized flag(s): {} (see the options list below)\n\n{OPTIONS_USAGE}",
            unknown.join(", ")
        );
    }
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    flag: &str,
    wants: &str,
) -> Result<T, Error> {
    match args.get(i).map(|s| s.parse()) {
        Some(Ok(v)) => Ok(v),
        _ => Err(Error::config(format!(
            "{flag} expects {wants}, got {:?}",
            args.get(i)
        ))),
    }
}

/// Acquires a mutex even when a previous holder panicked: the protected
/// data in this runner (job queues, result slots, checkpoint state) stays
/// structurally valid across a cell panic, so poisoning is recoverable.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Whether per-cell progress lines should be written to stderr.
///
/// Controlled by `CCRAFT_PROGRESS` (`0` forces off, anything else forces
/// on); when unset, progress is shown only when stderr is a terminal, so
/// test runs and redirected logs stay clean.
fn progress_enabled() -> bool {
    match std::env::var("CCRAFT_PROGRESS") {
        Ok(v) => v != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// Renders one progress line: completed/total cells, the cell that just
/// finished, elapsed wall time, and a linear-extrapolation ETA.
fn progress_line(done: usize, total: usize, workload: &str, scheme: &str, elapsed: f64) -> String {
    if done < total {
        let eta = elapsed / done.max(1) as f64 * (total - done) as f64;
        format!("[{done}/{total}] {workload}/{scheme} done ({elapsed:.1}s elapsed, ETA {eta:.1}s)")
    } else {
        format!("[{done}/{total}] {workload}/{scheme} done ({elapsed:.1}s total)")
    }
}

/// One cell of a run matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// The workload.
    pub workload: Workload,
    /// The scheme.
    pub scheme: SchemeKind,
    /// Simulation results.
    pub stats: SimStats,
}

impl MatrixResult {
    /// Performance normalized to a baseline run of the same workload
    /// (baseline cycles / this run's cycles — higher is better, 1.0 means
    /// parity with the baseline).
    pub fn normalized_perf(&self, baseline: &SimStats) -> f64 {
        baseline.exec_cycles as f64 / self.stats.exec_cycles as f64
    }
}

/// Terminal state of one executed matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Completed normally.
    Ok,
    /// Panicked; the payload message is recorded.
    Failed {
        /// Panic message.
        message: String,
    },
    /// Exceeded the per-cell watchdog.
    TimedOut {
        /// The configured timeout.
        secs: u64,
    },
    /// Replayed from a `--resume`d checkpoint without executing.
    Resumed,
    /// Never executed: the sweep was aborted by `--fail-fast` before
    /// this cell's turn. Not checkpointed and not counted in metrics.
    Skipped,
}

impl CellStatus {
    /// `true` for [`CellStatus::Ok`] and [`CellStatus::Resumed`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok | CellStatus::Resumed)
    }
}

/// How one cell's result relates to the content-addressed result cache
/// (see `crate::cellcache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheDisposition {
    /// No cache was in play (plain experiment binaries).
    #[default]
    Uncached,
    /// Served from the cache; the simulation never ran.
    Hit,
    /// Simulated and inserted into the cache.
    Miss,
}

impl CacheDisposition {
    /// Stable string form used in checkpoints and manifests.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Uncached => "uncached",
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
        }
    }

    /// Parses the string form; anything unrecognized (including the
    /// empty string of pre-cache checkpoints) reads as `Uncached`.
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "hit" => CacheDisposition::Hit,
            "miss" => CacheDisposition::Miss,
            _ => CacheDisposition::Uncached,
        }
    }
}

/// What one executed cell produced: the simulation results plus the
/// truthful execution provenance the manifest records per cell.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// Simulation results.
    pub stats: SimStats,
    /// Threads the cell's cycle loop was *actually* sharded across
    /// (1 for fault-injection/telemetry fallbacks, whatever the request).
    pub sim_threads: u32,
    /// Result-cache disposition.
    pub cache: CacheDisposition,
}

impl CellRun {
    /// Wraps raw stats as a plain uncached, single-threaded execution.
    pub fn plain(stats: SimStats) -> Self {
        CellRun {
            stats,
            sim_threads: 1,
            cache: CacheDisposition::Uncached,
        }
    }
}

/// Full outcome of one matrix cell, successful or not.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The workload.
    pub workload: Workload,
    /// The scheme.
    pub scheme: SchemeKind,
    /// Terminal state.
    pub status: CellStatus,
    /// Simulation results, present when `status.is_ok()`.
    pub stats: Option<SimStats>,
    /// Execution attempts consumed (0 for resumed cells).
    pub attempts: u32,
    /// Per-attempt outcome log (`"attempt 1: failed: <msg>"`, ...),
    /// persisted into the checkpoint record for post-mortems.
    pub history: Vec<String>,
    /// Effective per-cell shard count (for resumed cells, the value the
    /// original execution recorded).
    pub sim_threads: u32,
    /// Result-cache disposition of the cell's stats.
    pub cache: CacheDisposition,
}

impl CellOutcome {
    /// `workload/scheme` identifier used in logs and checkpoints.
    pub fn cell_name(&self) -> String {
        format!("{}/{}", self.workload.name(), self.scheme.name())
    }

    /// The error equivalent of a non-ok outcome.
    pub fn as_error(&self) -> Option<Error> {
        match &self.status {
            CellStatus::Ok | CellStatus::Resumed | CellStatus::Skipped => None,
            CellStatus::Failed { message } => Some(Error::WorkerPanic {
                cell: self.cell_name(),
                message: message.clone(),
            }),
            CellStatus::TimedOut { secs } => Some(Error::Timeout {
                cell: self.cell_name(),
                secs: *secs,
            }),
        }
    }
}

/// The simulation body of one cell: returns the stats plus the truthful
/// execution provenance ([`CellRun`]). Must be `'static` so a
/// watchdogged cell can run on its own abandonable thread.
pub type CellBody = dyn Fn(usize, Workload, SchemeKind) -> CellRun + Send + Sync;

/// Runs one attempt of a cell: inline under `catch_unwind` without a
/// timeout, or on a watchdogged helper thread with one. On timeout the
/// helper thread is abandoned (it finishes in the background and its
/// result is dropped); the worker moves on.
fn execute_once(
    body: &Arc<CellBody>,
    idx: usize,
    workload: Workload,
    scheme: SchemeKind,
    timeout: Option<Duration>,
) -> Result<CellRun, CellStatus> {
    match timeout {
        None => catch_unwind(AssertUnwindSafe(|| body(idx, workload, scheme))).map_err(|p| {
            CellStatus::Failed {
                message: panic_message(p),
            }
        }),
        Some(dur) => {
            let (tx, rx) = mpsc::channel();
            let body = Arc::clone(body);
            let spawned = std::thread::Builder::new()
                .name(format!("cell-{}-{}", workload.name(), scheme.name()))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| body(idx, workload, scheme)))
                        .map_err(panic_message);
                    let _ = tx.send(result);
                });
            if let Err(e) = spawned {
                return Err(CellStatus::Failed {
                    message: format!("failed to spawn cell thread: {e}"),
                });
            }
            match rx.recv_timeout(dur) {
                Ok(Ok(stats)) => Ok(stats),
                Ok(Err(message)) => Err(CellStatus::Failed { message }),
                Err(_) => Err(CellStatus::TimedOut {
                    secs: dur.as_secs(),
                }),
            }
        }
    }
}

/// Runs a cell to its terminal state, consuming up to `1 + retries`
/// attempts.
fn run_one_cell(
    body: &Arc<CellBody>,
    idx: usize,
    workload: Workload,
    scheme: SchemeKind,
    opts: &ExpOptions,
) -> CellOutcome {
    let timeout = opts.cell_timeout_secs.map(Duration::from_secs);
    let mut attempts = 0;
    let mut history: Vec<String> = Vec::new();
    loop {
        attempts += 1;
        match execute_once(body, idx, workload, scheme, timeout) {
            Ok(run) => {
                history.push(format!("attempt {attempts}: ok"));
                return CellOutcome {
                    workload,
                    scheme,
                    status: CellStatus::Ok,
                    stats: Some(run.stats),
                    attempts,
                    history,
                    sim_threads: run.sim_threads,
                    cache: run.cache,
                };
            }
            Err(status) => {
                history.push(format!(
                    "attempt {attempts}: {}",
                    match &status {
                        CellStatus::Failed { message } => format!("failed: {message}"),
                        CellStatus::TimedOut { secs } => format!("timeout after {secs}s"),
                        other => format!("{other:?}"),
                    }
                ));
                if attempts > opts.retries {
                    return CellOutcome {
                        workload,
                        scheme,
                        status,
                        stats: None,
                        attempts,
                        history,
                        // The cell never completed; record the shard
                        // count it was *going to* run with so degraded
                        // manifests stay self-consistent.
                        sim_threads: opts.effective_cell_sim_threads(),
                        cache: CacheDisposition::Uncached,
                    };
                }
                eprintln!(
                    "warning: cell {}/{} attempt {attempts} failed; retrying",
                    workload.name(),
                    scheme.name()
                );
            }
        }
    }
}

/// The generic matrix engine: fans `workloads × schemes` out over a
/// worker pool, isolates each cell, checkpoints completions through the
/// global session, and returns every outcome in deterministic
/// (workload-major, scheme-minor) order.
fn run_matrix_engine(
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
    body: Arc<CellBody>,
) -> Vec<CellOutcome> {
    let session = checkpoint::current();
    let prefix = match &session {
        Some(s) => lock_clean(s).next_matrix_prefix(),
        None => "m0".to_string(),
    };

    let all: Vec<(usize, Workload, SchemeKind)> = workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| (w, s)))
        .enumerate()
        .map(|(i, (w, s))| (i, w, s))
        .collect();
    let total = all.len();

    // Resume pass: cells already completed in the checkpoint replay their
    // recorded stats and never enter the queue.
    let mut slots: Vec<Option<CellOutcome>> = (0..total).map(|_| None).collect();
    let mut jobs: Vec<(usize, Workload, SchemeKind)> = Vec::with_capacity(total);
    for &(idx, w, s) in &all {
        let key = format!("{prefix}/{}/{}", w.name(), s.name());
        let replay = session.as_ref().and_then(|sess| {
            let sess = lock_clean(sess);
            sess.resumable(&key).and_then(|r| {
                r.stats
                    .clone()
                    .map(|stats| (stats, r.sim_threads, r.cache.clone()))
            })
        });
        match replay {
            Some((stats, sim_threads, cache)) => {
                slots[idx] = Some(CellOutcome {
                    workload: w,
                    scheme: s,
                    status: CellStatus::Resumed,
                    stats: Some(stats),
                    attempts: 0,
                    history: vec!["resumed from checkpoint".to_string()],
                    // Replay the provenance the original execution
                    // recorded, not this run's request.
                    sim_threads,
                    cache: CacheDisposition::from_str_lossy(&cache),
                });
            }
            None => jobs.push((idx, w, s)),
        }
    }
    let resumed = total - jobs.len();
    if resumed > 0 {
        eprintln!("resume: skipping {resumed}/{total} cells already in checkpoint");
    }

    let results: Mutex<&mut Vec<Option<CellOutcome>>> = Mutex::new(&mut slots);
    let queue = Mutex::new(jobs);
    let workers = opts.effective_workers();
    let metrics = crate::metrics::current();
    if let Some(m) = &metrics {
        m.add_planned(total as u64);
        m.add_resumed(resumed as u64);
        m.set_workers(workers as u64);
    }
    let started = Instant::now();
    let completed = AtomicUsize::new(resumed);
    let show_progress = progress_enabled();
    // Set by a worker that hit a permanent cell failure under
    // `--fail-fast`; the remaining queue drains unexecuted.
    let abort = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::SeqCst) {
                    break;
                }
                let job = lock_clean(&queue).pop();
                let Some((idx, workload, scheme)) = job else {
                    break;
                };
                if let Some(m) = &metrics {
                    m.worker_started();
                }
                let cell_started = Instant::now();
                let outcome = run_one_cell(&body, idx, workload, scheme, opts);
                // Degraded mode: a permanently failing cell is
                // quarantined (failure recorded in checkpoint, manifest
                // and metrics) and the sweep continues; it no longer
                // counts toward completion, so the endpoint's ETA can
                // reach zero on degraded runs.
                let quarantined = !outcome.status.is_ok() && !opts.fail_fast;
                if let Some(m) = &metrics {
                    m.observe_cell(
                        cell_started.elapsed().as_secs_f64(),
                        outcome.status.is_ok(),
                        outcome.attempts,
                        quarantined,
                    );
                    m.worker_finished();
                }
                if let Some(err) = outcome.as_error() {
                    eprintln!("warning: {err}");
                    if opts.fail_fast {
                        abort.store(true, Ordering::SeqCst);
                        eprintln!("fail-fast: aborting sweep after {}", outcome.cell_name());
                    }
                }
                if let Some(sess) = &session {
                    let record = CellRecord {
                        key: format!("{prefix}/{}", outcome.cell_name()),
                        status: match &outcome.status {
                            CellStatus::Ok | CellStatus::Resumed => STATUS_OK.to_string(),
                            CellStatus::Failed { .. } => STATUS_FAILED.to_string(),
                            CellStatus::TimedOut { .. } => STATUS_TIMEOUT.to_string(),
                            // Skipped cells never reach this point: they
                            // are filled in after the scope joins.
                            CellStatus::Skipped => unreachable!("skipped cell in worker"),
                        },
                        message: outcome.as_error().map(|e| e.to_string()),
                        attempts: outcome.attempts,
                        history: outcome.history.clone(),
                        stats: outcome.stats.clone(),
                        sim_threads: outcome.sim_threads,
                        cache: outcome.cache.as_str().to_string(),
                    };
                    if let Err(e) = lock_clean(sess).record(record) {
                        eprintln!("warning: failed to write checkpoint: {e}");
                    }
                }
                lock_clean(&results)[idx] = Some(outcome);
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                if show_progress {
                    eprintln!(
                        "{}",
                        progress_line(
                            done,
                            total,
                            workload.name(),
                            scheme.name(),
                            started.elapsed().as_secs_f64(),
                        )
                    );
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, o)| match o {
            Some(o) => o,
            // A slot can only be empty after a `--fail-fast` abort
            // drained the queue without executing it; otherwise every
            // index is either prefilled or completed by a worker.
            None if opts.fail_fast => {
                let (_, w, s) = all[idx];
                CellOutcome {
                    workload: w,
                    scheme: s,
                    status: CellStatus::Skipped,
                    stats: None,
                    attempts: 0,
                    history: vec!["skipped: --fail-fast abort".to_string()],
                    sim_threads: opts.effective_cell_sim_threads(),
                    cache: CacheDisposition::Uncached,
                }
            }
            None => unreachable!("matrix cell left without an outcome"),
        })
        .collect()
}

/// Runs one standard simulation cell: generate the workload trace, run
/// the scheme, with per-cell-seeded fault injection when configured.
/// Returns the stats along with the truthful execution provenance —
/// fault-injection cells take the single-threaded instrumented loop, so
/// their [`CellRun::sim_threads`] is 1 whatever `--sim-threads` asked.
pub fn run_cell(
    cfg: &GpuConfig,
    opts: &ExpOptions,
    idx: usize,
    workload: Workload,
    scheme: SchemeKind,
) -> CellRun {
    let trace = workload.generate(opts.size, opts.seed);
    let sim_threads = opts.effective_cell_sim_threads();
    let stats = match opts.inject {
        // Sharded execution is bit-identical, so the exec-aware entry
        // point is safe for every cell; with `--sim-threads 1` it is
        // the plain loop.
        None => {
            run_scheme_exec(
                cfg,
                scheme,
                &trace,
                &TelemetryConfig::disabled(),
                None,
                false,
                &ccraft_sim::ExecConfig { sim_threads },
            )
            .stats
        }
        Some(fc) => {
            // Each cell gets its own injection stream, derived from the
            // experiment seed and the cell index so runs reproduce.
            let seed = opts
                .seed
                .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            run_scheme_instrumented(
                cfg,
                scheme,
                &trace,
                &TelemetryConfig::disabled(),
                Some(&fc.with_seed(seed)),
            )
            .stats
        }
    };
    CellRun {
        stats,
        sim_threads,
        cache: CacheDisposition::Uncached,
    }
}

/// Builds the standard cell body around [`run_cell`].
fn standard_body(cfg: &GpuConfig, opts: &ExpOptions) -> Arc<CellBody> {
    let cfg = *cfg;
    let opts = *opts;
    Arc::new(move |idx, workload, scheme| run_cell(&cfg, &opts, idx, workload, scheme))
}

/// Runs every `(workload, scheme)` pair in parallel and returns the full
/// per-cell outcomes — including failed and timed-out cells — in
/// deterministic (workload-major, scheme-minor) order.
///
/// Each cell is an independent simulation with its own scheme instance,
/// isolated by `catch_unwind`; a panicking cell is reported in its
/// outcome and the rest of the matrix completes.
pub fn run_matrix_cells(
    cfg: &GpuConfig,
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
) -> Vec<CellOutcome> {
    run_matrix_engine(workloads, schemes, opts, standard_body(cfg, opts))
}

/// [`run_matrix_cells`] with a caller-supplied cell body — the hook the
/// `ccraft-serve` daemon uses to wrap [`run_cell`] with a
/// content-addressed cache lookup while keeping the engine's worker
/// pool, `catch_unwind` isolation, retries and checkpoint integration.
pub fn run_matrix_cells_with_body(
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
    body: Arc<CellBody>,
) -> Vec<CellOutcome> {
    run_matrix_engine(workloads, schemes, opts, body)
}

/// Runs every `(workload, scheme)` pair in parallel and returns the
/// successful results in deterministic (workload-major, scheme-minor)
/// order.
///
/// Failed or timed-out cells are reported on stderr (and in the
/// checkpoint/manifest via the active session) and omitted from the
/// returned vector; callers that need them use [`run_matrix_cells`].
pub fn run_matrix(
    cfg: &GpuConfig,
    workloads: &[Workload],
    schemes: &[SchemeKind],
    opts: &ExpOptions,
) -> Vec<MatrixResult> {
    run_matrix_cells(cfg, workloads, schemes, opts)
        .into_iter()
        .filter_map(|o| {
            let (workload, scheme) = (o.workload, o.scheme);
            o.stats.map(|stats| MatrixResult {
                workload,
                scheme,
                stats,
            })
        })
        .collect()
}

/// Checkpoint fingerprint for one experiment invocation.
///
/// Covers everything that changes what a cell computes: experiment id,
/// problem size, base seed, and the canonical `--inject` spec. A
/// checkpoint recorded under a different fingerprint is discarded on
/// resume (the session starts fresh), so e.g. rerunning `exp-faults
/// --resume` with a different fault pattern or rate re-runs every cell
/// instead of silently replaying stale results.
pub fn experiment_fingerprint(id: &str, opts: &ExpOptions) -> String {
    format!(
        "{id}/{}/{}/{}",
        opts.size,
        opts.seed,
        opts.inject_fingerprint()
    )
}

/// Extracts the `--metrics-addr` value from `std::env::args`, if given.
/// Parsed separately from [`ExpOptions`] (which is `Copy` and carries no
/// allocations) and ignored by `ExpOptions::parse`'s pass-through rule.
fn metrics_addr_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--metrics-addr")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Binds the live metrics endpoint when `--metrics-addr` was given and
/// installs its registry as the process-global sink the matrix engine
/// reports into. A bind failure is a warning, never a run failure.
fn start_metrics_server() -> Option<crate::metrics::MetricsServer> {
    let addr = metrics_addr_from_args()?;
    let registry = Arc::new(crate::metrics::MetricsRegistry::new());
    match crate::metrics::MetricsServer::bind(&addr, Arc::clone(&registry)) {
        Ok(server) => {
            crate::metrics::install(registry);
            eprintln!("metrics: serving http://{}/metrics", server.addr());
            Some(server)
        }
        Err(e) => {
            eprintln!("warning: --metrics-addr {addr}: bind failed ({e}); metrics disabled");
            None
        }
    }
}

/// Standard entry point for an experiment binary: parses [`ExpOptions`]
/// from the command line, starts the live metrics endpoint when
/// `--metrics-addr` was given, installs a checkpoint session at
/// `results/checkpoint.json` (resuming it under `--resume`), times
/// `body`, and writes a `results/manifest.json` recording what produced
/// the results directory — including a warning per failed or timed-out
/// cell.
///
/// A `body` that returns an error still gets its manifest (stamped with
/// the failure), then the process exits with status 2.
///
/// Manifest- and checkpoint-write failures are reported on stderr but do
/// not fail the run — the experiment's own artifacts are already on disk.
pub fn run_experiment(id: &str, body: impl FnOnce(&ExpOptions) -> Result<(), Error>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown_flags) = match ExpOptions::parse_with_unknown(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{OPTIONS_USAGE}");
            std::process::exit(EXIT_FAILED);
        }
    };
    warn_unknown_flags(&unknown_flags);
    let started = Instant::now();
    // I/O fault injection for chaos testing, off unless CCRAFT_CHAOS is
    // set (ccx chaos-soak sets it on the child it spawns).
    match crate::chaos::init_from_env() {
        Ok(true) => {
            if let Some(cfg) = crate::chaos::current() {
                eprintln!("chaos: I/O fault injection active ({})", cfg.to_spec());
            }
        }
        Ok(false) => {}
        Err(e) => {
            eprintln!("error: {}: {e}", crate::chaos::CHAOS_ENV);
            std::process::exit(EXIT_FAILED);
        }
    }
    let metrics_server = start_metrics_server();
    let fingerprint = experiment_fingerprint(id, &opts);
    let session = match crate::report::results_dir() {
        Ok(dir) => Some(checkpoint::install(checkpoint::Session::start(
            &fingerprint,
            dir.join("checkpoint.json"),
            opts.resume,
        ))),
        Err(e) => {
            eprintln!("warning: results dir unavailable ({e}); checkpointing disabled");
            None
        }
    };
    let result = body(&opts);
    let mut manifest = RunManifest::new(id);
    // Behavior-altering feature flags go into provenance so perf-diff can
    // refuse to compare e.g. an oracle build against a stock one.
    if cfg!(feature = "check-invariants") {
        manifest
            .provenance
            .features
            .push("check-invariants".to_string());
    }
    manifest.size = opts.size.to_string();
    manifest.seed = opts.seed;
    manifest.threads = opts.effective_workers();
    // The global field records the *requested* shard count; the per-cell
    // records below carry the effective values (fault-injection cells
    // fall back to 1), which is what perf-diff's guard reads.
    manifest.sim_threads = opts.effective_sim_threads();
    manifest.wall_time_secs = started.elapsed().as_secs_f64();
    // Unrecognized flags are non-fatal but must not vanish: a typo like
    // `--sim-thread 4` would otherwise silently change what ran.
    for flag in &unknown_flags {
        manifest.warn(format!("unrecognized flag: {flag}"));
    }
    let mut failed_cells = 0usize;
    if let Some(sess) = &session {
        let sess = lock_clean(sess);
        manifest.note("checkpoint_cells", sess.cells().len() as f64);
        manifest.note(
            "cell_attempts_total",
            sess.cells().iter().map(|c| f64::from(c.attempts)).sum(),
        );
        for cell in sess.cells() {
            manifest.record_cell(ccraft_telemetry::manifest::CellManifest {
                cell: cell.key.clone(),
                sim_threads: cell.sim_threads,
                cache: if cell.cache.is_empty() {
                    CacheDisposition::Uncached.as_str().to_string()
                } else {
                    cell.cache.clone()
                },
                status: cell.status.clone(),
            });
        }
        failed_cells = sess.failed_cells();
        // Loader warnings (quarantined corrupt checkpoint, schema
        // mismatch) reach the manifest, not just stderr.
        for warning in sess.warnings() {
            manifest.warn(warning.clone());
        }
        for warning in sess.failure_messages() {
            eprintln!("warning: {warning}");
            manifest.warn(warning);
        }
    }
    // Graceful degradation: a permanently failing cell is quarantined
    // (checkpoint + manifest + metric) and the sweep completes with a
    // distinct exit code; --fail-fast opts out and fails outright.
    let quarantined = if opts.fail_fast { 0 } else { failed_cells };
    manifest.note("cells_quarantined", quarantined as f64);
    if quarantined > 0 {
        let w = format!("degraded run: {quarantined} cell(s) quarantined after all attempts");
        eprintln!("warning: {w}");
        manifest.warn(w);
    }
    if let Err(e) = &result {
        eprintln!("error: {id}: {e}");
        manifest.warn(format!("experiment failed: {e}"));
    }
    checkpoint::clear();
    if let Some(server) = metrics_server {
        crate::metrics::clear();
        server.shutdown();
    }
    manifest.stamp();
    match crate::report::write_manifest(&manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write manifest.json: {e}"),
    }
    let exit = match &result {
        // A report that only failed because quarantined cells left holes
        // in the matrix is a *degraded* completion, not a failure.
        Err(Error::MissingCell { .. }) if quarantined > 0 => EXIT_DEGRADED,
        Err(_) => EXIT_FAILED,
        Ok(()) if opts.fail_fast && failed_cells > 0 => EXIT_FAILED,
        Ok(()) if quarantined > 0 => EXIT_DEGRADED,
        Ok(()) => EXIT_OK,
    };
    if exit != EXIT_OK {
        std::process::exit(exit);
    }
}

/// Finds the result of `(workload, scheme)` in a matrix.
pub fn find<'a>(
    results: &'a [MatrixResult],
    workload: Workload,
    scheme_name: &str,
) -> Option<&'a MatrixResult> {
    results
        .iter()
        .find(|r| r.workload == workload && r.scheme.name() == scheme_name)
}

/// [`find`], for cells a report cannot proceed without: a missing cell
/// (its simulation failed or timed out) becomes [`Error::MissingCell`]
/// instead of a panic, so `exp-all` reports the failed figure and moves
/// on rather than aborting the whole evaluation.
///
/// # Errors
///
/// Returns [`Error::MissingCell`] when the cell is absent.
pub fn require<'a>(
    results: &'a [MatrixResult],
    workload: Workload,
    scheme_name: &str,
) -> Result<&'a MatrixResult, Error> {
    find(results, workload, scheme_name).ok_or_else(|| Error::MissingCell {
        cell: format!("{}/{scheme_name}", workload.name()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccraft_core::factory::run_scheme;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tiny_opts(threads: usize) -> ExpOptions {
        ExpOptions {
            size: SizeClass::Tiny,
            seed: 1,
            threads,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn parse_accepts_valid_options() {
        let o = ExpOptions::parse(&argv(&["--size", "tiny", "--seed", "7", "--threads", "3"]))
            .expect("valid options parse");
        assert_eq!(o.size, SizeClass::Tiny);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 3);
        // Defaults survive an empty argument list.
        let d = ExpOptions::parse(&[]).unwrap();
        assert_eq!(d.size, SizeClass::Small);
        assert_eq!(d.seed, 1);
        assert_eq!(d.threads, 0);
        assert!(d.inject.is_none());
        assert!(!d.resume);
        assert_eq!(d.cell_timeout_secs, None);
        assert_eq!(d.retries, 0);
    }

    #[test]
    fn parse_accepts_resilience_options() {
        let o = ExpOptions::parse(&argv(&[
            "--inject",
            "symbol:1e-4",
            "--resume",
            "--cell-timeout",
            "30",
            "--retries",
            "2",
        ]))
        .expect("resilience options parse");
        assert!(o.inject.is_some());
        assert!(o.resume);
        assert_eq!(o.cell_timeout_secs, Some(30));
        assert_eq!(o.retries, 2);
        assert!(!o.fail_fast);
        let o = ExpOptions::parse(&argv(&["--fail-fast"])).expect("parses");
        assert!(o.fail_fast);
    }

    #[test]
    fn parse_rejects_malformed_values() {
        let e = ExpOptions::parse(&argv(&["--seed", "not-a-number"]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("--seed"), "{e}");
        let e = ExpOptions::parse(&argv(&["--threads"]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("--threads"), "{e}");
        let e = ExpOptions::parse(&argv(&["--size", "huge"]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("--size"), "{e}");
        let e = ExpOptions::parse(&argv(&["--inject", "nosuch:1"]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("--inject"), "{e}");
        let e = ExpOptions::parse(&argv(&["--cell-timeout", "0"]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("--cell-timeout"), "{e}");
        // Typed: all of these are configuration errors.
        assert!(matches!(
            ExpOptions::parse(&argv(&["--retries", "x"])),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn parse_passes_unknown_flags_through() {
        let o = ExpOptions::parse(&argv(&["--workload", "spmv", "--energy", "--seed", "4"]))
            .expect("unknown flags are ignored");
        assert_eq!(o.seed, 4);
        assert_eq!(o.size, SizeClass::Small);
    }

    #[test]
    fn parse_with_unknown_reports_typos_but_not_harness_flags() {
        // A typo like --sim-thread must be surfaced, not swallowed.
        let (o, unknown) =
            ExpOptions::parse_with_unknown(&argv(&["--sim-thread", "4", "--seed", "2"]))
                .expect("unknown flags never fail the parse");
        assert_eq!(o.seed, 2);
        assert_eq!(o.sim_threads, 1, "the typo must not set sim_threads");
        assert_eq!(unknown, vec!["--sim-thread".to_string()]);
        // Flags the harness itself consumes (or hands to specific
        // binaries) are allowlisted, not reported.
        let (_, unknown) = ExpOptions::parse_with_unknown(&argv(&[
            "--metrics-addr",
            "127.0.0.1:0",
            "--workload",
            "spmv",
        ]))
        .expect("allowlisted flags parse");
        assert!(unknown.is_empty(), "{unknown:?}");
        // Bare positional values are not flags and are not reported.
        let (_, unknown) =
            ExpOptions::parse_with_unknown(&argv(&["spmv"])).expect("positional ignored");
        assert!(unknown.is_empty(), "{unknown:?}");
    }

    #[test]
    fn effective_cell_sim_threads_falls_back_under_injection() {
        let sharded = ExpOptions {
            sim_threads: 4,
            ..tiny_opts(1)
        };
        assert_eq!(sharded.effective_cell_sim_threads(), 4);
        let injected = ExpOptions {
            sim_threads: 4,
            inject: Some(FaultConfig::parse("symbol:1.0").expect("valid spec")),
            ..tiny_opts(1)
        };
        assert_eq!(
            injected.effective_cell_sim_threads(),
            1,
            "fault injection forces single-threaded simulation"
        );
    }

    #[test]
    fn outcomes_carry_effective_sim_threads_and_cache_disposition() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        // Sharded run: cells report the requested shard count.
        let sharded = ExpOptions {
            sim_threads: 2,
            ..tiny_opts(1)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &sharded,
            standard_body(&cfg, &sharded),
        );
        assert_eq!(outcomes[0].sim_threads, 2);
        assert_eq!(outcomes[0].cache, CacheDisposition::Uncached);
        // Injected run: the per-cell truth is 1 even though 2 was asked.
        let injected = ExpOptions {
            sim_threads: 2,
            inject: Some(FaultConfig::parse("symbol:1.0").expect("valid spec")),
            ..tiny_opts(1)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &injected,
            standard_body(&cfg, &injected),
        );
        assert_eq!(
            outcomes[0].sim_threads, 1,
            "injection cells record the effective value, not the request"
        );
    }

    #[test]
    fn resume_replays_recorded_cell_provenance() {
        let _guard = crate::checkpoint::test_guard();
        let dir =
            std::env::temp_dir().join(format!("ccraft-runner-provenance-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            sim_threads: 2,
            ..tiny_opts(1)
        };
        checkpoint::install(checkpoint::Session::start("p", path.clone(), false));
        let first = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
            standard_body(&cfg, &opts),
        );
        checkpoint::clear();
        assert_eq!(first[0].sim_threads, 2);

        checkpoint::install(checkpoint::Session::start("p", path.clone(), true));
        let second = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
            standard_body(&cfg, &opts),
        );
        checkpoint::clear();
        assert_eq!(second[0].status, CellStatus::Resumed);
        assert_eq!(
            second[0].sim_threads, 2,
            "resume must replay the provenance recorded at execution time"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_line_extrapolates_eta() {
        let line = progress_line(2, 8, "spmv", "cachecraft", 4.0);
        assert!(line.contains("[2/8]"), "{line}");
        assert!(line.contains("spmv/cachecraft"), "{line}");
        assert!(line.contains("ETA 12.0s"), "{line}");
        let last = progress_line(8, 8, "spmv", "cachecraft", 16.0);
        assert!(last.contains("16.0s total"), "{last}");
        // Never divides by zero even if called before any completion.
        let first = progress_line(0, 8, "w", "s", 1.0);
        assert!(first.contains("[0/8]"), "{first}");
    }

    #[test]
    fn matrix_runs_all_cells_in_order() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        let opts = tiny_opts(2);
        let workloads = [Workload::VecAdd, Workload::Histogram];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ];
        let results = run_matrix(&cfg, &workloads, &schemes, &opts);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].workload, Workload::VecAdd);
        assert_eq!(results[0].scheme.name(), "no-protection");
        assert_eq!(results[3].workload, Workload::Histogram);
        assert_eq!(results[3].scheme.name(), "inline-naive");
        for r in &results {
            assert!(!r.stats.timed_out);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        let workloads = [Workload::Saxpy];
        let schemes = [SchemeKind::InlineNaive { coverage: 8 }];
        let par = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                seed: 5,
                ..tiny_opts(4)
            },
        );
        let seq = run_matrix(
            &cfg,
            &workloads,
            &schemes,
            &ExpOptions {
                seed: 5,
                ..tiny_opts(1)
            },
        );
        assert_eq!(par[0].stats, seq[0].stats);
    }

    #[test]
    fn normalized_perf_is_relative() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        let opts = tiny_opts(1);
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
        );
        let baseline = &results[0].stats;
        assert!((results[0].normalized_perf(baseline) - 1.0).abs() < 1e-12);
        assert!(results[1].normalized_perf(baseline) <= 1.0);
    }

    #[test]
    fn find_locates_cells() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        let opts = tiny_opts(1);
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
        );
        assert!(find(&results, Workload::VecAdd, "no-protection").is_some());
        assert!(find(&results, Workload::VecAdd, "cachecraft").is_none());
    }

    #[test]
    fn panicking_cell_fails_alone() {
        let _guard = crate::checkpoint::test_guard();
        // A body that panics for exactly one cell: the rest of the matrix
        // completes and the failure carries the panic message.
        let opts = tiny_opts(2);
        let body: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::Saxpy && scheme.name() == "no-protection" {
                panic!("deliberate test panic");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd, Workload::Saxpy],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
            body,
        );
        assert_eq!(outcomes.len(), 4);
        let failed: Vec<_> = outcomes.iter().filter(|o| !o.status.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].cell_name(), "saxpy/no-protection");
        match &failed[0].status {
            CellStatus::Failed { message } => {
                assert!(message.contains("deliberate test panic"), "{message}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(failed[0].stats.is_none());
        assert_eq!(failed[0].attempts, 1);
        // Every other cell completed with stats.
        assert_eq!(outcomes.iter().filter(|o| o.status.is_ok()).count(), 3);
        // And the lossy view simply omits the failed cell.
        let err = failed[0].as_error().expect("non-ok maps to an error");
        assert!(matches!(err, Error::WorkerPanic { .. }));
    }

    #[test]
    fn retries_rerun_failing_cells() {
        let _guard = crate::checkpoint::test_guard();
        use std::sync::atomic::AtomicU32;
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in = Arc::clone(&calls);
        let body: Arc<CellBody> = Arc::new(move |_, workload, scheme| {
            // Fail the first attempt, succeed on retry.
            if calls_in.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let opts = ExpOptions {
            retries: 1,
            ..tiny_opts(1)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
            body,
        );
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].status.is_ok());
        assert_eq!(outcomes[0].attempts, 2);
    }

    #[test]
    fn fail_fast_skips_remaining_cells() {
        let _guard = crate::checkpoint::test_guard();
        // Single worker; the queue is popped from the back, so histogram
        // (the last matrix cell) executes first. Failing it permanently
        // under --fail-fast must leave the remaining cells Skipped
        // instead of executing them.
        let body: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::Histogram && scheme.name() == "no-protection" {
                panic!("fail-fast trigger");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let opts = ExpOptions {
            fail_fast: true,
            ..tiny_opts(1)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd, Workload::Saxpy, Workload::Histogram],
            &[SchemeKind::NoProtection],
            &opts,
            body,
        );
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[2].status, CellStatus::Failed { .. }));
        let skipped = outcomes
            .iter()
            .filter(|o| o.status == CellStatus::Skipped)
            .count();
        let executed_ok = outcomes.iter().filter(|o| o.status.is_ok()).count();
        assert_eq!(skipped, 2, "{outcomes:?}");
        assert_eq!(executed_ok, 0);
        for o in outcomes.iter().filter(|o| o.status == CellStatus::Skipped) {
            assert!(o.stats.is_none());
            assert_eq!(o.attempts, 0);
            assert!(o.as_error().is_none());
        }
    }

    #[test]
    fn without_fail_fast_failures_do_not_abort() {
        let _guard = crate::checkpoint::test_guard();
        let body: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::VecAdd {
                panic!("quarantine me");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let registry = Arc::new(crate::metrics::MetricsRegistry::new());
        crate::metrics::install(Arc::clone(&registry));
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd, Workload::Saxpy, Workload::Histogram],
            &[SchemeKind::NoProtection],
            &tiny_opts(1),
            body,
        );
        crate::metrics::clear();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.status != CellStatus::Skipped));
        assert_eq!(outcomes.iter().filter(|o| o.status.is_ok()).count(), 2);
        assert!(registry
            .render()
            .contains("ccraft_cells_quarantined_total 1"));
    }

    #[test]
    fn attempt_history_tracks_every_attempt() {
        let _guard = crate::checkpoint::test_guard();
        use std::sync::atomic::AtomicU32;
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in = Arc::clone(&calls);
        let body: Arc<CellBody> = Arc::new(move |_, workload, scheme| {
            if calls_in.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky twice");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let opts = ExpOptions {
            retries: 2,
            ..tiny_opts(1)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
            body,
        );
        assert_eq!(outcomes[0].attempts, 3);
        assert_eq!(
            outcomes[0].history,
            vec![
                "attempt 1: failed: flaky twice",
                "attempt 2: failed: flaky twice",
                "attempt 3: ok"
            ]
        );
    }

    #[test]
    fn watchdog_times_out_hung_cells() {
        let _guard = crate::checkpoint::test_guard();
        let body: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::VecAdd {
                // A hung cell: far longer than the watchdog.
                std::thread::sleep(Duration::from_secs(30));
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let opts = ExpOptions {
            cell_timeout_secs: Some(1),
            ..tiny_opts(2)
        };
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd, Workload::Saxpy],
            &[SchemeKind::NoProtection],
            &opts,
            body,
        );
        assert_eq!(outcomes.len(), 2);
        assert_eq!(
            outcomes[0].status,
            CellStatus::TimedOut { secs: 1 },
            "vecadd must hit the watchdog"
        );
        assert!(outcomes[1].status.is_ok(), "saxpy completes normally");
        assert!(matches!(
            outcomes[0].as_error(),
            Some(Error::Timeout { secs: 1, .. })
        ));
    }

    #[test]
    fn injection_reaches_matrix_cells() {
        let _guard = crate::checkpoint::test_guard();
        let cfg = GpuConfig::tiny();
        let opts = ExpOptions {
            inject: Some(FaultConfig::parse("symbol:1.0").expect("valid spec")),
            ..tiny_opts(2)
        };
        let results = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            let fs = r.stats.faults.expect("fault stats attached");
            assert!(fs.injected > 0, "{}", r.scheme.name());
        }
        // Same options reproduce bit-identically (per-cell derived seeds).
        let again = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[
                SchemeKind::NoProtection,
                SchemeKind::InlineNaive { coverage: 8 },
            ],
            &opts,
        );
        for (a, b) in results.iter().zip(&again) {
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn checkpoint_session_records_and_resumes_cells() {
        let _guard = crate::checkpoint::test_guard();
        // First run: one cell panics, three succeed; all four land in the
        // checkpoint. Second run with --resume: only the failed cell (and
        // nothing else) executes.
        let dir = std::env::temp_dir().join(format!("ccraft-runner-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let workloads = [Workload::VecAdd, Workload::Saxpy];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ];

        let panicky: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::Saxpy && scheme.name() == "inline-naive" {
                panic!("first-run casualty");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        checkpoint::install(checkpoint::Session::start("t", path.clone(), false));
        let first = run_matrix_engine(&workloads, &schemes, &tiny_opts(2), panicky);
        checkpoint::clear();
        assert_eq!(first.iter().filter(|o| o.status.is_ok()).count(), 3);

        // The checkpoint file holds all four cells, one failed.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("first-run casualty"), "{text}");

        // Resumed run: executing any previously-successful cell panics
        // the test, proving only the failed cell re-runs.
        let executed = Arc::new(Mutex::new(Vec::new()));
        let executed_in = Arc::clone(&executed);
        let strict: Arc<CellBody> = Arc::new(move |_, workload, scheme| {
            lock_clean(&executed_in).push(format!("{}/{}", workload.name(), scheme.name()));
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        checkpoint::install(checkpoint::Session::start("t", path.clone(), true));
        let second = run_matrix_engine(&workloads, &schemes, &tiny_opts(2), strict);
        checkpoint::clear();
        assert_eq!(second.len(), 4);
        assert!(second.iter().all(|o| o.status.is_ok()));
        assert_eq!(
            second
                .iter()
                .filter(|o| o.status == CellStatus::Resumed)
                .count(),
            3
        );
        let ran = lock_clean(&executed).clone();
        assert_eq!(ran, vec!["saxpy/inline-naive".to_string()]);
        // After the resume, the checkpoint holds four completed cells —
        // read back through the verified store (the file carries a
        // checksum footer now).
        let (text, verified) = crate::store::read_verified_string(&path).unwrap();
        assert!(verified, "checkpoint must carry a valid checksum footer");
        let cp: crate::checkpoint::Checkpoint = serde_json::from_str(&text).unwrap();
        assert_eq!(cp.cells.len(), 4);
        assert!(cp.cells.iter().all(|c| c.is_ok()));
        // Attempt history was persisted per cell.
        assert!(cp.cells.iter().all(|c| !c.history.is_empty()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_changed_inject_reruns_all_cells() {
        let _guard = crate::checkpoint::test_guard();
        let dir = std::env::temp_dir().join(format!("ccraft-runner-inject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let workloads = [Workload::VecAdd];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ];

        // First run records both cells under the symbol:1.0 fingerprint.
        let opts_a = ExpOptions {
            inject: Some(FaultConfig::parse("symbol:1.0").expect("valid spec")),
            ..tiny_opts(1)
        };
        let fp_a = experiment_fingerprint("exp-faults", &opts_a);
        checkpoint::install(checkpoint::Session::start(&fp_a, path.clone(), false));
        let first = run_matrix_engine(
            &workloads,
            &schemes,
            &opts_a,
            standard_body(&GpuConfig::tiny(), &opts_a),
        );
        checkpoint::clear();
        assert!(first.iter().all(|o| o.status.is_ok()));

        // Resuming with a *different* inject spec must not replay those
        // cells: the fingerprint differs, so the session starts fresh and
        // every cell executes again.
        let opts_b = ExpOptions {
            inject: Some(FaultConfig::parse("bit2:1.0").expect("valid spec")),
            ..tiny_opts(1)
        };
        let fp_b = experiment_fingerprint("exp-faults", &opts_b);
        assert_ne!(fp_a, fp_b, "inject spec must reach the fingerprint");
        let executed = Arc::new(Mutex::new(Vec::new()));
        let executed_in = Arc::clone(&executed);
        let inner = standard_body(&GpuConfig::tiny(), &opts_b);
        let tracking: Arc<CellBody> = Arc::new(move |idx, workload, scheme| {
            lock_clean(&executed_in).push(format!("{}/{}", workload.name(), scheme.name()));
            inner(idx, workload, scheme)
        });
        checkpoint::install(checkpoint::Session::start(&fp_b, path.clone(), true));
        let second = run_matrix_engine(&workloads, &schemes, &opts_b, tracking);
        checkpoint::clear();
        assert!(second.iter().all(|o| o.status.is_ok()));
        assert!(
            second.iter().all(|o| o.status != CellStatus::Resumed),
            "no cell may be resumed across an inject change"
        );
        assert_eq!(lock_clean(&executed).len(), 2, "both cells re-ran");

        // Sanity inverse: an unchanged spec still resumes.
        checkpoint::install(checkpoint::Session::start(&fp_b, path.clone(), true));
        let third = run_matrix_engine(
            &workloads,
            &schemes,
            &opts_b,
            standard_body(&GpuConfig::tiny(), &opts_b),
        );
        checkpoint::clear();
        assert!(third.iter().all(|o| o.status == CellStatus::Resumed));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn thread_count_does_not_change_stats() {
        let _guard = crate::checkpoint::test_guard();
        // Guards the idle-skip and buffer-reuse rewrites against any
        // order-dependence: an 8-worker run of a mixed matrix must produce
        // bit-identical SimStats to a sequential run.
        let cfg = GpuConfig::tiny();
        let workloads = [Workload::VecAdd, Workload::Saxpy, Workload::Histogram];
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
            SchemeKind::CacheCraft(ccraft_core::CacheCraftConfig::for_machine(&cfg)),
        ];
        let opts_1 = ExpOptions {
            seed: 7,
            ..tiny_opts(1)
        };
        let opts_8 = ExpOptions {
            seed: 7,
            ..tiny_opts(8)
        };
        let seq = run_matrix(&cfg, &workloads, &schemes, &opts_1);
        let par = run_matrix(&cfg, &workloads, &schemes, &opts_8);
        assert_eq!(seq.len(), 9);
        assert_eq!(par.len(), 9);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.scheme.name(), b.scheme.name());
            assert_eq!(
                a.stats,
                b.stats,
                "{}/{}",
                a.workload.name(),
                a.scheme.name()
            );
        }
    }

    #[test]
    fn matrix_engine_feeds_the_metrics_registry() {
        let _guard = crate::checkpoint::test_guard();
        let registry = Arc::new(crate::metrics::MetricsRegistry::new());
        crate::metrics::install(Arc::clone(&registry));
        let opts = tiny_opts(2);
        let body: Arc<CellBody> = Arc::new(|_, workload, scheme| {
            if workload == Workload::Saxpy {
                panic!("metrics test casualty");
            }
            CellRun::plain(run_scheme(
                &GpuConfig::tiny(),
                scheme,
                &workload.generate(SizeClass::Tiny, 1),
            ))
        });
        let outcomes = run_matrix_engine(
            &[Workload::VecAdd, Workload::Saxpy],
            &[SchemeKind::NoProtection],
            &opts,
            body,
        );
        crate::metrics::clear();
        assert_eq!(outcomes.len(), 2);
        let text = registry.render();
        assert!(text.contains("ccraft_cells_planned 2"), "{text}");
        // The panicking saxpy cell is quarantined, not completed.
        assert!(text.contains("ccraft_cells_completed_total 1"), "{text}");
        assert!(text.contains("ccraft_cells_quarantined_total 1"), "{text}");
        assert!(text.contains("ccraft_cells_failed_total 1"), "{text}");
        assert!(text.contains("ccraft_workers 2"), "{text}");
        // All workers idle again after the scope joins.
        assert!(text.contains("ccraft_workers_active 0"), "{text}");
        assert!(text.contains("ccraft_cell_seconds_count 2"), "{text}");
    }

    #[test]
    fn resumed_stats_match_executed_stats() {
        let _guard = crate::checkpoint::test_guard();
        let dir = std::env::temp_dir().join(format!("ccraft-runner-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let cfg = GpuConfig::tiny();
        let opts = tiny_opts(1);
        let fresh = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
        );

        checkpoint::install(checkpoint::Session::start("r", path.clone(), false));
        let recorded = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
        );
        checkpoint::clear();

        checkpoint::install(checkpoint::Session::start("r", path.clone(), true));
        let replayed = run_matrix(
            &cfg,
            &[Workload::VecAdd],
            &[SchemeKind::NoProtection],
            &opts,
        );
        checkpoint::clear();

        assert_eq!(fresh[0].stats, recorded[0].stats);
        assert_eq!(fresh[0].stats, replayed[0].stats, "replay is bit-identical");
        let _ = std::fs::remove_file(&path);
    }
}
