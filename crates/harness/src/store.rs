//! Durable, checksummed artifact persistence.
//!
//! Everything the pipeline persists — `checkpoint.json`, `manifest.json`,
//! `profile.json`, the experiment CSVs and stats JSONs — goes through two
//! entry points:
//!
//! * [`write_durable`]: write to a temp file in the same directory,
//!   append a CRC32 *checksum footer*, fsync the file, atomically rename
//!   it over the destination, then fsync the parent directory. A process
//!   kill leaves the previous version intact; a host crash after return
//!   cannot lose the write.
//! * [`read_verified`]: read the file, locate the footer, and verify the
//!   payload checksum. A corrupt file is *quarantined* — renamed to
//!   `<name>.corrupt-<n>` — and reported as [`Error::Corrupt`], never
//!   silently discarded. Files without a footer (hand-edited, or produced
//!   by an older version) are accepted as *legacy unverified*.
//!
//! The footer is one final line of the file:
//!
//! ```text
//! #ccraft-store:v1:crc32=XXXXXXXX:len=NNN
//! ```
//!
//! where `XXXXXXXX` is the lowercase-hex CRC32 (IEEE, reflected) of the
//! first `NNN` bytes of the file — the payload exactly as the caller
//! passed it. A `\n` separator is inserted before the footer when the
//! payload does not already end in one; the separator, like the footer,
//! is *not* part of the checksummed payload. The `#`-prefixed line is an
//! ignorable comment to most line-oriented tools; JSON consumers strip it
//! with [`strip_footer`] (or by splitting on `\n#ccraft-store:`).
//!
//! Transient I/O errors (see [`crate::error::io_error_is_transient`])
//! get a bounded, deterministic retry schedule ([`RETRY_DELAYS_MS`]) —
//! fixed backoff, no jitter, so fault-injected runs replay identically.
//! All filesystem primitives route through the [`crate::chaos`] hooks,
//! which are free when no fault schedule is installed.

use crate::chaos::{self, WriteDirective};
use crate::error::Error;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Marker that begins a checksum footer line.
pub const FOOTER_MARK: &str = "#ccraft-store:v1:crc32=";

/// Retry backoff schedule for transient I/O errors, in milliseconds.
/// Fixed and jitter-free: attempt `i` sleeps `RETRY_DELAYS_MS[i]` before
/// retrying; after the schedule is exhausted the last error surfaces.
pub const RETRY_DELAYS_MS: [u64; 3] = [5, 20, 80];

/// Upper bound on quarantine suffix probing (`.corrupt-0` ...).
const MAX_QUARANTINE: u32 = 10_000;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — table-driven, no deps.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Footer encode / decode.

/// Renders the footer line (with trailing newline) for `payload`.
pub fn footer_for(payload: &[u8]) -> String {
    format!(
        "{FOOTER_MARK}{:08x}:len={}\n",
        crc32(payload),
        payload.len()
    )
}

/// Payload + separator (when needed) + footer: the on-disk byte image.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let footer = footer_for(payload);
    let mut out = Vec::with_capacity(payload.len() + footer.len() + 1);
    out.extend_from_slice(payload);
    if !payload.is_empty() && !payload.ends_with(b"\n") {
        out.push(b'\n');
    }
    out.extend_from_slice(footer.as_bytes());
    out
}

/// Locates a well-formed footer in `bytes`: returns
/// `(payload_len, stored_crc)`. The footer must start at the beginning of
/// a line and be the last thing in the file (a single trailing newline is
/// tolerated); anything else means "no footer".
fn parse_footer(bytes: &[u8]) -> Option<(usize, u32)> {
    let mark = FOOTER_MARK.as_bytes();
    if bytes.len() < mark.len() {
        return None;
    }
    // The footer is the final line: search backwards for the mark at a
    // line start.
    let mut i = bytes.len() - mark.len();
    let pos = loop {
        if bytes[i..].starts_with(mark) && (i == 0 || bytes[i - 1] == b'\n') {
            break i;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    };
    let line = std::str::from_utf8(&bytes[pos..]).ok()?;
    let rest = line.strip_prefix(FOOTER_MARK)?;
    let rest = rest.strip_suffix('\n').unwrap_or(rest);
    if rest.contains('\n') {
        return None; // content after the footer line: not a footer
    }
    let (crc_hex, len_part) = rest.split_once(':')?;
    let len: usize = len_part.strip_prefix("len=")?.parse().ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc_hex.len() != 8 || len > pos {
        return None;
    }
    Some((len, crc))
}

/// Removes a checksum footer (and its separator) from raw file bytes,
/// returning the original payload. Bytes without a footer pass through
/// unchanged. Does *not* verify the checksum — see [`read_verified`].
pub fn strip_footer(bytes: &[u8]) -> &[u8] {
    match parse_footer(bytes) {
        Some((len, _)) => &bytes[..len],
        None => bytes,
    }
}

// ---------------------------------------------------------------------
// Chaos-aware filesystem primitives with bounded deterministic retries.

fn sleep_backoff(attempt: usize) {
    if let Some(reg) = crate::metrics::current() {
        reg.store_retry();
    }
    let ms = RETRY_DELAYS_MS[attempt.min(RETRY_DELAYS_MS.len() - 1)];
    // lint: allow(wall-clock) reason=bounded deterministic retry backoff for transient I/O; fixed schedule, host-side only
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// Runs `op` with the transient-error retry schedule: permanent errors
/// surface immediately, transient ones are retried after fixed delays
/// until the schedule is exhausted.
fn with_retries<T>(mut op: impl FnMut() -> Result<T, Error>) -> Result<T, Error> {
    let mut attempt = 0usize;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < RETRY_DELAYS_MS.len() => {
                sleep_backoff(attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn write_once(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<(), Error> {
    let ctx = |what: &str, p: &Path| format!("{what} {}", p.display());
    let mut f = File::create(tmp).map_err(|e| Error::io(ctx("creating", tmp), e))?;
    match chaos::on_write(bytes.len()) {
        WriteDirective::Proceed => f
            .write_all(bytes)
            .map_err(|e| Error::io(ctx("writing", tmp), e))?,
        WriteDirective::Truncate(keep) => {
            // Torn write: only a prefix lands; report a transient
            // short-write so the retry rewrites the temp file in full.
            let _ = f.write_all(&bytes[..keep]);
            let _ = f.sync_all();
            return Err(Error::io(
                ctx("writing", tmp),
                std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("short write: {keep} of {} bytes", bytes.len()),
                ),
            ));
        }
        WriteDirective::FailTransient => {
            return Err(Error::io(
                ctx("writing", tmp),
                std::io::Error::new(std::io::ErrorKind::Interrupted, "injected transient EIO"),
            ));
        }
        WriteDirective::FailEnospc => {
            return Err(Error::io(
                ctx("writing", tmp),
                std::io::Error::other("no space left on device (injected)"),
            ));
        }
    }
    if let Some(e) = chaos::on_fsync() {
        return Err(Error::io(ctx("fsyncing", tmp), e));
    }
    f.sync_all()
        .map_err(|e| Error::io(ctx("fsyncing", tmp), e))?;
    drop(f);
    if let Some(e) = chaos::on_rename() {
        return Err(Error::io(ctx("renaming to", path), e));
    }
    fs::rename(tmp, path).map_err(|e| Error::io(ctx("renaming to", path), e))?;
    // Make the rename itself durable: fsync the parent directory.
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Some(e) = chaos::on_fsync() {
        return Err(Error::io(ctx("fsyncing dir", &dir), e));
    }
    let d = File::open(&dir).map_err(|e| Error::io(ctx("opening dir", &dir), e))?;
    d.sync_all()
        .map_err(|e| Error::io(ctx("fsyncing dir", &dir), e))?;
    Ok(())
}

/// Durably writes `payload` (plus checksum footer) to `path`:
/// temp file in the same directory → fsync → atomic rename → fsync of the
/// parent directory. Transient failures are retried on the fixed
/// schedule; the temp file never replaces the destination until it holds
/// the complete, fsynced image.
///
/// # Errors
///
/// Returns [`Error::Io`] when a permanent failure occurs or the retry
/// schedule is exhausted. The destination is untouched on error.
pub fn write_durable(path: &Path, payload: &[u8]) -> Result<(), Error> {
    let bytes = encode(payload);
    let tmp = tmp_path(path);
    let result = with_retries(|| write_once(path, &tmp, &bytes));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// A successful verified read.
#[derive(Debug, Clone)]
pub struct Verified {
    /// The payload, with any checksum footer stripped.
    pub payload: Vec<u8>,
    /// `true` when a footer was present and the checksum matched;
    /// `false` for legacy footer-less files, accepted unverified.
    pub verified: bool,
}

impl Verified {
    /// The payload as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the payload is not valid UTF-8.
    pub fn into_string(self, path: &Path) -> Result<String, Error> {
        String::from_utf8(self.payload)
            .map_err(|e| Error::corrupt(path.display().to_string(), format!("not UTF-8: {e}")))
    }
}

fn read_once(path: &Path) -> Result<Vec<u8>, Error> {
    let mut bytes =
        fs::read(path).map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
    chaos::on_read(&mut bytes).map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
    Ok(bytes)
}

/// One read's verification result: no footer at all, a verified payload,
/// or a checksum mismatch (stored, computed).
enum Check {
    NoFooter,
    Good(Vec<u8>),
    Mismatch(u32, u32),
}

fn check(bytes: &[u8]) -> Check {
    let Some((len, stored)) = parse_footer(bytes) else {
        return Check::NoFooter;
    };
    let computed = crc32(&bytes[..len]);
    if computed == stored {
        Check::Good(bytes[..len].to_vec())
    } else {
        Check::Mismatch(stored, computed)
    }
}

/// Reads `path` and verifies its checksum footer.
///
/// Footer-less files are returned unverified (legacy format). When the
/// first read does not verify — checksum mismatch, *or* a footer that no
/// longer parses (a read-side corruption can land in the footer itself) —
/// the file is read once more from disk: a transient in-memory corruption
/// (e.g. an injected bit flip) goes away on the second read, persistent
/// on-disk corruption does not. A file that is footer-less on both reads
/// is genuinely legacy; anything else that fails twice gets quarantined
/// to `<name>.corrupt-<n>` with an [`Error::Corrupt`] naming the
/// quarantine location.
///
/// # Errors
///
/// [`Error::Io`] when the file cannot be read (after transient retries);
/// [`Error::Corrupt`] when verification fails persistently.
pub fn read_verified(path: &Path) -> Result<Verified, Error> {
    let first = with_retries(|| read_once(path))?;
    let first_check = check(&first);
    if let Check::Good(payload) = first_check {
        return Ok(Verified {
            payload,
            verified: true,
        });
    }
    // One fresh re-read decides between in-memory corruption (gone now),
    // a legacy footer-less file (still footer-less), and on-disk damage.
    let second = with_retries(|| read_once(path)).ok();
    let second_check = second.as_deref().map(check);
    match &second_check {
        Some(Check::Good(payload)) => {
            return Ok(Verified {
                payload: payload.clone(),
                verified: true,
            })
        }
        // Legacy acceptance is deliberately strict: footer-less on BOTH
        // reads *and* byte-identical. A read-side flip that mangles the
        // footer region makes the reads differ, so corrupted bytes are
        // never handed back as "legacy".
        Some(Check::NoFooter)
            if matches!(first_check, Check::NoFooter)
                && second.as_deref() == Some(first.as_slice()) =>
        {
            return Ok(Verified {
                payload: first,
                verified: false,
            });
        }
        _ => {}
    }
    let detail = match first_check {
        Check::Mismatch(stored, computed) => {
            format!("crc32 mismatch (stored {stored:08x}, computed {computed:08x})")
        }
        _ => "checksum footer unparseable".to_string(),
    };
    let quarantined = quarantine(path)?;
    Err(Error::corrupt(
        path.display().to_string(),
        format!("{detail}; original preserved at {}", quarantined.display()),
    ))
}

/// Reads `path` as UTF-8 text with checksum verification (see
/// [`read_verified`]). Returns `(text, verified)`.
///
/// # Errors
///
/// As [`read_verified`], plus [`Error::Corrupt`] on invalid UTF-8.
pub fn read_verified_string(path: &Path) -> Result<(String, bool), Error> {
    let v = read_verified(path)?;
    let verified = v.verified;
    Ok((v.into_string(path)?, verified))
}

/// Moves `path` aside to the first free `<name>.corrupt-<n>` sibling and
/// returns the quarantine path. Used by [`read_verified`] on checksum
/// failure and by the checkpoint loader on schema mismatch, so corrupt
/// artifacts are preserved for post-mortem instead of overwritten.
///
/// # Errors
///
/// Returns [`Error::Io`] when the rename fails or no free quarantine
/// name exists.
pub fn quarantine(path: &Path) -> Result<PathBuf, Error> {
    let name = path.file_name().unwrap_or_default().to_os_string();
    for n in 0..MAX_QUARANTINE {
        let mut qname = name.clone();
        qname.push(format!(".corrupt-{n}"));
        let candidate = path.with_file_name(qname);
        if candidate.exists() {
            continue;
        }
        fs::rename(path, &candidate).map_err(|e| {
            Error::io(
                format!("quarantining {} to {}", path.display(), candidate.display()),
                e,
            )
        })?;
        return Ok(candidate);
    }
    Err(Error::io(
        format!("quarantining {}", path.display()),
        std::io::Error::other("no free .corrupt-<n> slot"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccraft-store-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn footer_round_trip_text_with_and_without_newline() {
        for payload in [&b"hello\nworld\n"[..], b"no trailing newline", b""] {
            let encoded = encode(payload);
            assert_eq!(strip_footer(&encoded), payload);
            let (len, crc) = parse_footer(&encoded).expect("footer present");
            assert_eq!(len, payload.len());
            assert_eq!(crc, crc32(payload));
        }
    }

    #[test]
    fn footerless_bytes_pass_through() {
        assert_eq!(strip_footer(b"plain,csv\n1,2\n"), b"plain,csv\n1,2\n");
        assert_eq!(strip_footer(b""), b"");
        // A mark mid-line is not a footer.
        let tricky = b"data #ccraft-store:v1:crc32=00000000:len=0 more";
        assert_eq!(strip_footer(tricky), &tricky[..]);
    }

    #[test]
    fn write_then_read_verifies() {
        let _guard = crate::chaos::test_guard();
        crate::chaos::clear();
        let path = tmpdir("roundtrip").join("t.csv");
        write_durable(&path, b"a,b\n1,2\n").unwrap();
        let v = read_verified(&path).unwrap();
        assert!(v.verified);
        assert_eq!(v.payload, b"a,b\n1,2\n");
        // On-disk bytes carry exactly one footer line.
        let raw = fs::read(&path).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&raw).matches(FOOTER_MARK).count(),
            1
        );
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn legacy_file_reads_unverified() {
        let _guard = crate::chaos::test_guard();
        crate::chaos::clear();
        let path = tmpdir("legacy").join("old.json");
        fs::write(&path, b"{\"x\":1}").unwrap();
        let v = read_verified(&path).unwrap();
        assert!(!v.verified);
        assert_eq!(v.payload, b"{\"x\":1}");
    }

    #[test]
    fn corrupt_file_is_quarantined_not_dropped() {
        let _guard = crate::chaos::test_guard();
        crate::chaos::clear();
        let dir = tmpdir("corrupt");
        let path = dir.join("c.json");
        let _ = fs::remove_file(dir.join("c.json.corrupt-0"));
        write_durable(&path, b"{\"x\":1}\n").unwrap();
        // Flip a payload byte on disk.
        let mut raw = fs::read(&path).unwrap();
        raw[2] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        let err = read_verified(&path).unwrap_err();
        match &err {
            Error::Corrupt { detail, .. } => {
                assert!(detail.contains("corrupt-0"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt file must be moved aside");
        assert!(dir.join("c.json.corrupt-0").exists());
        // A second corruption quarantines to the next free slot.
        write_durable(&path, b"{\"x\":2}\n").unwrap();
        let mut raw = fs::read(&path).unwrap();
        raw[2] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        let _ = read_verified(&path).unwrap_err();
        assert!(dir.join("c.json.corrupt-1").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_read_flip_survives_via_reread() {
        let _guard = crate::chaos::test_guard();
        let dir = tmpdir("flip");
        let path = dir.join("f.json");
        crate::chaos::clear();
        write_durable(&path, b"{\"stable\":true}\n").unwrap();
        // flip=0.5: some reads corrupt in memory; every one must either
        // verify via the re-read or quarantine — but the file on disk is
        // good, so quarantine would be a bug in the re-read defence only
        // if *both* reads flip. With p=0.5 over 20 rounds some reads flip;
        // we assert no round both-flips into a *matching* wrong CRC (the
        // checksum catches every flip) and that most rounds succeed.
        crate::chaos::install(ChaosConfig::parse("seed=11,flip=0.5").unwrap());
        let mut ok = 0;
        let mut quarantined = 0;
        for _ in 0..20 {
            match read_verified(&path) {
                Ok(v) => {
                    assert!(v.verified);
                    assert_eq!(v.payload, b"{\"stable\":true}\n");
                    ok += 1;
                }
                Err(Error::Corrupt { .. }) => {
                    // Both reads flipped (p = flip²) — allowed to
                    // quarantine, never to return bad data. Put the good
                    // file back for the next round; a flip-only schedule
                    // never touches the write hooks (and re-installing
                    // would reset the op counter and replay the same
                    // flips forever).
                    quarantined += 1;
                    write_durable(&path, b"{\"stable\":true}\n").unwrap();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        crate::chaos::clear();
        assert_eq!(ok + quarantined, 20);
        // flip=0.5 → a round quarantines only when both reads flip
        // (p = 0.25), so the single-flip re-read defence must carry a
        // clear majority of rounds.
        assert!(ok >= 10, "re-read defence should save most flips: ok={ok}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_write_errors_are_retried() {
        let _guard = crate::chaos::test_guard();
        let dir = tmpdir("retry");
        let path = dir.join("r.csv");
        // eio=0.4: isolated transient failures; the 3-retry schedule
        // makes 4 consecutive failures (p≈2.6%) unlikely per write, so
        // at least one of the writes below must land.
        crate::chaos::install(ChaosConfig::parse("seed=2,eio=0.4").unwrap());
        let mut landed = 0;
        for i in 0..5 {
            if write_durable(&path, format!("row-{i}\n").as_bytes()).is_ok() {
                landed += 1;
            }
        }
        crate::chaos::clear();
        assert!(landed >= 1, "retries should absorb isolated transient EIO");
        let v = read_verified(&path).unwrap();
        assert!(v.verified);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_writes_never_corrupt_the_destination() {
        let _guard = crate::chaos::test_guard();
        let dir = tmpdir("torn");
        let path = dir.join("t.json");
        crate::chaos::clear();
        write_durable(&path, b"{\"generation\":0}\n").unwrap();
        crate::chaos::install(ChaosConfig::parse("seed=4,torn=0.6").unwrap());
        for g in 1..10 {
            let _ = write_durable(&path, format!("{{\"generation\":{g}}}\n").as_bytes());
            // Whatever happened, the destination must verify.
            crate::chaos::clear();
            let v = read_verified(&path).unwrap();
            assert!(v.verified, "destination must never hold a torn image");
            crate::chaos::install(ChaosConfig::parse("seed=4,torn=0.6").unwrap());
        }
        crate::chaos::clear();
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn enospc_is_permanent_and_destination_survives() {
        let _guard = crate::chaos::test_guard();
        let dir = tmpdir("enospc");
        let path = dir.join("e.json");
        crate::chaos::clear();
        write_durable(&path, b"{\"v\":1}\n").unwrap();
        crate::chaos::install(ChaosConfig::parse("seed=1,enospc=1").unwrap());
        let err = write_durable(&path, b"{\"v\":2}\n").unwrap_err();
        assert!(!err.is_transient(), "ENOSPC must not be retried");
        crate::chaos::clear();
        let v = read_verified(&path).unwrap();
        assert_eq!(v.payload, b"{\"v\":1}\n");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn verified_into_string_rejects_bad_utf8() {
        let v = Verified {
            payload: vec![0xFF, 0xFE],
            verified: true,
        };
        assert!(matches!(
            v.into_string(Path::new("x")),
            Err(Error::Corrupt { .. })
        ));
    }
}
