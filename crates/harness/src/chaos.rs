//! Deterministic I/O fault injection behind the persistence layer.
//!
//! The [`crate::store`] module routes every filesystem primitive it uses
//! (write, fsync, rename, read) through the hooks in this module. When no
//! chaos configuration is installed the hooks are a single relaxed atomic
//! load — effectively free. When one *is* installed (via
//! [`install`] or the `CCRAFT_CHAOS` environment variable, see
//! [`init_from_env`]), each primitive consults a seeded, reproducible
//! schedule and may be told to fail:
//!
//! - `eio=P` — transient EIO on a write (the store's retry loop absorbs
//!   isolated occurrences),
//! - `enospc=P` — permanent out-of-space failure on a write,
//! - `torn=P` — a torn/partial write: only a prefix of the bytes reaches
//!   the temp file, reported as a transient short-write so the retry loop
//!   rewrites it in full (the destination file is never touched, because
//!   the rename never runs against a torn temp file),
//! - `rename=P` — the atomic rename fails (permanent),
//! - `fsync=P` — an fsync fails (permanent: after a failed fsync the
//!   kernel page-cache state is unknowable, so retrying is wrong),
//! - `read-eio=P` — transient EIO on a read,
//! - `flip=P` — a single bit of a read's payload is flipped in memory,
//!   which checksum verification must catch.
//!
//! The schedule is a pure function of `(seed, op counter, fault kind)`:
//! the same spec replays the same faults at the same operations, which is
//! what makes `ccx chaos-soak` failures reproducible.

use crate::error::Error;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Environment variable holding a chaos spec (see [`ChaosConfig::parse`]).
pub const CHAOS_ENV: &str = "CCRAFT_CHAOS";

/// What the store should do with a pending write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDirective {
    /// Write all bytes normally.
    Proceed,
    /// Torn write: persist only this many bytes, then report a transient
    /// short-write failure.
    Truncate(usize),
    /// Fail with a transient EIO without writing anything.
    FailTransient,
    /// Fail with a permanent out-of-space error.
    FailEnospc,
}

/// A parsed, seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed into every probability draw.
    pub seed: u64,
    /// Probability of a transient EIO per write.
    pub eio: f64,
    /// Probability of a permanent ENOSPC per write.
    pub enospc: f64,
    /// Probability of a torn (partial) write per write.
    pub torn: f64,
    /// Probability of a failed rename.
    pub rename: f64,
    /// Probability of a failed fsync.
    pub fsync: f64,
    /// Probability of a transient EIO per read.
    pub read_eio: f64,
    /// Probability of a single-bit flip per read.
    pub flip: f64,
}

impl ChaosConfig {
    /// A schedule that injects nothing (all probabilities zero).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            eio: 0.0,
            enospc: 0.0,
            torn: 0.0,
            rename: 0.0,
            fsync: 0.0,
            read_eio: 0.0,
            flip: 0.0,
        }
    }

    /// Parses a spec string: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed` (u64, default 0) and the per-fault probabilities
    /// `eio`, `enospc`, `torn`, `rename`, `fsync`, `read-eio`, `flip`
    /// (each a float in `[0, 1]`, default 0). Example:
    /// `seed=7,eio=0.05,torn=0.05,rename=0.02,flip=0.01`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on unknown keys, malformed numbers, or
    /// probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, Error> {
        let mut cfg = ChaosConfig::quiet(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| Error::config(format!("chaos spec `{part}`: expected key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                cfg.seed = value.parse().map_err(|_| {
                    Error::config(format!("chaos spec seed `{value}`: expected an integer"))
                })?;
                continue;
            }
            let p: f64 = value.parse().map_err(|_| {
                Error::config(format!("chaos spec {key}=`{value}`: expected a number"))
            })?;
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::config(format!(
                    "chaos spec {key}={value}: probability must be in [0, 1]"
                )));
            }
            match key {
                "eio" => cfg.eio = p,
                "enospc" => cfg.enospc = p,
                "torn" => cfg.torn = p,
                "rename" => cfg.rename = p,
                "fsync" => cfg.fsync = p,
                "read-eio" => cfg.read_eio = p,
                "flip" => cfg.flip = p,
                other => {
                    return Err(Error::config(format!(
                        "chaos spec: unknown key `{other}` \
                         (expected seed/eio/enospc/torn/rename/fsync/read-eio/flip)"
                    )))
                }
            }
        }
        Ok(cfg)
    }

    /// Canonical spec string (round-trips through [`ChaosConfig::parse`]).
    pub fn to_spec(&self) -> String {
        format!(
            "seed={},eio={},enospc={},torn={},rename={},fsync={},read-eio={},flip={}",
            self.seed,
            self.eio,
            self.enospc,
            self.torn,
            self.rename,
            self.fsync,
            self.read_eio,
            self.flip
        )
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of its input. Also
/// used by [`crate::soak`] to derive reproducible kill delays.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a draw for `(seed, op, salt)` onto `[0, 1)`.
fn draw(seed: u64, op: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(op.wrapping_add(salt.wrapping_mul(0x51ed_270b))));
    // 53 mantissa bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// Salts keep each fault family's draw stream independent.
const SALT_EIO: u64 = 1;
const SALT_ENOSPC: u64 = 2;
const SALT_TORN: u64 = 3;
const SALT_RENAME: u64 = 4;
const SALT_FSYNC: u64 = 5;
const SALT_READ_EIO: u64 = 6;
const SALT_FLIP: u64 = 7;
const SALT_TORN_LEN: u64 = 8;
const SALT_FLIP_BIT: u64 = 9;

/// Fast-path flag: `false` means every hook is a no-op.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic operation counter shared by all hooks.
static OPS: AtomicU64 = AtomicU64::new(0);
/// The installed schedule, if any.
static CURRENT: Mutex<Option<Arc<ChaosConfig>>> = Mutex::new(None);

fn lock_current() -> std::sync::MutexGuard<'static, Option<Arc<ChaosConfig>>> {
    // Poison only means a panic mid-swap; the Option inside is valid.
    CURRENT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `cfg` as the process-global fault schedule and resets the
/// operation counter, so identical specs replay identical faults.
pub fn install(cfg: ChaosConfig) {
    *lock_current() = Some(Arc::new(cfg));
    OPS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the global schedule; hooks become free again.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *lock_current() = None;
}

/// The installed schedule, if any.
pub fn current() -> Option<Arc<ChaosConfig>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    lock_current().clone()
}

/// Installs a schedule from the `CCRAFT_CHAOS` environment variable, if
/// set and non-empty. Does nothing (and clears nothing) otherwise.
///
/// # Errors
///
/// Returns [`Error::Config`] when the variable is set but malformed.
pub fn init_from_env() -> Result<bool, Error> {
    match std::env::var(CHAOS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => {
            install(ChaosConfig::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn next_op() -> u64 {
    OPS.fetch_add(1, Ordering::SeqCst)
}

/// Write hook: consulted once per write of `len` bytes.
pub fn on_write(len: usize) -> WriteDirective {
    let Some(cfg) = current() else {
        return WriteDirective::Proceed;
    };
    let op = next_op();
    if draw(cfg.seed, op, SALT_ENOSPC) < cfg.enospc {
        return WriteDirective::FailEnospc;
    }
    if draw(cfg.seed, op, SALT_TORN) < cfg.torn && len > 0 {
        let keep = (draw(cfg.seed, op, SALT_TORN_LEN) * len as f64) as usize;
        return WriteDirective::Truncate(keep.min(len.saturating_sub(1)));
    }
    if draw(cfg.seed, op, SALT_EIO) < cfg.eio {
        return WriteDirective::FailTransient;
    }
    WriteDirective::Proceed
}

/// Rename hook: `Some(error)` means the rename must fail (permanent).
pub fn on_rename() -> Option<std::io::Error> {
    let cfg = current()?;
    let op = next_op();
    if draw(cfg.seed, op, SALT_RENAME) < cfg.rename {
        return Some(std::io::Error::other("injected rename failure"));
    }
    None
}

/// Fsync hook: `Some(error)` means the fsync must fail (permanent).
pub fn on_fsync() -> Option<std::io::Error> {
    let cfg = current()?;
    let op = next_op();
    if draw(cfg.seed, op, SALT_FSYNC) < cfg.fsync {
        return Some(std::io::Error::other("injected fsync failure"));
    }
    None
}

/// Read hook: may fail transiently, or flip one bit of `buf` in place
/// (modelling an undetected medium/bus error that checksum verification
/// must catch).
///
/// # Errors
///
/// Returns a transient `Interrupted` I/O error on an injected read EIO.
pub fn on_read(buf: &mut [u8]) -> Result<(), std::io::Error> {
    let Some(cfg) = current() else {
        return Ok(());
    };
    let op = next_op();
    if draw(cfg.seed, op, SALT_READ_EIO) < cfg.read_eio {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected read EIO",
        ));
    }
    if !buf.is_empty() && draw(cfg.seed, op, SALT_FLIP) < cfg.flip {
        let bit = (draw(cfg.seed, op, SALT_FLIP_BIT) * (buf.len() * 8) as f64) as usize;
        let bit = bit.min(buf.len() * 8 - 1);
        buf[bit / 8] ^= 1 << (bit % 8);
    }
    Ok(())
}

/// Serializes tests that install a global chaos schedule (shared with
/// store tests, which exercise the hooks).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_validates() {
        let cfg = ChaosConfig::parse("seed=7,eio=0.5,torn=0.25,read-eio=0.1").unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.eio, 0.5);
        assert_eq!(cfg.torn, 0.25);
        assert_eq!(cfg.read_eio, 0.1);
        assert_eq!(cfg.enospc, 0.0);
        let back = ChaosConfig::parse(&cfg.to_spec()).unwrap();
        assert_eq!(back, cfg);

        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("eio=1.5").is_err());
        assert!(ChaosConfig::parse("eio=-0.1").is_err());
        assert!(ChaosConfig::parse("seed=x").is_err());
        assert!(ChaosConfig::parse("noequals").is_err());
        // Empty segments and whitespace are tolerated.
        assert!(ChaosConfig::parse(" seed=1 , ,eio=0 ").is_ok());
        assert!(ChaosConfig::parse("").is_ok());
    }

    #[test]
    fn disabled_hooks_are_noops() {
        let _guard = test_guard();
        clear();
        assert_eq!(on_write(100), WriteDirective::Proceed);
        assert!(on_rename().is_none());
        assert!(on_fsync().is_none());
        let mut buf = vec![0xAAu8; 16];
        on_read(&mut buf).unwrap();
        assert_eq!(buf, vec![0xAAu8; 16]);
    }

    #[test]
    fn schedule_is_reproducible() {
        let _guard = test_guard();
        let cfg = ChaosConfig::parse("seed=42,eio=0.3,enospc=0.1,torn=0.2").unwrap();
        install(cfg.clone());
        let a: Vec<WriteDirective> = (0..64).map(|_| on_write(100)).collect();
        install(cfg);
        let b: Vec<WriteDirective> = (0..64).map(|_| on_write(100)).collect();
        clear();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|d| *d != WriteDirective::Proceed),
            "nonzero schedule must inject something in 64 ops"
        );
        assert!(
            a.contains(&WriteDirective::Proceed),
            "moderate schedule must let some ops through"
        );
    }

    #[test]
    fn torn_writes_truncate_short_of_full_length() {
        let _guard = test_guard();
        install(ChaosConfig::parse("seed=3,torn=1").unwrap());
        for _ in 0..32 {
            match on_write(100) {
                WriteDirective::Truncate(n) => assert!(n < 100, "torn write kept {n}/100"),
                other => panic!("expected Truncate, got {other:?}"),
            }
        }
        clear();
    }

    #[test]
    fn bit_flips_change_exactly_one_bit() {
        let _guard = test_guard();
        install(ChaosConfig::parse("seed=9,flip=1").unwrap());
        let orig = vec![0u8; 32];
        let mut buf = orig.clone();
        on_read(&mut buf).unwrap();
        clear();
        let flipped: u32 = orig
            .iter()
            .zip(&buf)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn env_install_and_error() {
        let _guard = test_guard();
        clear();
        std::env::remove_var(CHAOS_ENV);
        assert!(!init_from_env().unwrap());
        std::env::set_var(CHAOS_ENV, "seed=5,eio=0.5");
        assert!(init_from_env().unwrap());
        assert_eq!(current().map(|c| c.seed), Some(5));
        std::env::set_var(CHAOS_ENV, "nope");
        assert!(init_from_env().is_err());
        std::env::remove_var(CHAOS_ENV);
        clear();
    }
}
