//! F11 — scaling with memory channels (4 → 16): does CacheCraft's
//! advantage persist as raw bandwidth grows?

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F11.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F11",
        &format!(
            "Scaling with channel count, geomean normalized perf ({} size)",
            opts.size
        ),
    );
    let mut t = Table::new(vec![
        "channels",
        "peak BW (B/cyc)",
        "naive",
        "ecc-cache",
        "cachecraft",
    ]);
    for channels in [4u16, 8, 16] {
        let mut cfg = GpuConfig::gddr6();
        cfg.mem.channels = channels;
        cfg.validate().map_err(|e| Error::config(e.to_string()))?;
        let schemes = SchemeKind::headline(&cfg);
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 3];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 4].stats.exec_cycles as f64;
            for v in 0..3 {
                norms[v].push(base / results[wi * 4 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            channels.to_string(),
            format!("{:.0}", cfg.peak_bw_bytes_per_cycle()),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
            f3(geomean(&norms[2])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f11_channels", &t)?;
    Ok(())
}
