//! T2 — workload characterization under the ECC-off baseline.

use crate::report::{banner, emit_csv, f3, pct, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;

/// Prints and saves T2.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "T2",
        &format!("Workload characterization, ECC off ({} size)", opts.size),
    );
    let cfg = GpuConfig::gddr6();
    let results = run_matrix(&cfg, &Workload::ALL, &[SchemeKind::NoProtection], opts);
    let mut t = Table::new(vec![
        "workload",
        "warps",
        "ops",
        "accesses",
        "footprint (MiB)",
        "wr-frac",
        "IPC",
        "L1 hit",
        "L2 hit",
        "row hit",
        "DRAM B/cyc",
    ]);
    for r in &results {
        let trace = r.workload.generate(opts.size, opts.seed);
        let s = &r.stats;
        t.row(vec![
            r.workload.name().to_string(),
            trace.warps().len().to_string(),
            s.ops.to_string(),
            s.accesses.to_string(),
            format!(
                "{:.1}",
                trace.footprint_atoms() as f64 * 32.0 / (1 << 20) as f64
            ),
            f3(trace.write_fraction()),
            f3(s.ipc()),
            pct(s.l1_hit_rate()),
            pct(s.l2_hit_rate()),
            pct(s.row_hit_rate()),
            format!("{:.1}", s.dram_bw_bytes_per_cycle()),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("t2_workloads", &t)?;
    Ok(())
}
