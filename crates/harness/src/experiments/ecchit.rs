//! F6 — on-chip ECC hit rate at the schemes' actual design points.
//!
//! The dedicated ECC cache pays for its capacity in new SRAM (16 KiB/MC at
//! the design point, 144 KiB of new silicon GPU-wide including tags); the
//! fragment store repurposes 64 KiB/slice of existing L2 for ~73 KiB of
//! new silicon (tags + buffers, see T4). This figure shows what that
//! affordable 4x capacity buys in ECC hit rate — plus, as a reference,
//! what the dedicated cache would achieve if it were grown to the same
//! 64 KiB (at 4x the silicon cost).

use crate::report::{banner, emit_csv, pct, Table};
use crate::runner::{require, run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;

fn hit_rate(s: &ccraft_sim::protection::ProtectionStats) -> f64 {
    let total = s.ecc_fetch_hits + s.ecc_demand_fetches;
    if total == 0 {
        1.0
    } else {
        s.ecc_fetch_hits as f64 / total as f64
    }
}

/// Prints and saves F6.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F6",
        &format!(
            "On-chip ECC hit rate at the design points ({} size): 16 KiB dedicated vs 64 KiB repurposed",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let dedicated16 = SchemeKind::EccCache {
        coverage: 8,
        capacity_per_mc: 16 << 10,
    };
    let dedicated64 = SchemeKind::EccCache {
        coverage: 8,
        capacity_per_mc: 64 << 10,
    };
    // Fragment store without C3 so pending-write hits don't inflate the
    // comparison; C1 retained (it is part of the design point).
    let fragments = SchemeKind::CacheCraft(CacheCraftConfig {
        reconstruct: false,
        ..CacheCraftConfig::default()
    });
    let results16 = run_matrix(&cfg, &Workload::ALL, &[dedicated16], opts);
    let results64 = run_matrix(&cfg, &Workload::ALL, &[dedicated64], opts);
    let resultsfr = run_matrix(&cfg, &Workload::ALL, &[fragments], opts);
    let mut t = Table::new(vec![
        "workload",
        "dedicated 16K hit",
        "fragment 64K hit",
        "dedicated 64K hit (4x silicon)",
        "ECC fetches: 16K ded / 64K frag",
    ]);
    for w in Workload::ALL {
        let d16 = &require(&results16, w, "ecc-cache")?.stats;
        let d64 = &require(&results64, w, "ecc-cache")?.stats;
        let fr = &require(&resultsfr, w, "cachecraft")?.stats;
        t.row(vec![
            w.name().to_string(),
            pct(hit_rate(&d16.protection)),
            pct(hit_rate(&fr.protection)),
            pct(hit_rate(&d64.protection)),
            format!(
                "{} / {}",
                d16.protection.ecc_demand_fetches, fr.protection.ecc_demand_fetches
            ),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f6_ecchit", &t)?;
    Ok(())
}
