//! T1 — the simulated-machine configuration table.

use crate::report::{banner, emit_csv, Table};
use crate::runner::ExpOptions;
use crate::Error;
use ccraft_sim::config::GpuConfig;

/// Prints and saves T1.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(_opts: &ExpOptions) -> Result<(), Error> {
    banner("T1", "Simulated GPU configuration (GDDR6-class preset)");
    let cfg = GpuConfig::gddr6();
    let mut t = Table::new(vec!["component", "configuration"]);
    t.row(vec![
        "SMs".to_string(),
        format!(
            "{} SMs x {} warps, GTO scheduler, 1 LSU access/cycle",
            cfg.core.sms, cfg.core.warps_per_sm
        ),
    ]);
    t.row(vec![
        "L1 (per SM)".to_string(),
        format!(
            "{} KiB, {}-way, 128 B lines / 32 B sectors, write-through, {} MSHRs, {}-cycle",
            cfg.l1.capacity_bytes >> 10,
            cfg.l1.ways,
            cfg.l1.mshrs,
            cfg.l1.latency
        ),
    ]);
    t.row(vec![
        "L2 (total)".to_string(),
        format!(
            "{} MiB over {} slices, {}-way, sectored, write-back, hashed sets, {} MSHRs/slice, {}-cycle",
            cfg.l2_total_bytes() >> 20,
            cfg.mem.channels,
            cfg.l2.ways,
            cfg.l2.mshrs,
            cfg.l2.latency
        ),
    ]);
    t.row(vec![
        "Interconnect".to_string(),
        format!(
            "crossbar, {}-cycle, {} msg/endpoint/cycle",
            cfg.xbar.latency, cfg.xbar.ports_per_endpoint
        ),
    ]);
    t.row(vec![
        "DRAM".to_string(),
        format!(
            "{} channels x {} GiB, {} banks, {} KiB rows, FR-FCFS (window {}), bank-XOR hashing",
            cfg.mem.channels,
            cfg.mem.capacity_per_channel >> 30,
            cfg.mem.banks,
            cfg.mem.row_bytes >> 10,
            cfg.mem.sched_window
        ),
    ]);
    let tm = cfg.mem.timing;
    t.row(vec![
        "DRAM timing (core cycles)".to_string(),
        format!(
            "tRCD {} / tRP {} / tRAS {} / CL {} / tWR {} / tRTW {} / tWTR {} / tREFI {} / tRFC {}",
            tm.t_rcd, tm.t_rp, tm.t_ras, tm.cas, tm.t_wr, tm.t_rtw, tm.t_wtr, tm.t_refi, tm.t_rfc
        ),
    ]);
    t.row(vec![
        "Peak DRAM BW".to_string(),
        format!("{:.0} B/cycle", cfg.peak_bw_bytes_per_cycle()),
    ]);
    t.row(vec![
        "Inline ECC".to_string(),
        "1 ECC atom per 8 data atoms (12.5% redundancy), SEC-DED(72,64) budget".to_string(),
    ]);
    t.row(vec![
        "ECC cache baseline".to_string(),
        "16 KiB/MC, 8-way, ECC-atom granularity".to_string(),
    ]);
    t.row(vec![
        "CacheCraft".to_string(),
        "C1 row co-location + C2 64 KiB/slice fragment store (L2 tax) + C3 reconstruction, 32-entry coalescing buffer".to_string(),
    ]);
    println!("{}", t.to_markdown());
    emit_csv("t1_config", &t)?;
    Ok(())
}
