//! F10 — capacity sweep and crossover: dedicated ECC cache vs CacheCraft
//! fragment budget.
//!
//! Sweeps both structures over the same per-channel byte budgets. The
//! question the figure answers: how big must a *dedicated* ECC cache grow
//! before it matches CacheCraft, and does CacheCraft keep its edge when
//! its own budget (taxed from L2) shrinks?

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F10.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F10",
        &format!(
            "ECC-structure capacity sweep, geomean normalized perf ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let mut t = Table::new(vec![
        "capacity/channel",
        "ecc-cache (dedicated)",
        "cachecraft (L2 tax)",
    ]);
    for kib in [4u64, 16, 64, 128] {
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: kib << 10,
            },
            SchemeKind::CacheCraft(CacheCraftConfig {
                fragment_bytes_per_slice: kib << 10,
                ..CacheCraftConfig::full()
            }),
        ];
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 2];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 3].stats.exec_cycles as f64;
            for v in 0..2 {
                norms[v].push(base / results[wi * 3 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            format!("{kib} KiB"),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f10_ecc_capacity", &t)?;
    Ok(())
}
