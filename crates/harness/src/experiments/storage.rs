//! T4 — on-chip storage accounting per scheme.

use crate::report::{banner, emit_csv, Table};
use crate::runner::ExpOptions;
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_core::storage::storage_bill;
use ccraft_sim::config::GpuConfig;

fn kib(bytes: u64) -> String {
    format!("{:.1} KiB", bytes as f64 / 1024.0)
}

/// Prints and saves T4.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(_opts: &ExpOptions) -> Result<(), Error> {
    banner("T4", "On-chip storage per scheme (whole GPU)");
    let cfg = GpuConfig::gddr6();
    let rows: Vec<(&str, SchemeKind)> = vec![
        ("ecc-off", SchemeKind::NoProtection),
        ("inline-naive", SchemeKind::InlineNaive { coverage: 8 }),
        (
            "ecc-cache 16K/MC",
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: 16 << 10,
            },
        ),
        (
            "ecc-cache 64K/MC",
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: 64 << 10,
            },
        ),
        (
            "cachecraft (full)",
            SchemeKind::CacheCraft(CacheCraftConfig::full()),
        ),
        (
            "cachecraft C1 only",
            SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()),
        ),
    ];
    let mut t = Table::new(vec![
        "scheme",
        "new dedicated SRAM",
        "repurposed L2",
        "buffers",
        "new silicon total",
    ]);
    for (label, kind) in rows {
        let bill = storage_bill(kind, &cfg);
        t.row(vec![
            label.to_string(),
            kib(bill.dedicated_bytes),
            kib(bill.repurposed_l2_bytes),
            kib(bill.buffer_bytes),
            kib(bill.new_silicon_bytes()),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("t4_storage", &t)?;
    Ok(())
}
