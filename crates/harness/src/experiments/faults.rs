//! T6 — fault injection under load: decode outcomes when live DRAM read
//! traffic is exposed to an in-situ error pattern, per workload × scheme.
//!
//! Unlike the T3 reliability table (isolated codec trials at a fixed
//! trial count), every row here is a full timed simulation: faults arrive
//! at the rate the workload actually reads DRAM, ECC traffic is exposed
//! in proportion to how much of it each scheme issues, and the outcome
//! mix reflects the codec each scheme really stores (SEC-DED for the
//! inline/cached baselines, RS(36,32) for CacheCraft's reconstructed
//! codewords).

use crate::experiments::SWEEP_SUBSET;
use crate::report::{banner, emit_csv, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::faults::{FaultConfig, FaultStats};

/// Injection spec used when the caller did not pass `--inject`: one
/// whole-symbol (chip) error per thousand DRAM read accesses — frequent
/// enough that every small-size cell sees faults, rare enough that the
/// outcome mix, not saturation, dominates the table.
pub const DEFAULT_SPEC: &str = "symbol:1e-3";

/// Prints and saves T6.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    let mut opts = *opts;
    let spec = match opts.inject {
        Some(_) => "(--inject)".to_string(),
        None => {
            // Hard-coded spec: a parse failure here is a programming
            // error, surfaced as a config error rather than a panic.
            opts.inject = Some(FaultConfig::parse(DEFAULT_SPEC).map_err(Error::Config)?);
            DEFAULT_SPEC.to_string()
        }
    };
    banner(
        "T6",
        &format!("Fault injection under load ({spec}): decode outcomes through the timed pipeline"),
    );
    let cfg = GpuConfig::gddr6();
    let schemes = SchemeKind::headline(&cfg);
    let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, &opts);
    let mut t = Table::new(vec![
        "workload",
        "scheme",
        "data reads",
        "ecc reads",
        "injected",
        "benign",
        "corrected",
        "DUE",
        "SDC",
        "detected",
    ]);
    for r in &results {
        let fs: FaultStats = r.stats.faults.unwrap_or_default();
        t.row(vec![
            r.workload.name().to_string(),
            r.scheme.name().to_string(),
            fs.data_reads.to_string(),
            fs.ecc_reads.to_string(),
            fs.injected.to_string(),
            fs.benign.to_string(),
            fs.corrected.to_string(),
            fs.due.to_string(),
            fs.sdc.to_string(),
            fs.detected().to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    if let Err(e) = emit_csv("t6_faults", &t) {
        eprintln!("warning: failed to save t6_faults.csv: {e}");
    }
    Ok(())
}
