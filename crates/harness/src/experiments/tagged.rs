//! F12 — extension: implicit memory tagging on top of CacheCraft.
//!
//! Following the IMT approach (Sullivan et al., ISCA'23), memory tags ride
//! inside the ECC check bits, so tag checking adds **zero** storage and
//! **zero** DRAM transactions on top of the inline-ECC machinery CacheCraft
//! already optimizes. This experiment demonstrates both halves:
//!
//! 1. *Timing*: CacheCraft traffic is byte-for-byte identical with tagging
//!    on (the tag lives in bits that were already fetched).
//! 2. *Function*: every tag mismatch on clean data is detected, and data
//!    error coverage is unchanged (alias-free property).

use crate::report::{banner, emit_csv, pct, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_core::reliability::{Campaign, CodecKind};
use ccraft_ecc::code::DecodeOutcome;
use ccraft_ecc::inject::ErrorPattern;
use ccraft_ecc::tagged::TaggedSecDed;
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Prints and saves F12.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F12",
        "Implicit memory tagging on CacheCraft: traffic parity + detection coverage",
    );
    // Part 1: traffic parity. Tagging changes only bit contents, never
    // transaction counts, so the simulated run is the same; we demonstrate
    // by running CacheCraft and reporting its ECC traffic as the tagged
    // traffic (delta = 0 by construction of IMT).
    let cfg = GpuConfig::gddr6();
    let schemes = [SchemeKind::CacheCraft(CacheCraftConfig::full())];
    let subset = [Workload::VecAdd, Workload::Spmv, Workload::Histogram];
    let results = run_matrix(&cfg, &subset, &schemes, opts);
    let mut t1 = Table::new(vec![
        "workload",
        "ECC atoms fetched (untagged)",
        "extra fetches for tags",
        "extra storage for tags",
    ]);
    for r in &results {
        t1.row(vec![
            r.workload.name().to_string(),
            (r.stats.dram[2] + r.stats.dram[3]).to_string(),
            "0".to_string(),
            "0 B".to_string(),
        ]);
    }
    println!("{}", t1.to_markdown());
    emit_csv("f12_tagged_traffic", &t1)?;

    // Part 2: functional coverage of the tagged codec.
    let mut t2 = Table::new(vec!["check", "trials", "detected", "rate"]);
    // 2a. Pure tag mismatches (clean data) — must be 100 % alias-free.
    let codec = TaggedSecDed::new(4).map_err(|e| Error::config(e.to_string()))?;
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x7a66);
    let trials = 2_000u32;
    let mut detected = 0u32;
    for _ in 0..trials {
        let data: [u8; 8] = rng.gen();
        let stored: u8 = rng.gen_range(0..16);
        let mut expected: u8 = rng.gen_range(0..16);
        while expected == stored {
            expected = rng.gen_range(0..16);
        }
        let check = codec.encode(&data, stored);
        let mut buf = data;
        if codec.decode(&mut buf, &check, expected) == DecodeOutcome::TagMismatch {
            detected += 1;
        }
    }
    t2.row(vec![
        "tag mismatch, clean data".to_string(),
        trials.to_string(),
        detected.to_string(),
        pct(detected as f64 / trials as f64),
    ]);
    // 2b. Data-error coverage with matching tags (unchanged vs SEC-DED).
    let r = Campaign {
        codec: CodecKind::Tagged4,
        pattern: ErrorPattern::RandomBits { count: 1 },
        trials,
        seed: opts.seed ^ 0x7a67,
    }
    .run();
    t2.row(vec![
        "1-bit error, matching tag (corrected)".to_string(),
        trials.to_string(),
        (r.corrected + r.benign).to_string(),
        pct((r.corrected + r.benign) as f64 / trials as f64),
    ]);
    let r2 = Campaign {
        codec: CodecKind::Tagged4,
        pattern: ErrorPattern::RandomBits { count: 2 },
        trials,
        seed: opts.seed ^ 0x7a68,
    }
    .run();
    t2.row(vec![
        "2-bit error, matching tag (detected)".to_string(),
        trials.to_string(),
        r2.due.to_string(),
        pct(r2.due_rate()),
    ]);
    println!("{}", t2.to_markdown());
    emit_csv("f12_tagged_coverage", &t2)?;
    Ok(())
}
