//! F3 — row-buffer behaviour: reserved-region vs row-colocated ECC (C1).
//!
//! Both variants fetch ECC naively (no on-chip ECC state), isolating the
//! placement effect: co-location turns ECC fetches into row hits.

use crate::geomean;
use crate::report::{banner, emit_csv, f3, pct, Table};
use crate::runner::{require, run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;

/// Prints and saves F3.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F3",
        &format!(
            "Row-buffer hit rate and performance: reserved-region vs co-located ECC ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let schemes = [
        SchemeKind::NoProtection,
        SchemeKind::InlineNaive { coverage: 8 }, // reserved-region placement
        SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()), // C1 only
    ];
    let results = run_matrix(&cfg, &Workload::ALL, &schemes, opts);
    let mut t = Table::new(vec![
        "workload",
        "row-hit (ecc off)",
        "row-hit (reserved)",
        "row-hit (colocated)",
        "perf (reserved)",
        "perf (colocated)",
    ]);
    let mut reserved_norm = Vec::new();
    let mut coloc_norm = Vec::new();
    for w in Workload::ALL {
        let base = &require(&results, w, "no-protection")?.stats;
        let reserved = &require(&results, w, "inline-naive")?.stats;
        let coloc = &require(&results, w, "cachecraft")?.stats;
        let rn = base.exec_cycles as f64 / reserved.exec_cycles as f64;
        let cn = base.exec_cycles as f64 / coloc.exec_cycles as f64;
        reserved_norm.push(rn);
        coloc_norm.push(cn);
        t.row(vec![
            w.name().to_string(),
            pct(base.row_hit_rate()),
            pct(reserved.row_hit_rate()),
            pct(coloc.row_hit_rate()),
            f3(rn),
            f3(cn),
        ]);
    }
    t.row(vec![
        "**geomean**".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        f3(geomean(&reserved_norm)),
        f3(geomean(&coloc_norm)),
    ]);
    println!("{}", t.to_markdown());
    emit_csv("f3_rowhit", &t)?;
    Ok(())
}
