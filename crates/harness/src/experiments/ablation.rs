//! F7 — ablation of the CacheCraft mechanisms over the memory-intensive
//! subset: each component alone, pairwise with C1, and the full design.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F7.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F7",
        &format!(
            "CacheCraft ablation, normalized to ECC-off ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let variants: Vec<(&str, SchemeKind)> = vec![
        ("ecc-off", SchemeKind::NoProtection),
        ("naive", SchemeKind::InlineNaive { coverage: 8 }),
        (
            "C1 (colocate)",
            SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()),
        ),
        (
            "C2 (fragments)",
            SchemeKind::CacheCraft(CacheCraftConfig::fragments_only()),
        ),
        (
            "C3 (reconstruct)",
            SchemeKind::CacheCraft(CacheCraftConfig::reconstruct_only()),
        ),
        (
            "C1+C2",
            SchemeKind::CacheCraft(CacheCraftConfig {
                reconstruct: false,
                ..CacheCraftConfig::default()
            }),
        ),
        (
            "C1+C3",
            SchemeKind::CacheCraft(CacheCraftConfig {
                fragment_store: false,
                ..CacheCraftConfig::default()
            }),
        ),
        (
            "full (C1+C2+C3)",
            SchemeKind::CacheCraft(CacheCraftConfig::full()),
        ),
    ];
    let kinds: Vec<SchemeKind> = variants.iter().map(|&(_, k)| k).collect();
    let results = run_matrix(&cfg, &SWEEP_SUBSET, &kinds, opts);

    let mut header = vec!["variant".to_string()];
    header.extend(SWEEP_SUBSET.iter().map(|w| w.name().to_string()));
    header.push("geomean".to_string());
    let mut t = Table::new(header);
    // Baselines per workload = the ecc-off row.
    let baselines: Vec<u64> = SWEEP_SUBSET
        .iter()
        .enumerate()
        .map(|(wi, _)| results[wi * kinds.len()].stats.exec_cycles)
        .collect();
    for (vi, (label, _)) in variants.iter().enumerate() {
        let mut row = vec![label.to_string()];
        let mut norms = Vec::new();
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let cell = &results[wi * kinds.len() + vi];
            let norm = baselines[wi] as f64 / cell.stats.exec_cycles as f64;
            norms.push(norm);
            row.push(f3(norm));
        }
        row.push(f3(geomean(&norms)));
        t.row(row);
    }
    println!("{}", t.to_markdown());
    emit_csv("f7_ablation", &t)?;
    Ok(())
}
