//! F15 (extension) — CacheCraft vs compression-backed inline ECC.
//!
//! Frugal-ECC-style compression (Kim et al., SC'15) is the other way to
//! make inline ECC cheap: if an atom compresses below the check-bit
//! budget, data and ECC travel in one transaction. Its effectiveness is
//! tied to data compressibility, which this experiment sweeps; CacheCraft
//! needs no assumption about data values. The crossover compressibility
//! is the figure's takeaway.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F15.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F15",
        &format!(
            "Compression-backed inline ECC vs CacheCraft, geomean over the sweep subset ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let mut t = Table::new(vec!["scheme", "normalized perf"]);
    // Baseline + cachecraft once.
    let fixed = [
        SchemeKind::NoProtection,
        SchemeKind::CacheCraft(CacheCraftConfig::full()),
    ];
    let results = run_matrix(&cfg, &SWEEP_SUBSET, &fixed, opts);
    let mut base = Vec::new();
    let mut craft = Vec::new();
    for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
        base.push(results[wi * 2].stats.exec_cycles as f64);
        craft.push(base[wi] / results[wi * 2 + 1].stats.exec_cycles as f64);
    }
    t.row(vec!["cachecraft".to_string(), f3(geomean(&craft))]);
    for pct in [0u8, 50, 75, 90, 100] {
        let schemes = [SchemeKind::CompressedInline {
            coverage: 8,
            compress_pct: pct,
        }];
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let norms: Vec<f64> = results
            .iter()
            .enumerate()
            .map(|(wi, r)| base[wi] / r.stats.exec_cycles as f64)
            .collect();
        t.row(vec![
            format!("compressed-inline ({pct}% compressible)"),
            f3(geomean(&norms)),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f15_compression", &t)?;
    Ok(())
}
