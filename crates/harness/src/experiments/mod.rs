//! One module per experiment of the reconstructed evaluation (DESIGN.md §6).
//!
//! Every module exposes `run(&ExpOptions)`: it prints the experiment's
//! markdown table(s) to stdout and saves CSV/JSON artifacts under
//! `results/`. The `exp-*` binaries are thin wrappers; `exp-all` chains
//! every experiment for the EXPERIMENTS.md refresh.

pub mod ablation;
pub mod config_table;
pub mod ecchit;
pub mod energy;
pub mod faults;
pub mod frugal;
pub mod hbm;
pub mod main_result;
pub mod motivation;
pub mod reliability;
pub mod rowhit;
pub mod scheduler;
pub mod sens_channels;
pub mod sens_ecccap;
pub mod sens_l2;
pub mod sens_ratio;
pub mod storage;
pub mod tagged;
pub mod workload_table;

/// The memory-intensive subset used by the ablation and sensitivity
/// sweeps (keeps sweep cost manageable while covering the locality
/// spectrum: pure streams, partial-write scatter, halo reuse, gathers,
/// hot-table writes).
pub const SWEEP_SUBSET: [ccraft_workloads::Workload; 6] = [
    ccraft_workloads::Workload::VecAdd,
    ccraft_workloads::Workload::Saxpy,
    ccraft_workloads::Workload::Transpose,
    ccraft_workloads::Workload::Stencil2D,
    ccraft_workloads::Workload::Spmv,
    ccraft_workloads::Workload::Histogram,
];
