//! T3 — reliability: fault-injection coverage of the codecs the schemes
//! store in DRAM.

use crate::report::{banner, emit_csv, pct, Table};
use crate::runner::ExpOptions;
use crate::Error;
use ccraft_core::reliability::{Campaign, CodecKind};
use ccraft_ecc::inject::ErrorPattern;

/// Trials per (codec, pattern) cell.
const TRIALS: u32 = 2_000;

/// Prints and saves T3.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "T3",
        &format!("Reliability: outcome rates under injected errors ({TRIALS} trials/cell)"),
    );
    let patterns = [
        ("1 random bit", ErrorPattern::RandomBits { count: 1 }),
        ("2 random bits", ErrorPattern::RandomBits { count: 2 }),
        ("3 random bits", ErrorPattern::RandomBits { count: 3 }),
        ("4-bit burst", ErrorPattern::AdjacentBurst { len: 4 }),
        ("symbol (chip) error", ErrorPattern::SymbolError),
        ("chip lane (x4)", ErrorPattern::ChipLane { stride: 4 }),
    ];
    let mut t = Table::new(vec![
        "codec",
        "pattern",
        "benign",
        "corrected",
        "DUE",
        "SDC",
    ]);
    for codec in CodecKind::ALL {
        for (label, pattern) in patterns {
            let r = Campaign {
                codec,
                pattern,
                trials: TRIALS,
                seed: opts.seed ^ 0x7e11ab1e,
            }
            .run();
            t.row(vec![
                codec.name().to_string(),
                label.to_string(),
                pct(r.benign as f64 / r.trials as f64),
                pct(r.corrected as f64 / r.trials as f64),
                pct(r.due_rate()),
                pct(r.sdc_rate()),
            ]);
        }
    }
    println!("{}", t.to_markdown());
    emit_csv("t3_reliability", &t)?;
    Ok(())
}
