//! F8 — sensitivity to the ECC coverage ratio (redundancy budget):
//! 1:8 (12.5 %), 1:16 (6.25 %), 1:32 (3.125 %).
//!
//! Lighter codes shrink the carve-out and halve the ECC traffic per
//! covered byte, but each ECC atom then covers a *wider* neighbourhood —
//! which helps reach-based mechanisms (ECC cache, fragments) and hurts
//! nothing else.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F8.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F8",
        &format!(
            "Sensitivity to ECC coverage ratio, geomean over the sweep subset ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let mut t = Table::new(vec![
        "coverage",
        "redundancy",
        "naive",
        "ecc-cache",
        "cachecraft",
    ]);
    for coverage in [8u32, 16, 32] {
        let schemes = [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage },
            SchemeKind::EccCache {
                coverage,
                capacity_per_mc: 16 << 10,
            },
            SchemeKind::CacheCraft(CacheCraftConfig {
                coverage,
                ..CacheCraftConfig::full()
            }),
        ];
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 3];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 4].stats.exec_cycles as f64;
            for v in 0..3 {
                norms[v].push(base / results[wi * 4 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            format!("1:{coverage}"),
            format!("{:.2}%", 100.0 / coverage as f64),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
            f3(geomean(&norms[2])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f8_coverage_ratio", &t)?;
    Ok(())
}
