//! F16 (extension) — robustness to the warp scheduler: GTO vs round-robin.
//!
//! A sanity check that the headline conclusion does not hinge on the
//! scheduling policy the cores happen to use.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::{GpuConfig, SchedulerPolicy};

/// Prints and saves F16.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F16",
        &format!(
            "Warp-scheduler sensitivity, geomean over the sweep subset ({} size)",
            opts.size
        ),
    );
    let mut t = Table::new(vec!["scheduler", "naive", "ecc-cache", "cachecraft"]);
    for (label, policy) in [
        ("greedy-then-oldest", SchedulerPolicy::GreedyThenOldest),
        ("round-robin", SchedulerPolicy::RoundRobin),
    ] {
        let mut cfg = GpuConfig::gddr6();
        cfg.core.scheduler = policy;
        let schemes = SchemeKind::headline(&cfg);
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 3];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 4].stats.exec_cycles as f64;
            for v in 0..3 {
                norms[v].push(base / results[wi * 4 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            label.to_string(),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
            f3(geomean(&norms[2])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f16_scheduler", &t)?;
    Ok(())
}
