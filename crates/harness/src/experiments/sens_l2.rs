//! F9 — sensitivity to L2 capacity (per slice: 128 KiB – 1 MiB).
//!
//! Larger L2s filter more ECC-triggering misses and give the fragment
//! store more victims to cover; smaller L2s stress the protection path.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F9.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F9",
        &format!(
            "Sensitivity to L2 capacity, geomean over the sweep subset ({} size)",
            opts.size
        ),
    );
    let mut t = Table::new(vec![
        "L2/slice",
        "L2 total",
        "naive",
        "ecc-cache",
        "cachecraft",
    ]);
    for slice_kib in [128u64, 256, 512, 1024] {
        let mut cfg = GpuConfig::gddr6();
        cfg.l2.capacity_bytes = slice_kib << 10;
        cfg.validate().map_err(|e| Error::config(e.to_string()))?;
        let schemes = SchemeKind::headline(&cfg);
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 3];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 4].stats.exec_cycles as f64;
            for v in 0..3 {
                norms[v].push(base / results[wi * 4 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            format!("{slice_kib} KiB"),
            format!("{} MiB", (slice_kib * 8) >> 10),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
            f3(geomean(&norms[2])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f9_l2_capacity", &t)?;
    Ok(())
}
