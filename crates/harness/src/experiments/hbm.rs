//! F13 (extension) — generality across memory types: the headline schemes
//! on an HBM2-class machine (16 narrower channels, 1 KiB rows).
//!
//! HBM parts usually carry side-band ECC, but the comparison is still
//! informative: it shows whether CacheCraft's mechanisms depend on
//! GDDR-specific geometry (long rows, few channels) or survive a
//! many-channel, short-row memory — i.e., whether a vendor could use
//! inline ECC + CacheCraft instead of paying for side-band storage.

use super::SWEEP_SUBSET;
use crate::geomean;
use crate::report::{banner, emit_csv, f3, Table};
use crate::runner::{run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;

/// Prints and saves F13.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F13",
        &format!(
            "Generality: normalized perf on GDDR6-class vs HBM2-class machines ({} size)",
            opts.size
        ),
    );
    let mut t = Table::new(vec![
        "machine",
        "channels x row",
        "naive",
        "ecc-cache",
        "cachecraft",
    ]);
    for (label, cfg) in [
        ("GDDR6-class", GpuConfig::gddr6()),
        ("HBM2-class", GpuConfig::hbm2()),
    ] {
        let schemes = SchemeKind::headline(&cfg);
        let results = run_matrix(&cfg, &SWEEP_SUBSET, &schemes, opts);
        let mut norms = vec![Vec::new(); 3];
        for (wi, _) in SWEEP_SUBSET.iter().enumerate() {
            let base = results[wi * 4].stats.exec_cycles as f64;
            for v in 0..3 {
                norms[v].push(base / results[wi * 4 + 1 + v].stats.exec_cycles as f64);
            }
        }
        t.row(vec![
            label.to_string(),
            format!("{} x {} KiB", cfg.mem.channels, cfg.mem.row_bytes >> 10),
            f3(geomean(&norms[0])),
            f3(geomean(&norms[1])),
            f3(geomean(&norms[2])),
        ]);
    }
    println!("{}", t.to_markdown());
    emit_csv("f13_hbm", &t)?;
    Ok(())
}
