//! F4 + F5 — the main result: normalized performance and DRAM traffic of
//! the four headline schemes across the workload suite.

use crate::geomean;
use crate::report::{banner, emit_csv, emit_stats_json, f3, pct, Table};
use crate::runner::{require, run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::types::TrafficClass;
use ccraft_workloads::Workload;

/// Prints and saves F4 (normalized performance) and F5 (traffic).
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    let cfg = GpuConfig::gddr6();
    let schemes = SchemeKind::headline(&cfg);
    let results = run_matrix(&cfg, &Workload::ALL, &schemes, opts);

    banner(
        "F4",
        &format!("Normalized performance vs ECC-off ({} size)", opts.size),
    );
    let scheme_names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let mut header = vec!["workload".to_string()];
    header.extend(scheme_names.iter().map(|s| s.to_string()));
    let mut perf = Table::new(header);
    let mut per_scheme_norm: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in Workload::ALL {
        let base = require(&results, w, "no-protection")?.stats.clone();
        let mut row = vec![w.name().to_string()];
        for (i, name) in scheme_names.iter().enumerate() {
            let r = require(&results, w, name)?;
            let norm = r.normalized_perf(&base);
            per_scheme_norm[i].push(norm);
            row.push(f3(norm));
        }
        perf.row(row);
    }
    let mut gm_row = vec!["**geomean**".to_string()];
    for norms in &per_scheme_norm {
        gm_row.push(f3(geomean(norms)));
    }
    perf.row(gm_row);
    println!("{}", perf.to_markdown());
    emit_csv("f4_normalized_perf", &perf)?;

    banner("F5", "DRAM traffic per scheme (atoms; % is ECC share)");
    let mut traffic = Table::new(vec![
        "workload",
        "scheme",
        "data-rd",
        "data-wr",
        "ecc-rd",
        "ecc-wr",
        "ecc-share",
    ]);
    for w in Workload::ALL {
        for name in &scheme_names {
            let r = require(&results, w, name)?;
            let s = &r.stats;
            traffic.row(vec![
                w.name().to_string(),
                name.to_string(),
                s.dram_count(TrafficClass::DataRead).to_string(),
                s.dram_count(TrafficClass::DataWrite).to_string(),
                s.dram_count(TrafficClass::EccRead).to_string(),
                s.dram_count(TrafficClass::EccWrite).to_string(),
                pct(s.ecc_traffic_fraction()),
            ]);
        }
    }
    println!("{}", traffic.to_markdown());
    emit_csv("f5_dram_traffic", &traffic)?;

    let all_stats: Vec<_> = results.iter().map(|r| r.stats.clone()).collect();
    emit_stats_json("main_raw", &all_stats)?;
    Ok(())
}
