//! F1 + F2 — motivation: what naive inline ECC costs.

use crate::geomean;
use crate::report::{banner, emit_csv, f3, pct, Table};
use crate::runner::{require, run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::types::TrafficClass;
use ccraft_workloads::Workload;

/// Prints and saves F1 (performance loss) and F2 (traffic breakdown).
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    let cfg = GpuConfig::gddr6();
    let schemes = [
        SchemeKind::NoProtection,
        SchemeKind::InlineNaive { coverage: 8 },
    ];
    let results = run_matrix(&cfg, &Workload::ALL, &schemes, opts);

    banner(
        "F1",
        &format!(
            "Motivation: performance under naive inline ECC, normalized to ECC-off ({} size)",
            opts.size
        ),
    );
    let mut f1 = Table::new(vec!["workload", "normalized perf", "slowdown"]);
    let mut norms = Vec::new();
    for w in Workload::ALL {
        let base = &require(&results, w, "no-protection")?.stats;
        let naive = require(&results, w, "inline-naive")?;
        let norm = naive.normalized_perf(base);
        norms.push(norm);
        f1.row(vec![w.name().to_string(), f3(norm), pct(1.0 - norm)]);
    }
    f1.row(vec![
        "**geomean**".to_string(),
        f3(geomean(&norms)),
        pct(1.0 - geomean(&norms)),
    ]);
    println!("{}", f1.to_markdown());
    emit_csv("f1_motivation_perf", &f1)?;

    banner(
        "F2",
        "Motivation: DRAM traffic breakdown under naive inline ECC",
    );
    let mut f2 = Table::new(vec![
        "workload",
        "data rd",
        "data wr",
        "ecc rd",
        "ecc wr",
        "ecc share",
        "traffic amplification",
    ]);
    for w in Workload::ALL {
        let base = &require(&results, w, "no-protection")?.stats;
        let s = &require(&results, w, "inline-naive")?.stats;
        let amp = s.dram_bytes() as f64 / base.dram_bytes().max(1) as f64;
        f2.row(vec![
            w.name().to_string(),
            s.dram_count(TrafficClass::DataRead).to_string(),
            s.dram_count(TrafficClass::DataWrite).to_string(),
            s.dram_count(TrafficClass::EccRead).to_string(),
            s.dram_count(TrafficClass::EccWrite).to_string(),
            pct(s.ecc_traffic_fraction()),
            format!("{amp:.2}x"),
        ]);
    }
    println!("{}", f2.to_markdown());
    emit_csv("f2_motivation_traffic", &f2)?;
    Ok(())
}
