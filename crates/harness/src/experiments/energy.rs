//! F14 — energy: what memory protection costs in joules.
//!
//! Computed post hoc from run statistics with the event-based
//! [`EnergyModel`] (GDDR6-class constants; see `ccraft_sim::energy` for
//! provenance and caveats). Reported per scheme: total energy normalized
//! to ECC-off, and the fraction of energy spent on protection (ECC
//! bursts + on-chip ECC structures).

use crate::geomean;
use crate::report::{banner, emit_csv, f3, pct, Table};
use crate::runner::{require, run_matrix, ExpOptions};
use crate::Error;
use ccraft_core::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::energy::EnergyModel;
use ccraft_workloads::Workload;

/// Prints and saves F14.
///
/// # Errors
///
/// Returns an error when a required matrix cell is missing or a
/// report artifact cannot be written.
pub fn run(opts: &ExpOptions) -> Result<(), Error> {
    banner(
        "F14",
        &format!(
            "Energy overhead of protection, normalized to ECC-off ({} size)",
            opts.size
        ),
    );
    let cfg = GpuConfig::gddr6();
    let model = EnergyModel::gddr6();
    let schemes = SchemeKind::headline(&cfg);
    let results = run_matrix(&cfg, &Workload::ALL, &schemes, opts);
    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = Table::new(vec![
        "workload",
        "naive energy",
        "ecc-cache energy",
        "cachecraft energy",
        "cachecraft prot. share",
    ]);
    let mut norms = vec![Vec::new(); 3];
    for w in Workload::ALL {
        let base = require(&results, w, "no-protection")?;
        let base_e = model.evaluate(&base.stats, cfg.mem.channels).total_nj();
        let mut row = vec![w.name().to_string()];
        let mut craft_share = 0.0;
        for (i, name) in names.iter().enumerate().skip(1) {
            let r = require(&results, w, name)?;
            let e = model.evaluate(&r.stats, cfg.mem.channels);
            let norm = e.total_nj() / base_e;
            norms[i - 1].push(norm);
            row.push(format!("{:.3}x", norm));
            if *name == "cachecraft" {
                craft_share = e.protection_fraction();
            }
        }
        row.push(pct(craft_share));
        t.row(row);
    }
    t.row(vec![
        "**geomean**".to_string(),
        format!("{}x", f3(geomean(&norms[0]))),
        format!("{}x", f3(geomean(&norms[1]))),
        format!("{}x", f3(geomean(&norms[2]))),
        "-".to_string(),
    ]);
    println!("{}", t.to_markdown());
    emit_csv("f14_energy", &t)?;
    Ok(())
}
