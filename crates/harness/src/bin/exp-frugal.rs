//! Thin wrapper; see `ccraft_harness::experiments::frugal`.
fn main() {
    ccraft_harness::experiments::frugal::run(&ccraft_harness::ExpOptions::from_args());
}
