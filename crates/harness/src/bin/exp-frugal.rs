//! Thin wrapper; see `ccraft_harness::experiments::frugal`.
fn main() {
    ccraft_harness::run_experiment("exp-frugal", ccraft_harness::experiments::frugal::run);
}
