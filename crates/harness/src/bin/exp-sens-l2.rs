//! Thin wrapper; see `ccraft_harness::experiments::sens_l2`.
fn main() {
    ccraft_harness::run_experiment("exp-sens-l2", ccraft_harness::experiments::sens_l2::run);
}
