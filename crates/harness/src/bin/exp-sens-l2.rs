//! Thin wrapper; see `ccraft_harness::experiments::sens_l2`.
fn main() {
    ccraft_harness::experiments::sens_l2::run(&ccraft_harness::ExpOptions::from_args());
}
