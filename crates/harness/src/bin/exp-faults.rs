//! T6: fault injection under load (see `experiments::faults`).
//!
//! ```text
//! exp-faults [--inject <pattern>:<rate>] [--size ...] [--seed N]
//! ```

fn main() {
    ccraft_harness::run_experiment("exp-faults", ccraft_harness::experiments::faults::run);
}
