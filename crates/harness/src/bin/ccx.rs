//! `ccx` — the CacheCraft command-line driver.
//!
//! A user-facing front end over the library for one-off simulations,
//! without writing Rust:
//!
//! ```text
//! ccx list                               # workloads, schemes, machines
//! ccx run --workload spmv --scheme cachecraft --size small
//! ccx run --workload triad --scheme all --machine hbm2 --energy
//! ccx reliability --codec rs36 --pattern symbol --trials 5000
//! ```

use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_core::reliability::{Campaign, CodecKind};
use ccraft_ecc::inject::ErrorPattern;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::energy::EnergyModel;
use ccraft_workloads::{SizeClass, Workload};
use std::process::ExitCode;

const USAGE: &str = "\
ccx — CacheCraft simulator driver

USAGE:
  ccx list
  ccx run --workload <name|all> [--scheme <name|all>] [--size tiny|small|full]
          [--machine gddr6|hbm2] [--seed N] [--energy]
  ccx reliability [--codec <secded|rs36|rs18|crc32|tagged4>]
                  [--pattern <bit1|bit2|bit3|burst4|symbol|chiplane>] [--trials N] [--seed N]

Run `ccx list` to see every workload and scheme name.";

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scheme_by_name(name: &str, cfg: &GpuConfig) -> Option<SchemeKind> {
    match name {
        "no-protection" | "off" => Some(SchemeKind::NoProtection),
        "inline-naive" | "naive" => Some(SchemeKind::InlineNaive { coverage: 8 }),
        "ecc-cache" => Some(SchemeKind::EccCache {
            coverage: 8,
            capacity_per_mc: 16 << 10,
        }),
        "cachecraft" => Some(SchemeKind::CacheCraft(CacheCraftConfig::for_machine(cfg))),
        _ => None,
    }
}

fn cmd_list() -> ExitCode {
    println!("workloads:");
    for w in Workload::ALL {
        println!("  {w}");
    }
    println!("schemes:\n  no-protection\n  inline-naive\n  ecc-cache\n  cachecraft");
    println!("machines:\n  gddr6 (default)\n  hbm2");
    println!("sizes:\n  tiny\n  small (default)\n  full");
    println!("codecs:\n  secded  rs36  rs18  crc32  tagged4");
    println!("patterns:\n  bit1  bit2  bit3  burst4  symbol  chiplane");
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let machine = parse_flag(args, "--machine").unwrap_or_else(|| "gddr6".into());
    let cfg = match machine.as_str() {
        "gddr6" => GpuConfig::gddr6(),
        "hbm2" => GpuConfig::hbm2(),
        other => {
            eprintln!("unknown machine {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let size = match parse_flag(args, "--size").as_deref() {
        None | Some("small") => SizeClass::Small,
        Some("tiny") => SizeClass::Tiny,
        Some("full") => SizeClass::Full,
        Some(other) => {
            eprintln!("unknown size {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = parse_flag(args, "--seed")
        .map(|s| s.parse().expect("--seed expects an integer"))
        .unwrap_or(1);
    let show_energy = args.iter().any(|a| a == "--energy");
    let Some(workload_arg) = parse_flag(args, "--workload") else {
        eprintln!("--workload is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let workloads: Vec<Workload> = if workload_arg == "all" {
        Workload::ALL.to_vec()
    } else {
        match Workload::from_name(&workload_arg) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload {workload_arg:?} (see `ccx list`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let scheme_arg = parse_flag(args, "--scheme").unwrap_or_else(|| "all".into());
    let schemes: Vec<SchemeKind> = if scheme_arg == "all" {
        SchemeKind::headline(&cfg).to_vec()
    } else {
        match scheme_by_name(&scheme_arg, &cfg) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown scheme {scheme_arg:?} (see `ccx list`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let model = EnergyModel::gddr6();
    for w in workloads {
        let trace = w.generate(size, seed);
        println!("\n{trace}");
        for &kind in &schemes {
            let s = run_scheme(&cfg, kind, &trace);
            println!("{s}");
            if show_energy {
                println!("  energy: {}", model.evaluate(&s, cfg.mem.channels));
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_reliability(args: &[String]) -> ExitCode {
    let codec = match parse_flag(args, "--codec").as_deref() {
        None | Some("secded") => CodecKind::SecDed64,
        Some("rs36") => CodecKind::Rs36_32,
        Some("rs18") => CodecKind::Rs18_16,
        Some("crc32") => CodecKind::Crc32,
        Some("tagged4") => CodecKind::Tagged4,
        Some(other) => {
            eprintln!("unknown codec {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let pattern = match parse_flag(args, "--pattern").as_deref() {
        None | Some("bit1") => ErrorPattern::RandomBits { count: 1 },
        Some("bit2") => ErrorPattern::RandomBits { count: 2 },
        Some("bit3") => ErrorPattern::RandomBits { count: 3 },
        Some("burst4") => ErrorPattern::AdjacentBurst { len: 4 },
        Some("symbol") => ErrorPattern::SymbolError,
        Some("chiplane") => ErrorPattern::ChipLane { stride: 4 },
        Some(other) => {
            eprintln!("unknown pattern {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let trials: u32 = parse_flag(args, "--trials")
        .map(|s| s.parse().expect("--trials expects an integer"))
        .unwrap_or(2_000);
    let seed: u64 = parse_flag(args, "--seed")
        .map(|s| s.parse().expect("--seed expects an integer"))
        .unwrap_or(1);
    let r = Campaign {
        codec,
        pattern,
        trials,
        seed,
    }
    .run();
    println!("{codec} under {pattern} ({trials} trials):");
    println!(
        "  benign {:.2}%  corrected {:.2}%  DUE {:.2}%  SDC {:.2}%",
        100.0 * r.benign as f64 / r.trials as f64,
        100.0 * r.corrected as f64 / r.trials as f64,
        100.0 * r.due_rate(),
        100.0 * r.sdc_rate(),
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args),
        Some("reliability") => cmd_reliability(&args),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
