//! Thin wrapper; see `ccraft_harness::experiments::tagged`.
fn main() {
    ccraft_harness::run_experiment("exp-tagged", |opts| {
        ccraft_harness::experiments::tagged::run(opts);
    });
}
