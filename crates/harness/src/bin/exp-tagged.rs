//! Thin wrapper; see `ccraft_harness::experiments::tagged`.
fn main() {
    ccraft_harness::run_experiment("exp-tagged", ccraft_harness::experiments::tagged::run);
}
