//! Thin wrapper; see `ccraft_harness::experiments::tagged`.
fn main() {
    ccraft_harness::experiments::tagged::run(&ccraft_harness::ExpOptions::from_args());
}
