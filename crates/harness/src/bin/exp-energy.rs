//! Thin wrapper; see `ccraft_harness::experiments::energy`.
fn main() {
    ccraft_harness::run_experiment("exp-energy", ccraft_harness::experiments::energy::run);
}
