//! Thin wrapper; see `ccraft_harness::experiments::energy`.
fn main() {
    ccraft_harness::experiments::energy::run(&ccraft_harness::ExpOptions::from_args());
}
