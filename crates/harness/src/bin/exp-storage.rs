//! Thin wrapper; see `ccraft_harness::experiments::storage`.
fn main() {
    ccraft_harness::experiments::storage::run(&ccraft_harness::ExpOptions::from_args());
}
