//! Thin wrapper; see `ccraft_harness::experiments::storage`.
fn main() {
    ccraft_harness::run_experiment("exp-storage", ccraft_harness::experiments::storage::run);
}
