//! Thin wrapper; see `ccraft_harness::experiments::sens_channels`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-sens-channels",
        ccraft_harness::experiments::sens_channels::run,
    );
}
