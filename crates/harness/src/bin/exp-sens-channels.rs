//! Thin wrapper; see `ccraft_harness::experiments::sens_channels`.
fn main() {
    ccraft_harness::experiments::sens_channels::run(&ccraft_harness::ExpOptions::from_args());
}
