//! Thin wrapper; see `ccraft_harness::experiments::workload_table`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-workloads",
        ccraft_harness::experiments::workload_table::run,
    );
}
