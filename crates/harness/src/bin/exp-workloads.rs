//! Thin wrapper; see `ccraft_harness::experiments::workload_table`.
fn main() {
    ccraft_harness::experiments::workload_table::run(&ccraft_harness::ExpOptions::from_args());
}
