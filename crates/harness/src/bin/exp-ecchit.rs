//! Thin wrapper; see `ccraft_harness::experiments::ecchit`.
fn main() {
    ccraft_harness::run_experiment("exp-ecchit", ccraft_harness::experiments::ecchit::run);
}
