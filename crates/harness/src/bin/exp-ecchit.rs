//! Thin wrapper; see `ccraft_harness::experiments::ecchit`.
fn main() {
    ccraft_harness::experiments::ecchit::run(&ccraft_harness::ExpOptions::from_args());
}
