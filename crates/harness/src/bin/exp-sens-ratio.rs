//! Thin wrapper; see `ccraft_harness::experiments::sens_ratio`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-sens-ratio",
        ccraft_harness::experiments::sens_ratio::run,
    );
}
