//! Thin wrapper; see `ccraft_harness::experiments::sens_ratio`.
fn main() {
    ccraft_harness::experiments::sens_ratio::run(&ccraft_harness::ExpOptions::from_args());
}
