//! Thin wrapper; see `ccraft_harness::experiments::config_table`.
fn main() {
    ccraft_harness::experiments::config_table::run(&ccraft_harness::ExpOptions::from_args());
}
