//! Thin wrapper; see `ccraft_harness::experiments::config_table`.
fn main() {
    ccraft_harness::run_experiment("exp-config", ccraft_harness::experiments::config_table::run);
}
