//! Diagnostic probe (not part of the published experiment set): isolates
//! where a scheme's performance delta comes from by running one workload
//! across scheme/ablation variants with full stat dumps.

use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_harness::ExpOptions;
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;

fn main() {
    let opts = ExpOptions::from_args();
    let cfg = GpuConfig::gddr6();
    let name = std::env::args()
        .skip_while(|a| a != "--workload")
        .nth(1)
        .unwrap_or_else(|| "saxpy".to_string());
    let workload = Workload::from_name(&name).expect("unknown workload");
    let trace = workload.generate(opts.size, opts.seed);
    println!("{trace}");
    let variants: Vec<(&str, SchemeKind)> = vec![
        ("none", SchemeKind::NoProtection),
        ("naive", SchemeKind::InlineNaive { coverage: 8 }),
        (
            "ecccache",
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: 16 << 10,
            },
        ),
        ("cc-full", SchemeKind::CacheCraft(CacheCraftConfig::full())),
        (
            "cc-c1",
            SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()),
        ),
        (
            "cc-c2",
            SchemeKind::CacheCraft(CacheCraftConfig::fragments_only()),
        ),
        (
            "cc-c3",
            SchemeKind::CacheCraft(CacheCraftConfig::reconstruct_only()),
        ),
    ];
    for (label, kind) in variants {
        let s = run_scheme(&cfg, kind, &trace);
        println!("--- {label}\n{s}");
        println!("  protection: {:?}", s.protection);
    }
}
// (extended below by probe2)
