//! Thin wrapper; see `ccraft_harness::experiments::ablation`.
fn main() {
    ccraft_harness::experiments::ablation::run(&ccraft_harness::ExpOptions::from_args());
}
