//! Thin wrapper; see `ccraft_harness::experiments::ablation`.
fn main() {
    ccraft_harness::run_experiment("exp-ablation", ccraft_harness::experiments::ablation::run);
}
