//! Thin wrapper; see `ccraft_harness::experiments::hbm`.
fn main() {
    ccraft_harness::experiments::hbm::run(&ccraft_harness::ExpOptions::from_args());
}
