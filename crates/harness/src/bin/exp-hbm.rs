//! Thin wrapper; see `ccraft_harness::experiments::hbm`.
fn main() {
    ccraft_harness::run_experiment("exp-hbm", ccraft_harness::experiments::hbm::run);
}
