//! Thin wrapper; see `ccraft_harness::experiments::sens_ecccap`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-sens-ecccap",
        ccraft_harness::experiments::sens_ecccap::run,
    );
}
