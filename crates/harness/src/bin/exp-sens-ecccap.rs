//! Thin wrapper; see `ccraft_harness::experiments::sens_ecccap`.
fn main() {
    ccraft_harness::experiments::sens_ecccap::run(&ccraft_harness::ExpOptions::from_args());
}
