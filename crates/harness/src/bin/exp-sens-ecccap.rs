//! Thin wrapper; see `ccraft_harness::experiments::sens_ecccap`.
fn main() {
    ccraft_harness::run_experiment("exp-sens-ecccap", |opts| {
        ccraft_harness::experiments::sens_ecccap::run(opts);
    });
}
