//! Thin wrapper; see `ccraft_harness::experiments::rowhit`.
fn main() {
    ccraft_harness::experiments::rowhit::run(&ccraft_harness::ExpOptions::from_args());
}
