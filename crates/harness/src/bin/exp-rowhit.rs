//! Thin wrapper; see `ccraft_harness::experiments::rowhit`.
fn main() {
    ccraft_harness::run_experiment("exp-rowhit", ccraft_harness::experiments::rowhit::run);
}
