//! Thin wrapper; see `ccraft_harness::experiments::scheduler`.
fn main() {
    ccraft_harness::run_experiment("exp-scheduler", ccraft_harness::experiments::scheduler::run);
}
