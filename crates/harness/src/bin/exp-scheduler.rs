//! Thin wrapper; see `ccraft_harness::experiments::scheduler`.
fn main() {
    ccraft_harness::experiments::scheduler::run(&ccraft_harness::ExpOptions::from_args());
}
