//! Thin wrapper; see `ccraft_harness::experiments::motivation`.
fn main() {
    ccraft_harness::run_experiment("exp-motivation", |opts| {
        ccraft_harness::experiments::motivation::run(opts);
    });
}
