//! Thin wrapper; see `ccraft_harness::experiments::motivation`.
fn main() {
    ccraft_harness::experiments::motivation::run(&ccraft_harness::ExpOptions::from_args());
}
