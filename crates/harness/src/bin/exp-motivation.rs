//! Thin wrapper; see `ccraft_harness::experiments::motivation`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-motivation",
        ccraft_harness::experiments::motivation::run,
    );
}
