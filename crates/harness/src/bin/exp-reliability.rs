//! Thin wrapper; see `ccraft_harness::experiments::reliability`.
fn main() {
    ccraft_harness::experiments::reliability::run(&ccraft_harness::ExpOptions::from_args());
}
