//! Thin wrapper; see `ccraft_harness::experiments::reliability`.
fn main() {
    ccraft_harness::run_experiment(
        "exp-reliability",
        ccraft_harness::experiments::reliability::run,
    );
}
