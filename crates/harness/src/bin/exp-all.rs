//! Runs the complete reconstructed evaluation: every table and figure, in
//! report order. Use `--size full` for the numbers recorded in
//! EXPERIMENTS.md (takes minutes); the default `--size small` finishes in
//! well under a minute on a multicore host.
use ccraft_harness::experiments as exp;

fn main() {
    let t0 = std::time::Instant::now();
    ccraft_harness::run_experiment("exp-all", |opts| {
        exp::config_table::run(opts)?;
        exp::workload_table::run(opts)?;
        exp::motivation::run(opts)?;
        exp::rowhit::run(opts)?;
        exp::main_result::run(opts)?;
        exp::ecchit::run(opts)?;
        exp::ablation::run(opts)?;
        exp::sens_ratio::run(opts)?;
        exp::sens_l2::run(opts)?;
        exp::sens_ecccap::run(opts)?;
        exp::sens_channels::run(opts)?;
        exp::hbm::run(opts)?;
        exp::energy::run(opts)?;
        exp::frugal::run(opts)?;
        exp::scheduler::run(opts)?;
        exp::reliability::run(opts)?;
        exp::faults::run(opts)?;
        exp::storage::run(opts)?;
        exp::tagged::run(opts)
    });
    eprintln!(
        "\nAll experiments completed in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
