//! F4 + F5 — main result. See `ccraft_harness::experiments::main_result`.
fn main() {
    ccraft_harness::run_experiment("exp-main", ccraft_harness::experiments::main_result::run);
}
