//! F4 + F5 — main result. See `ccraft_harness::experiments::main_result`.
fn main() {
    ccraft_harness::experiments::main_result::run(&ccraft_harness::ExpOptions::from_args());
}
