//! Report emission: markdown tables to stdout, CSV and JSON to the
//! `results/` directory.

use ccraft_sim::stats::SimStats;
use ccraft_telemetry::manifest::RunManifest;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple markdown/CSV table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<1$}|", "", w + 2);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Renders CSV with RFC 4180 quoting: any cell containing a comma,
    /// double quote, or line break is wrapped in double quotes with
    /// embedded quotes doubled.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Resolves the results directory (`$CCRAFT_RESULTS` or `./results`),
/// creating it if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var_os("CCRAFT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a table as `<name>.csv` into the results directory (durably,
/// with a checksum footer — see [`crate::store`]) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_csv(name: &str, table: &Table) -> Result<PathBuf, crate::Error> {
    let path = results_dir()
        .map_err(|e| crate::Error::io("resolving results dir", e))?
        .join(format!("{name}.csv"));
    crate::store::write_durable(&path, table.to_csv().as_bytes())?;
    Ok(path)
}

/// Writes a run manifest as `manifest.json` into the results directory
/// (durably, with a checksum footer) and returns the path. Each run
/// overwrites the previous manifest, so the file always describes the
/// most recent experiment.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_manifest(manifest: &RunManifest) -> Result<PathBuf, crate::Error> {
    let path = results_dir()
        .map_err(|e| crate::Error::io("resolving results dir", e))?
        .join("manifest.json");
    crate::store::write_durable(&path, manifest.to_json().as_bytes())?;
    Ok(path)
}

/// Writes raw run statistics as `<name>.json` (durably, with a checksum
/// footer) and returns the path.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn save_stats_json(name: &str, stats: &[SimStats]) -> Result<PathBuf, crate::Error> {
    let path = results_dir()
        .map_err(|e| crate::Error::io("resolving results dir", e))?
        .join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(stats)
        .map_err(|e| crate::Error::config(format!("serializing {name}.json: {e}")))?;
    crate::store::write_durable(&path, json.as_bytes())?;
    Ok(path)
}

/// [`save_csv`] — the form experiment modules use with `?`.
///
/// # Errors
///
/// Returns [`Error::Io`](crate::Error::Io) naming the file on failure.
pub fn emit_csv(name: &str, table: &Table) -> Result<PathBuf, crate::Error> {
    save_csv(name, table)
}

/// [`save_stats_json`] — the form experiment modules use with `?`.
///
/// # Errors
///
/// Returns [`Error::Io`](crate::Error::Io) naming the file on failure.
pub fn emit_stats_json(name: &str, stats: &[SimStats]) -> Result<PathBuf, crate::Error> {
    save_stats_json(name, stats)
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n## {id}: {title}\n");
}

/// Formats a float with 3 decimals (the standard cell format).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Reads a results file back (testing / tooling convenience), with any
/// checksum footer stripped. Does not verify the checksum — tooling that
/// cares uses [`crate::store::read_verified`] directly.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn read_result(path: &Path) -> io::Result<String> {
    let bytes = fs::read(path)?;
    let payload = crate::store::strip_footer(&bytes);
    String::from_utf8(payload.to_vec()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-global `CCRAFT_RESULTS`.
    static RESULTS_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["kernel", "ipc"]);
        t.row(vec!["vecadd", "0.512"]);
        t.row(vec!["spmv", "0.100"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| kernel"));
        assert!(md.contains("| vecadd | 0.512 |"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"q\"\"z\"\n");
    }

    #[test]
    fn csv_quotes_line_breaks_per_rfc4180() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["multi\nline", "cr\rcell"]);
        t.row(vec!["plain", "also plain"]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\n\"multi\nline\",\"cr\rcell\"\nplain,also plain\n");
        // An unquoted cell must never contain a raw line break.
        for field in csv.split(',').flat_map(|f| f.split('\n')) {
            if !field.starts_with('"') {
                assert!(!field.contains('\r'), "unquoted CR in {field:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn save_and_read_round_trip() {
        let _guard = RESULTS_ENV.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("ccraft-test-{}", std::process::id()));
        std::env::set_var("CCRAFT_RESULTS", &dir);
        let mut t = Table::new(vec!["k"]);
        t.row(vec!["v"]);
        let path = save_csv("unit-test", &t).unwrap();
        assert_eq!(read_result(&path).unwrap(), "k\nv\n");
        // The on-disk file carries a valid checksum footer.
        let v = crate::store::read_verified(&path).unwrap();
        assert!(v.verified);
        assert_eq!(v.payload, b"k\nv\n");
        std::env::remove_var("CCRAFT_RESULTS");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn manifest_lands_in_results_dir() {
        let _guard = RESULTS_ENV.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("ccraft-manifest-{}", std::process::id()));
        std::env::set_var("CCRAFT_RESULTS", &dir);
        let mut m = RunManifest::new("unit-test");
        m.size = "tiny".to_string();
        m.seed = 9;
        m.note("cells", 4.0);
        let path = write_manifest(&m).unwrap();
        assert!(path.ends_with("manifest.json"));
        let text = read_result(&path).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.experiment, "unit-test");
        assert_eq!(back.seed, 9);
        std::env::remove_var("CCRAFT_RESULTS");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.51234), "0.512");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
