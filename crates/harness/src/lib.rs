//! # ccraft-harness — experiment harness for the CacheCraft evaluation
//!
//! Shared machinery behind the `exp-*` binaries: a parallel
//! workload×scheme run matrix, result aggregation (geometric means,
//! normalization), and markdown/CSV/JSON emitters. Each binary in
//! `src/bin/` regenerates one table or figure of the reconstructed
//! evaluation; `exp-all` runs the full set (see DESIGN.md §6 and
//! EXPERIMENTS.md).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cellcache;
pub mod chaos;
pub mod checkpoint;
pub mod error;
pub mod experiments;
pub mod metrics;
pub mod perfdiff;
pub mod report;
pub mod runner;
pub mod soak;
pub mod store;

pub use error::Error;
pub use runner::{
    run_cell, run_experiment, run_matrix, run_matrix_cells, run_matrix_cells_with_body,
    CacheDisposition, CellOutcome, CellRun, CellStatus, ExpOptions, MatrixResult, EXIT_DEGRADED,
    EXIT_FAILED, EXIT_OK, OPTIONS_USAGE,
};

/// Geometric mean of positive values; 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean over non-positive value {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
