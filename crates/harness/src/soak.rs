//! `ccx chaos-soak` — an end-to-end recovery verifier.
//!
//! Runs a real experiment binary twice over the same seed and size:
//!
//! 1. **Reference run** — fault-free, in its own results directory. This
//!    is the golden corpus the chaos run must reproduce.
//! 2. **Chaos run** — the same experiment with `CCRAFT_CHAOS` set on the
//!    child (so [`crate::chaos`] injects I/O faults into every store
//!    operation), killed with SIGKILL at seeded points and restarted with
//!    `--resume` until it completes.
//!
//! The soak then asserts the recovery contract from DESIGN.md §14: every
//! CSV the reference run produced exists in the chaos run's directory
//! **byte-identical** (checksum footer included), and each one carries a
//! valid checksum. Any `*.corrupt-*` quarantine files the chaos run left
//! behind are reported — they are evidence of detection working, not a
//! failure.
//!
//! Everything random is derived from the soak seed (kill delays via
//! SplitMix64, per-attempt chaos seeds by mixing the attempt index), so a
//! failing soak reproduces with the same arguments.

use crate::chaos::{self, ChaosConfig};
use crate::error::Error;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Exit status an experiment child may end with and still count as a
/// completed sweep (see [`crate::runner::EXIT_DEGRADED`]).
const ACCEPTED_EXITS: [i32; 2] = [crate::runner::EXIT_OK, crate::runner::EXIT_DEGRADED];

/// Configuration for one soak (see [`run_soak`]).
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Experiment binary name, e.g. `exp-main`.
    pub experiment: String,
    /// Size class passed to the child (`tiny`/`small`/`full`).
    pub size: String,
    /// Trace seed passed to the child.
    pub seed: u64,
    /// Worker threads passed to the child (0 = number of CPUs).
    pub threads: usize,
    /// `--sim-threads` passed to the child: threads each simulation's
    /// cycle loop is sharded across. Results are bit-identical at every
    /// setting, so the soak's byte-exact contract holds unchanged.
    pub sim_threads: u32,
    /// Fault schedule installed in the chaos run's children. The seed
    /// field is re-mixed per attempt so a permanent injected failure
    /// cannot repeat deterministically on every resume.
    pub chaos: ChaosConfig,
    /// Number of SIGKILLs to deliver before letting a run complete.
    pub kills: u32,
    /// Attempt budget for the chaos run (kills + completion retries).
    /// The final attempt runs with chaos disabled so the soak always
    /// terminates; reaching it is reported in [`SoakReport`].
    pub max_attempts: u32,
    /// Per-child wall-clock budget; a child exceeding it is killed and
    /// the soak fails.
    pub attempt_timeout: Duration,
    /// Explicit path to the experiment binary (tests); defaults to a
    /// sibling of the running executable.
    pub exe: Option<PathBuf>,
    /// Scratch root holding the `reference/` and `chaos/` results
    /// directories; defaults to a per-process directory under the
    /// system temp dir.
    pub root: Option<PathBuf>,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            experiment: "exp-main".to_string(),
            size: "tiny".to_string(),
            seed: 1,
            threads: 0,
            sim_threads: 1,
            chaos: ChaosConfig::quiet(1),
            kills: 3,
            max_attempts: 12,
            attempt_timeout: Duration::from_secs(300),
            exe: None,
            root: None,
        }
    }
}

/// What a completed soak observed. Produced only when the recovery
/// contract held; any violation is an [`Error`] instead.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Results directory of the fault-free reference run.
    pub reference_dir: PathBuf,
    /// Results directory of the chaos run.
    pub chaos_dir: PathBuf,
    /// Child processes launched for the chaos run (kills + retries + the
    /// completing run).
    pub attempts: u32,
    /// SIGKILLs actually delivered (a fast child may finish first).
    pub kills_delivered: u32,
    /// CSV files compared byte-for-byte against the reference.
    pub csv_files: usize,
    /// Quarantine files (`*.corrupt-*`) the chaos run left behind —
    /// corruption that was detected and preserved, not silently read.
    pub quarantined: Vec<String>,
    /// Whether the completing run exited degraded
    /// ([`crate::runner::EXIT_DEGRADED`]) rather than clean.
    pub degraded: bool,
    /// Whether the soak had to fall back to a chaos-free final attempt
    /// to complete within the attempt budget.
    pub chaos_disabled_final: bool,
}

impl SoakReport {
    /// Human summary for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos-soak: OK — {} CSV file(s) byte-identical to the fault-free reference\n\
             attempts: {} ({} kill(s) delivered){}{}\n",
            self.csv_files,
            self.attempts,
            self.kills_delivered,
            if self.degraded {
                ", completed degraded (quarantined cells)"
            } else {
                ""
            },
            if self.chaos_disabled_final {
                ", final attempt ran chaos-free"
            } else {
                ""
            },
        );
        if self.quarantined.is_empty() {
            out.push_str("quarantined files: none\n");
        } else {
            out.push_str(&format!(
                "quarantined files ({} — corruption detected and preserved):\n",
                self.quarantined.len()
            ));
            for q in &self.quarantined {
                out.push_str(&format!("  {q}\n"));
            }
        }
        out
    }
}

/// Locates the experiment binary: an explicit override, or a sibling of
/// the currently running executable (experiment binaries and `ccx` are
/// built into the same target directory).
fn resolve_exe(opts: &SoakOptions) -> Result<PathBuf, Error> {
    if let Some(exe) = &opts.exe {
        return Ok(exe.clone());
    }
    let me = std::env::current_exe().map_err(|e| Error::io("resolving current executable", e))?;
    let dir = me
        .parent()
        .ok_or_else(|| Error::config("current executable has no parent directory"))?;
    let candidate = dir.join(&opts.experiment);
    if candidate.is_file() {
        return Ok(candidate);
    }
    // Under `cargo test` the harness lives one level down in deps/.
    if let Some(parent) = dir.parent() {
        let candidate = parent.join(&opts.experiment);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(Error::config(format!(
        "experiment binary `{}` not found next to {} — build it first \
         (cargo build --release) or pass an explicit path",
        opts.experiment,
        dir.display()
    )))
}

/// Builds the child command for one run.
fn child_command(
    exe: &Path,
    opts: &SoakOptions,
    results: &Path,
    resume: bool,
    chaos_spec: Option<&str>,
) -> Command {
    let mut cmd = Command::new(exe);
    cmd.arg("--size")
        .arg(&opts.size)
        .arg("--seed")
        .arg(opts.seed.to_string())
        .arg("--threads")
        .arg(opts.threads.to_string());
    if opts.sim_threads > 1 {
        cmd.arg("--sim-threads").arg(opts.sim_threads.to_string());
    }
    if resume {
        cmd.arg("--resume");
    }
    cmd.env("CCRAFT_RESULTS", results)
        .env("CCRAFT_PROGRESS", "0")
        .env_remove(chaos::CHAOS_ENV)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = chaos_spec {
        cmd.env(chaos::CHAOS_ENV, spec);
    }
    cmd
}

/// Waits for `child` until `deadline`, polling; returns its exit code
/// (`None` for signal death, which a SIGKILL-free run must not produce).
fn wait_with_deadline(child: &mut Child, deadline: Instant) -> Result<Option<i32>, Error> {
    loop {
        if let Some(status) = child
            .try_wait()
            .map_err(|e| Error::io("polling soak child", e))?
        {
            return Ok(status.code());
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(Error::config(
                "chaos-soak: child exceeded the attempt timeout",
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs one fault-free reference run to completion in `results`.
fn run_reference(exe: &Path, opts: &SoakOptions, results: &Path) -> Result<(), Error> {
    let mut child = child_command(exe, opts, results, false, None)
        .spawn()
        .map_err(|e| Error::io("spawning reference run", e))?;
    let code = wait_with_deadline(&mut child, Instant::now() + opts.attempt_timeout)?;
    if code != Some(crate::runner::EXIT_OK) {
        return Err(Error::config(format!(
            "chaos-soak: fault-free reference run of {} exited with {code:?} — \
             fix the experiment before soaking it",
            opts.experiment
        )));
    }
    Ok(())
}

/// The chaos run: seeded kills, resume after each, then completion
/// attempts. Returns `(attempts, kills_delivered, degraded, chaos_free_final)`.
fn run_chaos(
    exe: &Path,
    opts: &SoakOptions,
    results: &Path,
) -> Result<(u32, u32, bool, bool), Error> {
    let max_attempts = opts.max_attempts.max(opts.kills + 2);
    let mut kills_delivered = 0u32;
    for attempt in 0..max_attempts {
        // Re-mix the chaos seed per attempt: a permanently injected
        // failure (fsync/rename/enospc) must not recur at the same op on
        // every resume, or the soak could never converge.
        let mut cfg = opts.chaos.clone();
        cfg.seed = chaos::splitmix64(opts.chaos.seed ^ u64::from(attempt));
        let chaos_free_final = attempt == max_attempts - 1;
        let spec = if chaos_free_final {
            None
        } else {
            Some(cfg.to_spec())
        };
        let resume = attempt > 0;
        let mut child = child_command(exe, opts, results, resume, spec.as_deref())
            .spawn()
            .map_err(|e| Error::io("spawning chaos run", e))?;
        let deadline = Instant::now() + opts.attempt_timeout;

        if kills_delivered < opts.kills && !chaos_free_final {
            // Seeded kill point: 30–530 ms into the run, long enough for
            // some cells to land in the checkpoint on tiny sizes, short
            // enough to interrupt most runs.
            let h = chaos::splitmix64(opts.seed ^ chaos::splitmix64(u64::from(attempt) | 1 << 32));
            let delay = Duration::from_millis(30 + h % 500);
            std::thread::sleep(delay.min(opts.attempt_timeout));
            match child
                .try_wait()
                .map_err(|e| Error::io("polling soak child", e))?
            {
                Some(status) => {
                    // Finished before the kill point; treat as a
                    // completion attempt below.
                    let code = status.code();
                    if code.is_some_and(|c| ACCEPTED_EXITS.contains(&c)) {
                        return Ok((
                            attempt + 1,
                            kills_delivered,
                            code == Some(crate::runner::EXIT_DEGRADED),
                            false,
                        ));
                    }
                    eprintln!(
                        "chaos-soak: attempt {} exited {code:?} under faults; resuming",
                        attempt + 1
                    );
                    continue;
                }
                None => {
                    child
                        .kill()
                        .map_err(|e| Error::io("killing soak child", e))?;
                    let _ = child.wait();
                    kills_delivered += 1;
                    eprintln!(
                        "chaos-soak: kill {kills_delivered}/{} after {delay:?} (attempt {})",
                        opts.kills,
                        attempt + 1
                    );
                    continue;
                }
            }
        }

        // Completion attempt: let the child run.
        let code = wait_with_deadline(&mut child, deadline)?;
        if code.is_some_and(|c| ACCEPTED_EXITS.contains(&c)) {
            return Ok((
                attempt + 1,
                kills_delivered,
                code == Some(crate::runner::EXIT_DEGRADED),
                chaos_free_final,
            ));
        }
        eprintln!(
            "chaos-soak: attempt {} exited {code:?} under faults; resuming",
            attempt + 1
        );
    }
    Err(Error::config(format!(
        "chaos-soak: no attempt completed within the budget of {max_attempts} \
         (even the final chaos-free one)"
    )))
}

/// Lists the `.csv` file names directly inside `dir`, sorted.
fn csv_names(dir: &Path) -> Result<Vec<String>, Error> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::io(format!("listing {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(format!("listing {}", dir.display()), e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Collects quarantine files (`*.corrupt-*`) directly inside `dir`.
fn quarantine_names(dir: &Path) -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".corrupt-") {
                names.push(name);
            }
        }
    }
    names.sort();
    names
}

/// Verifies the recovery contract: every reference CSV exists in the
/// chaos directory byte-identical and checksum-valid.
fn compare_outputs(reference: &Path, chaos_dir: &Path) -> Result<usize, Error> {
    let ref_csvs = csv_names(reference)?;
    if ref_csvs.is_empty() {
        return Err(Error::config(format!(
            "chaos-soak: reference run produced no CSV files in {}",
            reference.display()
        )));
    }
    for name in &ref_csvs {
        let ref_path = reference.join(name);
        let chaos_path = chaos_dir.join(name);
        let want = std::fs::read(&ref_path)
            .map_err(|e| Error::io(format!("reading {}", ref_path.display()), e))?;
        let got = std::fs::read(&chaos_path).map_err(|e| {
            Error::io(
                format!("chaos run never produced {}", chaos_path.display()),
                e,
            )
        })?;
        if want != got {
            return Err(Error::config(format!(
                "chaos-soak: {name} differs between the chaos run and the \
                 fault-free reference ({} vs {} bytes) — recovery is not byte-exact",
                got.len(),
                want.len()
            )));
        }
        // Identical bytes with a valid footer on one side implies the
        // other, but verify the chaos copy explicitly: the contract is
        // "checksum-valid", not just "same as reference".
        let v = crate::store::read_verified(&chaos_path)?;
        if !v.verified {
            return Err(Error::config(format!(
                "chaos-soak: {name} carries no checksum footer"
            )));
        }
    }
    Ok(ref_csvs.len())
}

/// Runs the full soak: reference run, chaos run with kills and resumes,
/// byte-exact comparison. See the module docs for the contract.
///
/// # Errors
///
/// Returns [`Error::Config`] when the recovery contract is violated
/// (missing/differing/unverifiable outputs, or no attempt completed) and
/// [`Error::Io`] on spawn/read failures.
pub fn run_soak(opts: &SoakOptions) -> Result<SoakReport, Error> {
    let exe = resolve_exe(opts)?;
    let root = opts.root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ccraft-soak-{}", std::process::id()))
    });
    let reference_dir = root.join("reference");
    let chaos_dir = root.join("chaos");
    for dir in [&reference_dir, &chaos_dir] {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
    }

    eprintln!(
        "chaos-soak: reference run ({} --size {} --seed {})",
        opts.experiment, opts.size, opts.seed
    );
    run_reference(&exe, opts, &reference_dir)?;

    eprintln!(
        "chaos-soak: chaos run under `{}`, {} kill(s)",
        opts.chaos.to_spec(),
        opts.kills
    );
    let (attempts, kills_delivered, degraded, chaos_disabled_final) =
        run_chaos(&exe, opts, &chaos_dir)?;

    let csv_files = compare_outputs(&reference_dir, &chaos_dir)?;
    Ok(SoakReport {
        quarantined: quarantine_names(&chaos_dir),
        reference_dir,
        chaos_dir,
        attempts,
        kills_delivered,
        csv_files,
        degraded,
        chaos_disabled_final,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_rejects_missing_and_differing_files() {
        let root = std::env::temp_dir().join(format!("ccraft-soak-cmp-{}", std::process::id()));
        let a = root.join("a");
        let b = root.join("b");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();

        // Empty reference is itself an error.
        assert!(compare_outputs(&a, &b).is_err());

        crate::store::write_durable(&a.join("t.csv"), b"h\n1\n").unwrap();
        // Missing on the chaos side.
        assert!(compare_outputs(&a, &b).is_err());
        // Differing bytes.
        crate::store::write_durable(&b.join("t.csv"), b"h\n2\n").unwrap();
        assert!(compare_outputs(&a, &b).is_err());
        // Identical and verified.
        crate::store::write_durable(&b.join("t.csv"), b"h\n1\n").unwrap();
        assert_eq!(compare_outputs(&a, &b).unwrap(), 1);
        // A footer-less (legacy) chaos copy fails the contract even when
        // byte-identical to a footer-less reference.
        std::fs::write(a.join("u.csv"), b"x\n").unwrap();
        std::fs::write(b.join("u.csv"), b"x\n").unwrap();
        assert!(compare_outputs(&a, &b).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_listing_spots_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("ccraft-soak-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint.json.corrupt-0"), b"junk").unwrap();
        std::fs::write(dir.join("main.csv"), b"fine").unwrap();
        assert_eq!(quarantine_names(&dir), vec!["checkpoint.json.corrupt-0"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_binary_is_a_config_error() {
        let opts = SoakOptions {
            experiment: "exp-does-not-exist".to_string(),
            ..SoakOptions::default()
        };
        let err = resolve_exe(&opts).unwrap_err().to_string();
        assert!(err.contains("exp-does-not-exist"), "{err}");
        // An explicit override bypasses the search entirely.
        let opts = SoakOptions {
            exe: Some(PathBuf::from("/bin/true")),
            ..SoakOptions::default()
        };
        assert_eq!(resolve_exe(&opts).unwrap(), PathBuf::from("/bin/true"));
    }

    #[test]
    fn report_renders_quarantines_and_modes() {
        let r = SoakReport {
            reference_dir: PathBuf::from("/tmp/ref"),
            chaos_dir: PathBuf::from("/tmp/chaos"),
            attempts: 5,
            kills_delivered: 3,
            csv_files: 2,
            quarantined: vec!["checkpoint.json.corrupt-0".to_string()],
            degraded: true,
            chaos_disabled_final: false,
        };
        let text = r.render();
        assert!(text.contains("2 CSV file(s)"), "{text}");
        assert!(text.contains("3 kill(s)"), "{text}");
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("checkpoint.json.corrupt-0"), "{text}");
        let clean = SoakReport {
            quarantined: Vec::new(),
            degraded: false,
            ..r
        };
        assert!(clean.render().contains("quarantined files: none"));
    }
}
