//! Crash-resilient experiment checkpointing.
//!
//! The runner records every completed matrix cell into
//! `results/checkpoint.json` (written atomically after each cell), so a
//! crashed or killed experiment can be re-run with `--resume` and only
//! the unfinished cells execute. A checkpoint belongs to one experiment
//! configuration, captured in its *fingerprint* (experiment id + size +
//! seed + canonical fault-injection spec, or `none`); resuming against a
//! different configuration — including a changed `--inject` — discards
//! the stale file rather than mixing results.
//!
//! Cell keys are `m<call>/<workload>/<scheme>`: experiments may invoke
//! the matrix runner several times, and calls are numbered in execution
//! order, which is deterministic across runs of the same binary.
//!
//! The active session is process-global (installed by
//! [`crate::runner::run_experiment`]) so every matrix call inside an
//! experiment body checkpoints automatically, without threading a handle
//! through each experiment's signature.

use crate::error::Error;
use ccraft_sim::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Format version of `checkpoint.json`.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// Cell completed successfully.
pub const STATUS_OK: &str = "ok";
/// Cell panicked (message recorded).
pub const STATUS_FAILED: &str = "failed";
/// Cell exceeded its watchdog timeout.
pub const STATUS_TIMEOUT: &str = "timeout";

/// Outcome of one recorded matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// `m<call>/<workload>/<scheme>` identifier.
    pub key: String,
    /// One of [`STATUS_OK`] / [`STATUS_FAILED`] / [`STATUS_TIMEOUT`].
    pub status: String,
    /// Panic or timeout message, for failed cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub message: Option<String>,
    /// Execution attempts consumed (≥ 1).
    pub attempts: u32,
    /// Per-attempt outcome log (`"attempt 1: failed: <msg>"`, ...),
    /// recorded so a post-mortem can see *how* a cell reached its final
    /// status. Absent in checkpoints from before this field existed.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub history: Vec<String>,
    /// The cell's results, for successful cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<SimStats>,
    /// Threads the cell's cycle loop was *actually* sharded across.
    /// Telemetry/fault-injection cells fall back to 1 regardless of the
    /// requested `--sim-threads`; resumed cells replay this recorded
    /// value so manifests stay truthful across a resume. Checkpoints
    /// from before this field existed read back as 1.
    #[serde(default = "default_cell_sim_threads")]
    pub sim_threads: u32,
    /// Result-cache disposition (`"hit"` / `"miss"` / `"uncached"`);
    /// empty in checkpoints from before the cache existed.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub cache: String,
}

/// Serde default: checkpoints from before sharded execution ran every
/// cell single-threaded.
fn default_cell_sim_threads() -> u32 {
    1
}

impl CellRecord {
    /// `true` when the cell completed and its stats can be replayed.
    pub fn is_ok(&self) -> bool {
        self.status == STATUS_OK && self.stats.is_some()
    }
}

/// On-disk checkpoint contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version.
    pub schema: u32,
    /// Experiment configuration this checkpoint belongs to.
    pub fingerprint: String,
    /// Completed cells, in completion order.
    pub cells: Vec<CellRecord>,
}

/// A live checkpointing session for one experiment run.
#[derive(Debug)]
pub struct Session {
    path: PathBuf,
    checkpoint: Checkpoint,
    /// Keys loaded from a resumed file — cells eligible for skipping.
    resumed_keys: Vec<String>,
    matrix_calls: u32,
    /// Non-fatal problems hit while loading (corrupt checkpoint
    /// quarantined, schema mismatch, ...); surfaced in the run manifest.
    warnings: Vec<String>,
}

impl Session {
    /// Opens a session at `path` for the given fingerprint.
    ///
    /// With `resume`, an existing checkpoint with a matching fingerprint
    /// is loaded and its successful cells become skippable; a missing,
    /// unreadable, or mismatched file starts fresh (with a stderr note on
    /// mismatch, since that usually means a different `--size`/`--seed`).
    pub fn start(fingerprint: &str, path: PathBuf, resume: bool) -> Self {
        let mut resumed_keys = Vec::new();
        let mut warnings = Vec::new();
        let mut checkpoint = Checkpoint {
            schema: CHECKPOINT_SCHEMA,
            fingerprint: fingerprint.to_string(),
            cells: Vec::new(),
        };
        if resume {
            match Self::load(&path, &mut warnings) {
                Some(prev) if prev.fingerprint == fingerprint => {
                    resumed_keys = prev
                        .cells
                        .iter()
                        .filter(|c| c.is_ok())
                        .map(|c| c.key.clone())
                        .collect();
                    checkpoint = prev;
                }
                Some(prev) => {
                    warnings.push(format!(
                        "checkpoint at {} was produced by a different \
                         configuration ({} != {fingerprint}); starting fresh",
                        path.display(),
                        prev.fingerprint
                    ));
                }
                None => {}
            }
            for w in &warnings {
                eprintln!("warning: {w}");
            }
        }
        Session {
            path,
            checkpoint,
            resumed_keys,
            matrix_calls: 0,
            warnings,
        }
    }

    /// Loads and verifies a checkpoint. A file that fails checksum
    /// verification or cannot be parsed is *quarantined* (moved to
    /// `<name>.corrupt-<n>` by [`crate::store`]) rather than silently
    /// overwritten, and the problem is appended to `warnings` for the
    /// run manifest.
    fn load(path: &Path, warnings: &mut Vec<String>) -> Option<Checkpoint> {
        if !path.exists() {
            return None;
        }
        let text = match crate::store::read_verified_string(path) {
            Ok((text, _verified)) => text,
            Err(e @ Error::Corrupt { .. }) => {
                // read_verified already quarantined the file.
                warnings.push(format!("checkpoint {e}; starting fresh"));
                return None;
            }
            Err(e) => {
                warnings.push(format!(
                    "checkpoint at {} unreadable: {e}; starting fresh",
                    path.display()
                ));
                return None;
            }
        };
        match serde_json::from_str::<Checkpoint>(&text) {
            Ok(cp) if cp.schema == CHECKPOINT_SCHEMA => Some(cp),
            Ok(cp) => {
                let preserved = match crate::store::quarantine(path) {
                    Ok(q) => format!("preserved at {}", q.display()),
                    Err(e) => format!("quarantine failed: {e}"),
                };
                warnings.push(format!(
                    "checkpoint at {} has schema {} (want {CHECKPOINT_SCHEMA}); \
                     {preserved}; starting fresh",
                    path.display(),
                    cp.schema
                ));
                None
            }
            Err(e) => {
                let preserved = match crate::store::quarantine(path) {
                    Ok(q) => format!("preserved at {}", q.display()),
                    Err(e) => format!("quarantine failed: {e}"),
                };
                warnings.push(format!(
                    "unparseable checkpoint at {}: {e}; {preserved}; starting fresh",
                    path.display()
                ));
                None
            }
        }
    }

    /// Key prefix for the next matrix call (`m0`, `m1`, ...). Call order
    /// is deterministic per experiment binary, so prefixes line up across
    /// a resume.
    pub fn next_matrix_prefix(&mut self) -> String {
        let p = format!("m{}", self.matrix_calls);
        self.matrix_calls += 1;
        p
    }

    /// Looks up a resumable record: successful cells loaded from a
    /// `--resume`d checkpoint. Cells recorded during *this* run, and
    /// failed or timed-out cells, are not skippable.
    pub fn resumable(&self, key: &str) -> Option<&CellRecord> {
        if !self.resumed_keys.iter().any(|k| k == key) {
            return None;
        }
        self.checkpoint
            .cells
            .iter()
            .find(|c| c.key == key && c.is_ok())
    }

    /// Records one completed cell (replacing any previous record with the
    /// same key) and persists the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the checkpoint file cannot be written.
    pub fn record(&mut self, record: CellRecord) -> Result<(), Error> {
        self.checkpoint.cells.retain(|c| c.key != record.key);
        self.checkpoint.cells.push(record);
        self.save()
    }

    /// All recorded cells.
    pub fn cells(&self) -> &[CellRecord] {
        &self.checkpoint.cells
    }

    /// Messages of every non-ok cell, for the run manifest.
    pub fn failure_messages(&self) -> Vec<String> {
        self.checkpoint
            .cells
            .iter()
            .filter(|c| !c.is_ok())
            .map(|c| {
                format!(
                    "cell {} {}: {}",
                    c.key,
                    c.status,
                    c.message.as_deref().unwrap_or("(no message)")
                )
            })
            .collect()
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Non-fatal problems hit while loading the checkpoint (corrupt file
    /// quarantined, schema mismatch, ...), for the run manifest.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Cells whose final status is not ok — the quarantined cells of a
    /// degraded run.
    pub fn failed_cells(&self) -> usize {
        self.checkpoint.cells.iter().filter(|c| !c.is_ok()).count()
    }

    /// Writes the checkpoint durably through [`crate::store`]: checksum
    /// footer, temp file + fsync + atomic rename + directory fsync. A
    /// kill mid-write leaves the previous checkpoint intact; a host crash
    /// after return cannot lose it.
    fn save(&self) -> Result<(), Error> {
        let json = serde_json::to_string_pretty(&self.checkpoint)
            .map_err(|e| Error::config(format!("serializing checkpoint: {e}")))?;
        crate::store::write_durable(&self.path, json.as_bytes())
    }
}

/// The process-global active session, if any.
static CURRENT: Mutex<Option<Arc<Mutex<Session>>>> = Mutex::new(None);

fn lock_current() -> std::sync::MutexGuard<'static, Option<Arc<Mutex<Session>>>> {
    // A poisoned registry lock only means some thread panicked mid-swap;
    // the Option inside is still valid.
    CURRENT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `session` as the process-global session, returning the shared
/// handle. Replaces any previous session.
pub fn install(session: Session) -> Arc<Mutex<Session>> {
    let handle = Arc::new(Mutex::new(session));
    *lock_current() = Some(Arc::clone(&handle));
    handle
}

/// Removes the global session (end of experiment).
pub fn clear() {
    *lock_current() = None;
}

/// The currently-installed session, if any.
pub fn current() -> Option<Arc<Mutex<Session>>> {
    lock_current().clone()
}

/// Serializes tests that touch the process-global session (or run
/// matrices, which consult it), so parallel test threads don't record
/// cells into each other's sessions.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccraft-checkpoint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ok_record(key: &str) -> CellRecord {
        CellRecord {
            key: key.to_string(),
            status: STATUS_OK.to_string(),
            message: None,
            attempts: 1,
            history: vec!["attempt 1: ok".to_string()],
            stats: Some(sample_stats()),
            sim_threads: 1,
            cache: String::new(),
        }
    }

    fn sample_stats() -> SimStats {
        SimStats {
            kernel: "k".into(),
            scheme: "s".into(),
            cycles: 10,
            exec_cycles: 8,
            timed_out: false,
            ops: 4,
            accesses: 4,
            l1_read_hits: 0,
            l1_read_misses: 0,
            l2_read_hits: 0,
            l2_read_misses: 0,
            l2_fills: 0,
            l2_writebacks: 0,
            dram: [1, 0, 0, 0],
            row_hits: 0,
            row_empties: 0,
            row_conflicts: 0,
            refreshes: 0,
            mean_read_latency: 0.0,
            protection: Default::default(),
            latency_hist: None,
            timeline: None,
            faults: None,
        }
    }

    #[test]
    fn record_then_resume_round_trips() {
        let path = tmpdir("roundtrip").join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let mut s = Session::start("exp/small/1", path.clone(), false);
        s.record(ok_record("m0/vecadd/cachecraft")).unwrap();
        s.record(CellRecord {
            key: "m0/spmv/cachecraft".into(),
            status: STATUS_FAILED.into(),
            message: Some("boom".into()),
            attempts: 2,
            history: vec![
                "attempt 1: failed: boom".to_string(),
                "attempt 2: failed: boom".to_string(),
            ],
            stats: None,
            sim_threads: 1,
            cache: String::new(),
        })
        .unwrap();

        let resumed = Session::start("exp/small/1", path.clone(), true);
        assert!(resumed.resumable("m0/vecadd/cachecraft").is_some());
        // Failed cells are not skippable: they re-run.
        assert!(resumed.resumable("m0/spmv/cachecraft").is_none());
        assert_eq!(resumed.cells().len(), 2);
        assert_eq!(resumed.failed_cells(), 1);
        // Attempt history round-trips through the durable store.
        let failed = resumed
            .cells()
            .iter()
            .find(|c| c.key == "m0/spmv/cachecraft")
            .unwrap();
        assert_eq!(failed.history.len(), 2);
        assert!(
            failed.history[0].contains("attempt 1"),
            "{:?}",
            failed.history
        );
        let msgs = resumed.failure_messages();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("boom"), "{msgs:?}");
    }

    #[test]
    fn without_resume_existing_checkpoint_is_ignored() {
        let path = tmpdir("noresume").join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let mut s = Session::start("f", path.clone(), false);
        s.record(ok_record("m0/a/b")).unwrap();
        let fresh = Session::start("f", path, false);
        assert!(fresh.resumable("m0/a/b").is_none());
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = tmpdir("mismatch").join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let mut s = Session::start("exp/small/1", path.clone(), false);
        s.record(ok_record("m0/a/b")).unwrap();
        let other = Session::start("exp/full/2", path, true);
        assert!(other.resumable("m0/a/b").is_none());
        assert!(other.cells().is_empty());
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_not_dropped() {
        let dir = tmpdir("corrupt");
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(dir.join("checkpoint.json.corrupt-0"));
        std::fs::write(&path, "{ not json").unwrap();
        let s = Session::start("f", path.clone(), true);
        assert!(s.cells().is_empty());
        // The original bytes are preserved for post-mortem, and the
        // problem is surfaced for the manifest.
        assert!(!path.exists(), "corrupt checkpoint must be moved aside");
        let q = dir.join("checkpoint.json.corrupt-0");
        assert_eq!(std::fs::read_to_string(&q).unwrap(), "{ not json");
        assert_eq!(s.warnings().len(), 1);
        assert!(s.warnings()[0].contains("corrupt-0"), "{:?}", s.warnings());
        let _ = std::fs::remove_file(q);
    }

    #[test]
    fn checksum_corrupt_checkpoint_is_quarantined() {
        let dir = tmpdir("crccorrupt");
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(dir.join("checkpoint.json.corrupt-0"));
        let mut s = Session::start("f", path.clone(), false);
        s.record(ok_record("m0/a/b")).unwrap();
        drop(s);
        // Flip a payload byte under the checksum footer.
        let mut raw = std::fs::read(&path).unwrap();
        raw[2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let fresh = Session::start("f", path.clone(), true);
        assert!(fresh.cells().is_empty());
        assert!(!path.exists());
        assert!(dir.join("checkpoint.json.corrupt-0").exists());
        assert!(
            fresh.warnings().iter().any(|w| w.contains("verification")),
            "{:?}",
            fresh.warnings()
        );
        let _ = std::fs::remove_file(dir.join("checkpoint.json.corrupt-0"));
    }

    #[test]
    fn legacy_footerless_checkpoint_still_resumes() {
        let dir = tmpdir("legacyresume");
        let path = dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        // Write a valid checkpoint through the store, then strip the
        // footer to simulate a file from before the store existed.
        let mut s = Session::start("f", path.clone(), false);
        s.record(ok_record("m0/a/b")).unwrap();
        drop(s);
        let raw = std::fs::read(&path).unwrap();
        let payload = crate::store::strip_footer(&raw).to_vec();
        std::fs::write(&path, payload).unwrap();
        let resumed = Session::start("f", path, true);
        assert!(resumed.resumable("m0/a/b").is_some());
        assert!(resumed.warnings().is_empty());
    }

    #[test]
    fn records_replace_same_key() {
        let path = tmpdir("replace").join("checkpoint.json");
        let _ = std::fs::remove_file(&path);
        let mut s = Session::start("f", path, false);
        s.record(CellRecord {
            key: "m0/a/b".into(),
            status: STATUS_TIMEOUT.into(),
            message: Some("timed out after 1s".into()),
            attempts: 1,
            history: Vec::new(),
            stats: None,
            sim_threads: 1,
            cache: String::new(),
        })
        .unwrap();
        s.record(ok_record("m0/a/b")).unwrap();
        assert_eq!(s.cells().len(), 1);
        assert!(s.cells()[0].is_ok());
    }

    #[test]
    fn matrix_prefixes_count_up() {
        let path = tmpdir("prefix").join("checkpoint.json");
        let mut s = Session::start("f", path, false);
        assert_eq!(s.next_matrix_prefix(), "m0");
        assert_eq!(s.next_matrix_prefix(), "m1");
    }

    #[test]
    fn global_install_and_clear() {
        let _guard = test_guard();
        let path = tmpdir("global").join("checkpoint.json");
        let handle = install(Session::start("f", path, false));
        let got = current().expect("session installed");
        assert!(Arc::ptr_eq(&handle, &got));
        clear();
        assert!(current().is_none());
    }
}
