//! Prometheus metrics endpoint for the experiment runner.
//!
//! When an experiment binary is started with `--metrics-addr HOST:PORT`,
//! [`crate::runner::run_experiment`] binds a tiny std-only HTTP listener
//! there and installs a process-global [`MetricsRegistry`] that the
//! matrix engine updates as cells execute. `GET /metrics` answers in
//! Prometheus text exposition format (`text/plain; version=0.0.4`) with
//! cells completed / failed / retried, a per-cell wall-time histogram,
//! worker occupancy, elapsed time and an ETA — the first
//! externally-scrapable surface of the harness, and the skeleton a
//! future `ccraft-serve` inherits.
//!
//! The listener is plain `std::net::TcpListener` + a reader thread: the
//! vendored dependency set has no HTTP crates, and the endpoint needs
//! only enough HTTP/1.1 to satisfy `curl` and a Prometheus scraper.
//! Metrics never touch simulated state — this is host-side telemetry
//! about the *runner*, not the simulator (the simulator's own
//! observability is `ccraft-telemetry`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bounds (seconds) of the per-cell wall-time histogram buckets;
/// an implicit `+Inf` bucket completes the series.
pub const CELL_SECONDS_BUCKETS: [f64; 10] =
    [0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0];

/// Relaxed-ordering counters describing one experiment run. All methods
/// take `&self`; the registry is shared across worker threads via `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Matrix cells planned across all matrix calls so far.
    cells_planned: AtomicU64,
    /// Cells finished (any status), including checkpoint-resumed ones.
    cells_completed: AtomicU64,
    /// Cells whose final status was failed or timed out.
    cells_failed: AtomicU64,
    /// Extra attempts consumed by retries (attempts beyond the first).
    cells_retried: AtomicU64,
    /// Cells replayed from a resume checkpoint without executing.
    cells_resumed: AtomicU64,
    /// Cells quarantined after permanent failure (degraded completion).
    cells_quarantined: AtomicU64,
    /// Transient-I/O retries performed by the durable store.
    store_retries: AtomicU64,
    /// Configured worker thread count for the current matrix call.
    workers: AtomicU64,
    /// Workers currently executing a cell.
    workers_active: AtomicU64,
    /// Sum of observed per-cell wall times, in microseconds.
    cell_us_sum: AtomicU64,
    /// Count of observed per-cell wall times.
    cell_count: AtomicU64,
    /// Cumulative bucket counts for [`CELL_SECONDS_BUCKETS`].
    cell_buckets: [AtomicU64; CELL_SECONDS_BUCKETS.len()],
    /// Run start, for elapsed/ETA; `None` until the first `start_run`.
    started: Mutex<Option<Instant>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry and stamps the run start time.
    pub fn new() -> Self {
        MetricsRegistry {
            cells_planned: AtomicU64::new(0),
            cells_completed: AtomicU64::new(0),
            cells_failed: AtomicU64::new(0),
            cells_retried: AtomicU64::new(0),
            cells_resumed: AtomicU64::new(0),
            cells_quarantined: AtomicU64::new(0),
            store_retries: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            workers_active: AtomicU64::new(0),
            cell_us_sum: AtomicU64::new(0),
            cell_count: AtomicU64::new(0),
            cell_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            started: Mutex::new(Some(Instant::now())),
        }
    }

    /// Adds `n` planned cells (one matrix call's worth).
    pub fn add_planned(&self, n: u64) {
        self.cells_planned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` cells replayed from a checkpoint (they also count as
    /// completed, keeping ETA math consistent).
    pub fn add_resumed(&self, n: u64) {
        self.cells_resumed.fetch_add(n, Ordering::Relaxed);
        self.cells_completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one cell quarantined after exhausting its attempts.
    pub fn cell_quarantined(&self) {
        self.cells_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transient-I/O retry inside the durable store.
    pub fn store_retry(&self) {
        self.store_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the configured worker count.
    pub fn set_workers(&self, n: u64) {
        self.workers.store(n, Ordering::Relaxed);
    }

    /// Marks one worker as busy.
    pub fn worker_started(&self) {
        self.workers_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one worker as idle again.
    pub fn worker_finished(&self) {
        // Saturating at 0: a stray call must not wrap the gauge.
        let _ = self
            .workers_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Records one executed cell: wall time, final status, attempts, and
    /// whether the cell was quarantined (permanently failed on a
    /// degraded run). Quarantined cells count as failed + quarantined —
    /// not completed — so the ETA can reach zero on degraded runs.
    pub fn observe_cell(&self, wall_secs: f64, ok: bool, attempts: u32, quarantined: bool) {
        if quarantined {
            self.cells_quarantined.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cells_completed.fetch_add(1, Ordering::Relaxed);
        }
        if !ok {
            self.cells_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.cells_retried
            .fetch_add(u64::from(attempts.saturating_sub(1)), Ordering::Relaxed);
        let us = (wall_secs.max(0.0) * 1e6).round() as u64;
        self.cell_us_sum.fetch_add(us, Ordering::Relaxed);
        self.cell_count.fetch_add(1, Ordering::Relaxed);
        for (i, &bound) in CELL_SECONDS_BUCKETS.iter().enumerate() {
            if wall_secs <= bound {
                self.cell_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Renders the registry in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`). Buckets are cumulative, as the
    /// format requires.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let planned = self.cells_planned.load(Ordering::Relaxed);
        let completed = self.cells_completed.load(Ordering::Relaxed);
        let failed = self.cells_failed.load(Ordering::Relaxed);
        let retried = self.cells_retried.load(Ordering::Relaxed);
        let resumed = self.cells_resumed.load(Ordering::Relaxed);
        let quarantined = self.cells_quarantined.load(Ordering::Relaxed);
        let store_retries = self.store_retries.load(Ordering::Relaxed);
        let workers = self.workers.load(Ordering::Relaxed);
        let active = self.workers_active.load(Ordering::Relaxed);
        let count = self.cell_count.load(Ordering::Relaxed);
        let sum_secs = self.cell_us_sum.load(Ordering::Relaxed) as f64 / 1e6;
        let elapsed = self
            .started
            .lock()
            .ok()
            .and_then(|s| *s)
            .map_or(0.0, |t| t.elapsed().as_secs_f64());
        // ETA from mean throughput so far; 0 when unknown or done.
        // Quarantined cells will never complete, so they are excluded
        // from `remaining` — otherwise a degraded run's ETA stays
        // nonzero forever.
        let remaining = planned
            .saturating_sub(completed)
            .saturating_sub(quarantined);
        let eta = if completed > 0 && remaining > 0 && elapsed > 0.0 {
            elapsed / completed as f64 * remaining as f64
        } else {
            0.0
        };

        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            "ccraft_cells_planned",
            "Matrix cells planned in the current run.",
            planned as f64,
        );
        gauge(
            "ccraft_workers",
            "Configured worker threads.",
            workers as f64,
        );
        gauge(
            "ccraft_workers_active",
            "Workers currently executing a cell.",
            active as f64,
        );
        gauge(
            "ccraft_run_elapsed_seconds",
            "Wall time since the run started.",
            elapsed,
        );
        gauge(
            "ccraft_run_eta_seconds",
            "Estimated seconds until all planned cells complete.",
            eta,
        );
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            "ccraft_cells_completed_total",
            "Matrix cells finished (any status).",
            completed,
        );
        counter(
            "ccraft_cells_failed_total",
            "Matrix cells whose final status was failed or timeout.",
            failed,
        );
        counter(
            "ccraft_cells_retried_total",
            "Extra execution attempts consumed by retries.",
            retried,
        );
        counter(
            "ccraft_cells_resumed_total",
            "Matrix cells replayed from a resume checkpoint.",
            resumed,
        );
        counter(
            "ccraft_cells_quarantined_total",
            "Matrix cells quarantined after permanent failure (degraded run).",
            quarantined,
        );
        counter(
            "ccraft_store_retries_total",
            "Transient I/O retries performed by the durable store.",
            store_retries,
        );
        let _ = writeln!(
            out,
            "# HELP ccraft_cell_seconds Wall time per executed matrix cell."
        );
        let _ = writeln!(out, "# TYPE ccraft_cell_seconds histogram");
        for (i, &bound) in CELL_SECONDS_BUCKETS.iter().enumerate() {
            let n = self.cell_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "ccraft_cell_seconds_bucket{{le=\"{bound}\"}} {n}");
        }
        let _ = writeln!(out, "ccraft_cell_seconds_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "ccraft_cell_seconds_sum {sum_secs}");
        let _ = writeln!(out, "ccraft_cell_seconds_count {count}");
        out
    }
}

// ---------------------------------------------------------------------
// Process-global registry (same idiom as `crate::checkpoint`): installed
// by `run_experiment` when `--metrics-addr` is given, consulted by the
// matrix engine, cleared at the end of the run.

static CURRENT: Mutex<Option<Arc<MetricsRegistry>>> = Mutex::new(None);

fn lock_current() -> std::sync::MutexGuard<'static, Option<Arc<MetricsRegistry>>> {
    CURRENT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `registry` as the process-global metrics registry.
pub fn install(registry: Arc<MetricsRegistry>) {
    *lock_current() = Some(registry);
}

/// Clears the process-global registry.
pub fn clear() {
    *lock_current() = None;
}

/// The installed registry, if any.
pub fn current() -> Option<Arc<MetricsRegistry>> {
    lock_current().clone()
}

// ---------------------------------------------------------------------
// The HTTP listener.

/// A running metrics endpoint; dropping (or [`MetricsServer::shutdown`])
/// stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port)
    /// and serves `registry` until shutdown.
    pub fn bind(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ccraft-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        serve_connection(stream, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

/// Answers one HTTP/1.1 request: `GET /metrics` (or `/`) serves the
/// exposition; anything else gets 404. Malformed input is dropped.
fn serve_connection(mut stream: TcpStream, registry: &MetricsRegistry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    // Read until the end of the request head (or the buffer fills —
    // longer requests than 4 KiB are not worth supporting here).
    loop {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") || used == buf.len() {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        ("200 OK", registry.render())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_and_renders() {
        let reg = MetricsRegistry::new();
        reg.add_planned(10);
        reg.set_workers(4);
        reg.worker_started();
        reg.observe_cell(0.2, true, 1, false);
        reg.observe_cell(2.0, false, 3, true);
        reg.worker_finished();
        reg.add_resumed(2);
        reg.store_retry();
        reg.store_retry();
        let text = reg.render();
        assert!(text.contains("ccraft_cells_planned 10"));
        // 1 executed ok + 2 resumed; the quarantined cell is *not*
        // completed (it counts under quarantined instead).
        assert!(text.contains("ccraft_cells_completed_total 3"));
        assert!(text.contains("ccraft_cells_failed_total 1"));
        assert!(text.contains("ccraft_cells_retried_total 2"));
        assert!(text.contains("ccraft_cells_resumed_total 2"));
        assert!(text.contains("ccraft_cells_quarantined_total 1"));
        assert!(text.contains("ccraft_store_retries_total 2"));
        assert!(text.contains("ccraft_workers 4"));
        assert!(text.contains("ccraft_workers_active 0"));
        assert!(text.contains("ccraft_cell_seconds_count 2"));
        // Cumulative buckets: the 0.25s bucket holds one sample, +Inf both.
        assert!(text.contains("ccraft_cell_seconds_bucket{le=\"0.25\"} 1"));
        assert!(text.contains("ccraft_cell_seconds_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn quarantined_cells_do_not_pin_eta_above_zero() {
        // A degraded run: 2 planned, 1 ok, 1 quarantined. The quarantined
        // cell will never complete, so remaining must be 0 and the ETA
        // must read 0 — not extrapolate forever from the dead cell.
        let reg = MetricsRegistry::new();
        reg.add_planned(2);
        reg.observe_cell(0.5, true, 1, false);
        reg.observe_cell(0.5, false, 3, true);
        let text = reg.render();
        assert!(text.contains("ccraft_cells_completed_total 1"));
        assert!(text.contains("ccraft_cells_quarantined_total 1"));
        assert!(
            text.contains("ccraft_run_eta_seconds 0"),
            "degraded run must report ETA 0, got:\n{text}"
        );
    }

    #[test]
    fn worker_gauge_does_not_underflow() {
        let reg = MetricsRegistry::new();
        reg.worker_finished();
        assert!(reg.render().contains("ccraft_workers_active 0"));
    }

    #[test]
    fn bucket_counts_are_monotone() {
        let reg = MetricsRegistry::new();
        for secs in [0.001, 0.1, 0.3, 2.0, 30.0, 5000.0] {
            reg.observe_cell(secs, true, 1, false);
        }
        let mut prev = 0u64;
        for b in &reg.cell_buckets {
            let v = b.load(Ordering::Relaxed);
            assert!(v >= prev, "cumulative buckets must be monotone");
            prev = v;
        }
        assert!(reg.cell_count.load(Ordering::Relaxed) >= prev);
    }

    #[test]
    fn install_clear_current_round_trip() {
        let _guard = crate::checkpoint::test_guard();
        clear();
        assert!(current().is_none());
        let reg = Arc::new(MetricsRegistry::new());
        install(Arc::clone(&reg));
        let got = current().expect("installed");
        got.add_planned(1);
        assert!(reg.render().contains("ccraft_cells_planned 1"));
        clear();
        assert!(current().is_none());
    }
}
