//! Cross-run performance diffing: the engine behind `ccx perf-diff`.
//!
//! A *run directory* is any results directory with a `manifest.json`
//! (every harness binary writes one); `profile.json` (from
//! `ccx run --profile`) and a `BENCH_*.json` record (from
//! `scripts/bench_smoke`) are joined when present. Two runs are
//! *comparable* when experiment id, size, seed, and feature flags all
//! match — differing toolchains or hosts are reported but allowed, since
//! comparing across machines is often the point. `--force` overrides
//! the comparability check.
//!
//! The diff emits one row per metric with run-A / run-B values and the
//! relative delta, and flags a **regression** when run B is worse than
//! run A beyond the configured threshold. Wall-clock metrics are noisy
//! on tiny runs, so they additionally require an absolute wall-time
//! drift of at least [`DiffOptions::min_wall_delta_secs`] before they
//! can regress; simulator-derived metrics (memo hit rates, channel
//! imbalance) are deterministic for identical configurations and use no
//! floor. Exit-code mapping lives in `ccx`: 0 clean, 1 regression,
//! 2 incomparable / unusable input.

use crate::error::Error;
use ccraft_telemetry::manifest::RunManifest;
use ccraft_telemetry::profiler::ProfileReport;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Default relative threshold (percent) for wall-clock metrics.
pub const DEFAULT_WALL_THRESHOLD_PCT: f64 = 10.0;
/// Default absolute threshold (percentage points) for hit-rate metrics.
pub const DEFAULT_HIT_THRESHOLD_PTS: f64 = 5.0;
/// Default absolute wall-time drift floor (seconds) below which
/// wall-clock metrics never count as regressions.
pub const DEFAULT_MIN_WALL_DELTA_SECS: f64 = 0.1;

/// Thresholds and switches for one diff.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative regression threshold for wall-clock metrics, percent.
    pub wall_threshold_pct: f64,
    /// Absolute regression threshold for hit rates, percentage points.
    pub hit_threshold_pts: f64,
    /// Wall-time drift floor, seconds (noise guard for tiny runs).
    pub min_wall_delta_secs: f64,
    /// Compare even when the runs are incomparable.
    pub force: bool,
    /// Explicit bench record for run A (default: newest `BENCH_*.json`
    /// in the run directory, if any).
    pub bench_a: Option<PathBuf>,
    /// Explicit bench record for run B.
    pub bench_b: Option<PathBuf>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            wall_threshold_pct: DEFAULT_WALL_THRESHOLD_PCT,
            hit_threshold_pts: DEFAULT_HIT_THRESHOLD_PTS,
            min_wall_delta_secs: DEFAULT_MIN_WALL_DELTA_SECS,
            force: false,
            bench_a: None,
            bench_b: None,
        }
    }
}

/// One entry of a `sim_threads` sweep in a schema-2 bench record: the
/// same sweep re-run with the cycle loop sharded across `sim_threads`
/// worker threads.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchThreadEntry {
    /// Shard count the sweep ran with.
    #[serde(default)]
    pub sim_threads: u32,
    /// Wall time of the sweep at this shard count, seconds.
    #[serde(default)]
    pub wall_time_secs: f64,
    /// Throughput at this shard count, cells per second.
    #[serde(default)]
    pub cells_per_sec: f64,
    /// Wall-clock speedup vs the `sim_threads = 1` entry of the same
    /// record (1.0 for the baseline entry itself).
    #[serde(default)]
    pub speedup: f64,
}

/// One `BENCH_*.json` record as written by `scripts/bench_smoke`.
/// Schema documented in DESIGN.md ("Performance observatory").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Format version (2 since the `sim_threads` sweep; 1 before).
    #[serde(default)]
    pub schema: u64,
    /// UTC timestamp of the bench run (RFC 3339).
    #[serde(default)]
    pub date_utc: String,
    /// Host the bench ran on.
    #[serde(default)]
    pub host: String,
    /// `rustc -V` of the toolchain.
    #[serde(default)]
    pub rustc: String,
    /// Size class of the sweep (`tiny` / `small` / `full`).
    #[serde(default)]
    pub size: String,
    /// RNG seed of the sweep.
    #[serde(default)]
    pub seed: u64,
    /// Wall time of the sweep, seconds.
    #[serde(default)]
    pub wall_time_secs: f64,
    /// Matrix cells executed.
    #[serde(default)]
    pub cells: u64,
    /// Throughput, cells per second.
    #[serde(default)]
    pub cells_per_sec: f64,
    /// Shard count of the headline numbers above (1 = the plain loop;
    /// schema-1 records omit it and read back as 1 via the sweep default).
    #[serde(default = "default_bench_sim_threads")]
    pub sim_threads: u32,
    /// Per-`sim_threads` sweep entries (schema 2; empty in older records).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub sweep: Vec<BenchThreadEntry>,
}

/// Serde default: schema-1 bench records predate sharding.
fn default_bench_sim_threads() -> u32 {
    1
}

/// Everything loadable from one run directory.
#[derive(Debug)]
pub struct RunSnapshot {
    /// The run directory.
    pub dir: PathBuf,
    /// Parsed `manifest.json` (required).
    pub manifest: RunManifest,
    /// Parsed `profile.json`, when present.
    pub profile: Option<ProfileReport>,
    /// Parsed bench record, when present.
    pub bench: Option<BenchRecord>,
}

impl RunSnapshot {
    /// Loads a run directory. `manifest.json` is required; profile and
    /// bench records are joined when found (`bench_override` wins over
    /// directory discovery).
    pub fn load(dir: &Path, bench_override: Option<&Path>) -> Result<RunSnapshot, Error> {
        // Store-written artifacts carry a checksum footer; a corrupt
        // manifest or profile is a hard error (quarantined by the read),
        // never a silently-wrong comparison.
        let manifest_path = dir.join("manifest.json");
        let (text, _) = crate::store::read_verified_string(&manifest_path)?;
        let manifest: RunManifest = serde_json::from_str(&text)
            .map_err(|e| Error::config(format!("parse {}: {e}", manifest_path.display())))?;
        let profile_path = dir.join("profile.json");
        let profile =
            if profile_path.is_file() {
                let (text, _) = crate::store::read_verified_string(&profile_path)?;
                Some(serde_json::from_str::<ProfileReport>(&text).map_err(|e| {
                    Error::config(format!("parse {}/profile.json: {e}", dir.display()))
                })?)
            } else {
                None
            };
        let bench_path = match bench_override {
            Some(p) => Some(p.to_path_buf()),
            None => newest_bench_file(dir),
        };
        let bench = match bench_path {
            Some(p) => {
                let (text, _) = crate::store::read_verified_string(&p)?;
                Some(
                    serde_json::from_str::<BenchRecord>(&text)
                        .map_err(|e| Error::config(format!("parse {}: {e}", p.display())))?,
                )
            }
            None => None,
        };
        Ok(RunSnapshot {
            dir: dir.to_path_buf(),
            manifest,
            profile,
            bench,
        })
    }

    /// Matrix cells in the run, from the manifest summary (`cells` or
    /// `checkpoint_cells`, whichever the experiment recorded).
    pub fn cells(&self) -> Option<f64> {
        for key in ["cells", "checkpoint_cells"] {
            if let Some((_, v)) = self.manifest.summary.iter().find(|(k, _)| k == key) {
                return Some(*v);
            }
        }
        None
    }

    /// Run throughput in cells per second, when derivable.
    pub fn cells_per_sec(&self) -> Option<f64> {
        let cells = self.cells()?;
        if self.manifest.wall_time_secs > 0.0 {
            Some(cells / self.manifest.wall_time_secs)
        } else {
            None
        }
    }
}

/// Newest `BENCH_*.json` in `dir` (lexicographic order — the filenames
/// embed a sortable UTC timestamp).
fn newest_bench_file(dir: &Path) -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    candidates.sort();
    candidates.pop()
}

/// Checks that two runs can be meaningfully compared: same experiment,
/// size, seed and feature flags. Returns the reasons they cannot.
pub fn comparability(a: &RunSnapshot, b: &RunSnapshot) -> Vec<String> {
    let mut reasons = Vec::new();
    let ma = &a.manifest;
    let mb = &b.manifest;
    if ma.experiment != mb.experiment {
        reasons.push(format!(
            "experiment differs: {} vs {}",
            ma.experiment, mb.experiment
        ));
    }
    if ma.size != mb.size {
        reasons.push(format!("size differs: {} vs {}", ma.size, mb.size));
    }
    if ma.seed != mb.seed {
        reasons.push(format!("seed differs: {} vs {}", ma.seed, mb.seed));
    }
    if ma.provenance.features != mb.provenance.features {
        reasons.push(format!(
            "feature flags differ: {:?} vs {:?}",
            ma.provenance.features, mb.provenance.features
        ));
    }
    // Stats are bit-identical across sim_threads, but wall-clock is
    // not: a sharded run is expected to be several times faster, so a
    // mixed comparison would mistake the execution strategy for a
    // performance change. The comparison reads the per-cell *effective*
    // values (telemetry/fault-injection cells fall back to 1 no matter
    // what was requested) — two runs that both fell back are comparable
    // even when their requested counts differ.
    let ta = ma.effective_sim_threads();
    let tb = mb.effective_sim_threads();
    if ta != tb {
        reasons.push(format!(
            "effective sim_threads differs: {ta:?} vs {tb:?} (wall-clock not comparable)"
        ));
    }
    reasons
}

/// One metric row in the diff table.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name.
    pub metric: String,
    /// Run-A value.
    pub a: f64,
    /// Run-B value.
    pub b: f64,
    /// Relative delta in percent (B vs A), or absolute delta in
    /// percentage points for rate metrics.
    pub delta: f64,
    /// Unit of `delta` (`"%"` or `"pts"`).
    pub delta_unit: &'static str,
    /// True when B is worse than A beyond the threshold.
    pub regressed: bool,
}

/// A completed diff.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Metric rows, in emission order.
    pub rows: Vec<DiffRow>,
    /// Context lines (provenance drift, missing inputs, force notes).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Number of regressed rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Renders the report as a markdown table plus notes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let _ = writeln!(out, "| metric | run A | run B | delta | status |");
        let _ = writeln!(out, "|---|---:|---:|---:|---|");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {:.4} | {:.4} | {:+.2}{} | {} |",
                r.metric,
                r.a,
                r.b,
                r.delta,
                r.delta_unit,
                if r.regressed { "REGRESSED" } else { "ok" }
            );
        }
        let n = self.regressions();
        let _ = writeln!(
            out,
            "{}",
            if n == 0 {
                "perf-diff: no regressions".to_string()
            } else {
                format!("perf-diff: {n} regression(s)")
            }
        );
        out
    }
}

/// Relative delta of `b` vs `a`, in percent (0 when `a` is 0).
fn pct_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        0.0
    } else {
        (b - a) / a * 100.0
    }
}

/// Diffs two loaded runs. Pure: no I/O, fully deterministic, so the
/// regression logic is unit-testable with fixture snapshots.
pub fn diff(a: &RunSnapshot, b: &RunSnapshot, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let pa = &a.manifest.provenance;
    let pb = &b.manifest.provenance;
    if pa.rustc != pb.rustc && !(pa.rustc.is_empty() && pb.rustc.is_empty()) {
        report
            .notes
            .push(format!("toolchain differs: {} vs {}", pa.rustc, pb.rustc));
    }
    if pa.hostname != pb.hostname && !(pa.hostname.is_empty() && pb.hostname.is_empty()) {
        report
            .notes
            .push(format!("host differs: {} vs {}", pa.hostname, pb.hostname));
    }
    if pa.git_commit != pb.git_commit && !(pa.git_commit.is_empty() && pb.git_commit.is_empty()) {
        report.notes.push(format!(
            "commit differs: {} vs {}",
            pa.git_commit, pb.git_commit
        ));
    }

    // Wall-clock metrics: noisy, so they need both the relative
    // threshold and the absolute drift floor.
    let wall_a = a.manifest.wall_time_secs;
    let wall_b = b.manifest.wall_time_secs;
    let wall_drifted = (wall_b - wall_a).abs() >= opts.min_wall_delta_secs;
    report.rows.push(DiffRow {
        metric: "wall_time_secs".to_string(),
        a: wall_a,
        b: wall_b,
        delta: pct_delta(wall_a, wall_b),
        delta_unit: "%",
        regressed: wall_drifted
            && wall_a > 0.0
            && pct_delta(wall_a, wall_b) > opts.wall_threshold_pct,
    });
    if let (Some(ca), Some(cb)) = (a.cells_per_sec(), b.cells_per_sec()) {
        report.rows.push(DiffRow {
            metric: "cells_per_sec".to_string(),
            a: ca,
            b: cb,
            delta: pct_delta(ca, cb),
            delta_unit: "%",
            regressed: wall_drifted && pct_delta(ca, cb) < -opts.wall_threshold_pct,
        });
    }

    // Profile metrics: deterministic for comparable runs, no floor.
    match (&a.profile, &b.profile) {
        (Some(prof_a), Some(prof_b)) => {
            let rate_row = |metric: &str, ra: f64, rb: f64| DiffRow {
                metric: metric.to_string(),
                a: ra,
                b: rb,
                delta: (rb - ra) * 100.0,
                delta_unit: "pts",
                // Lower hit rate = more work per cycle = regression.
                regressed: (ra - rb) * 100.0 > opts.hit_threshold_pts,
            };
            report.rows.push(rate_row(
                "sm_sleep_hit_rate",
                prof_a.mean_sm_sleep_hit_rate(),
                prof_b.mean_sm_sleep_hit_rate(),
            ));
            report.rows.push(rate_row(
                "scan_memo_hit_rate",
                prof_a.mean_scan_memo_hit_rate(),
                prof_b.mean_scan_memo_hit_rate(),
            ));
            let ia = prof_a.mean_busy_imbalance();
            let ib = prof_b.mean_busy_imbalance();
            report.rows.push(DiffRow {
                metric: "channel_busy_imbalance".to_string(),
                a: ia,
                b: ib,
                delta: pct_delta(ia, ib),
                delta_unit: "%",
                // A more skewed channel distribution is a regression for
                // the sharding plan.
                regressed: pct_delta(ia, ib) > opts.wall_threshold_pct,
            });
        }
        (None, None) => report.notes.push("no profiles to compare".to_string()),
        _ => report
            .notes
            .push("profile present in only one run; profile metrics skipped".to_string()),
    }

    // Bench records, when both runs have one.
    match (&a.bench, &b.bench) {
        (Some(ba), Some(bb)) if ba.sim_threads != bb.sim_threads && !opts.force => {
            report.notes.push(format!(
                "bench records ran at different sim_threads ({} vs {}); \
                 wall metrics skipped (--force to compare anyway)",
                ba.sim_threads, bb.sim_threads
            ));
        }
        (Some(ba), Some(bb)) => {
            let drifted = (bb.wall_time_secs - ba.wall_time_secs).abs() >= opts.min_wall_delta_secs;
            report.rows.push(DiffRow {
                metric: "bench_wall_time_secs".to_string(),
                a: ba.wall_time_secs,
                b: bb.wall_time_secs,
                delta: pct_delta(ba.wall_time_secs, bb.wall_time_secs),
                delta_unit: "%",
                regressed: drifted
                    && ba.wall_time_secs > 0.0
                    && pct_delta(ba.wall_time_secs, bb.wall_time_secs) > opts.wall_threshold_pct,
            });
            report.rows.push(DiffRow {
                metric: "bench_cells_per_sec".to_string(),
                a: ba.cells_per_sec,
                b: bb.cells_per_sec,
                delta: pct_delta(ba.cells_per_sec, bb.cells_per_sec),
                delta_unit: "%",
                regressed: drifted
                    && pct_delta(ba.cells_per_sec, bb.cells_per_sec) < -opts.wall_threshold_pct,
            });
        }
        (None, None) => {}
        _ => report
            .notes
            .push("bench record present in only one run; bench metrics skipped".to_string()),
    }
    report
}

/// Loads and diffs two run directories. Errors (unreadable inputs,
/// incomparable runs without `--force`) map to exit 2 in `ccx`.
pub fn perf_diff(dir_a: &Path, dir_b: &Path, opts: &DiffOptions) -> Result<DiffReport, Error> {
    let a = RunSnapshot::load(dir_a, opts.bench_a.as_deref())?;
    let b = RunSnapshot::load(dir_b, opts.bench_b.as_deref())?;
    let reasons = comparability(&a, &b);
    if !reasons.is_empty() && !opts.force {
        return Err(Error::config(format!(
            "runs are not comparable ({}); pass --force to diff anyway",
            reasons.join("; ")
        )));
    }
    let mut report = diff(&a, &b, opts);
    if !reasons.is_empty() {
        report
            .notes
            .insert(0, format!("forced diff: {}", reasons.join("; ")));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccraft_telemetry::profiler::{CellProfile, ChannelLoad, SimProfile};
    use ccraft_telemetry::Counter;

    fn snapshot(wall: f64, sleep_hits: u64, sleep_misses: u64, busy: [u64; 2]) -> RunSnapshot {
        let mut manifest = RunManifest::new("test-exp");
        manifest.experiment = "test-exp".to_string();
        manifest.size = "tiny".to_string();
        manifest.seed = 1;
        manifest.wall_time_secs = wall;
        manifest.note("cells", 8.0);
        let mut profile = SimProfile {
            cycles: 1000,
            host_ns_total: (wall * 1e9) as u64,
            ..SimProfile::default()
        };
        profile.sm_sleep.hits = Counter(sleep_hits);
        profile.sm_sleep.misses = Counter(sleep_misses);
        profile.scan_memo.hits = Counter(90);
        profile.scan_memo.misses = Counter(10);
        for (ch, &b) in busy.iter().enumerate() {
            profile.channels.push(ChannelLoad {
                channel: ch as u32,
                busy_cycles: b,
                ..ChannelLoad::default()
            });
        }
        let mut report = ProfileReport::new();
        report.cells.push(CellProfile {
            workload: "w".to_string(),
            scheme: "s".to_string(),
            profile,
        });
        RunSnapshot {
            dir: PathBuf::from("fixture"),
            manifest,
            profile: Some(report),
            bench: None,
        }
    }

    #[test]
    fn identical_runs_have_no_regressions() {
        let a = snapshot(10.0, 90, 10, [500, 500]);
        let b = snapshot(10.0, 90, 10, [500, 500]);
        let report = diff(&a, &b, &DiffOptions::default());
        assert_eq!(report.regressions(), 0, "{}", report.render());
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn wall_time_regression_is_flagged_and_improvement_is_not() {
        let a = snapshot(10.0, 90, 10, [500, 500]);
        let slower = snapshot(15.0, 90, 10, [500, 500]);
        let report = diff(&a, &slower, &DiffOptions::default());
        assert!(report.regressions() >= 1, "{}", report.render());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "wall_time_secs" && r.regressed));
        // The reverse direction is an improvement, not a regression.
        let report = diff(&slower, &a, &DiffOptions::default());
        assert!(!report
            .rows
            .iter()
            .any(|r| r.metric == "wall_time_secs" && r.regressed));
    }

    #[test]
    fn small_absolute_wall_drift_is_noise_not_regression() {
        // 3ms -> 9ms is +200% but far below the 0.1s floor.
        let a = snapshot(0.003, 90, 10, [500, 500]);
        let b = snapshot(0.009, 90, 10, [500, 500]);
        let report = diff(&a, &b, &DiffOptions::default());
        assert_eq!(report.regressions(), 0, "{}", report.render());
    }

    #[test]
    fn memo_hit_rate_drop_is_flagged() {
        let a = snapshot(10.0, 90, 10, [500, 500]); // 90% sleep hit rate
        let b = snapshot(10.0, 50, 50, [500, 500]); // 50%
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "sm_sleep_hit_rate" && r.regressed));
        // Rising hit rate is fine.
        let report = diff(&b, &a, &DiffOptions::default());
        assert!(!report
            .rows
            .iter()
            .any(|r| r.metric == "sm_sleep_hit_rate" && r.regressed));
    }

    #[test]
    fn imbalance_drift_is_flagged() {
        let a = snapshot(10.0, 90, 10, [500, 500]); // imbalance 1.0
        let b = snapshot(10.0, 90, 10, [900, 100]); // imbalance 1.8
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "channel_busy_imbalance" && r.regressed));
    }

    #[test]
    fn incomparable_runs_are_detected() {
        let a = snapshot(10.0, 90, 10, [500, 500]);
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        b.manifest.seed = 2;
        b.manifest.provenance.features = vec!["check-invariants".to_string()];
        let reasons = comparability(&a, &b);
        assert_eq!(reasons.len(), 2, "{reasons:?}");
        assert!(reasons.iter().any(|r| r.contains("seed")));
        assert!(reasons.iter().any(|r| r.contains("feature")));
        assert!(comparability(&a, &a).is_empty());
    }

    #[test]
    fn bench_records_join_the_diff() {
        let mut a = snapshot(10.0, 90, 10, [500, 500]);
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        a.bench = Some(BenchRecord {
            schema: 1,
            wall_time_secs: 20.0,
            cells: 22,
            cells_per_sec: 1.1,
            ..BenchRecord::default()
        });
        b.bench = Some(BenchRecord {
            schema: 1,
            wall_time_secs: 30.0,
            cells: 22,
            cells_per_sec: 0.73,
            ..BenchRecord::default()
        });
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "bench_wall_time_secs" && r.regressed));
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "bench_cells_per_sec" && r.regressed));
    }

    #[test]
    fn sim_threads_mismatch_makes_runs_incomparable() {
        let a = snapshot(10.0, 90, 10, [500, 500]);
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        b.manifest.sim_threads = 4;
        let reasons = comparability(&a, &b);
        assert_eq!(reasons.len(), 1, "{reasons:?}");
        assert!(reasons[0].contains("sim_threads"), "{reasons:?}");
    }

    #[test]
    fn fallback_cells_make_requested_sim_threads_comparable() {
        use ccraft_telemetry::manifest::CellManifest;
        let cell = |threads| CellManifest {
            cell: "vecadd/no-protection".to_string(),
            sim_threads: threads,
            cache: "uncached".to_string(),
            status: "ok".to_string(),
        };
        // Run B *requested* 4 shards but every cell fell back to 1
        // (e.g. fault injection): the effective values agree with the
        // plain run, so the guard must NOT refuse the comparison.
        let mut a = snapshot(10.0, 90, 10, [500, 500]);
        a.manifest.sim_threads = 1;
        a.manifest.cells = vec![cell(1)];
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        b.manifest.sim_threads = 4; // the former lie
        b.manifest.cells = vec![cell(1)];
        assert!(
            comparability(&a, &b).is_empty(),
            "both runs effectively ran single-threaded"
        );
    }

    #[test]
    fn genuinely_sharded_cells_refuse_comparison() {
        use ccraft_telemetry::manifest::CellManifest;
        let cell = |threads| CellManifest {
            cell: "vecadd/no-protection".to_string(),
            sim_threads: threads,
            cache: "uncached".to_string(),
            status: "ok".to_string(),
        };
        let mut a = snapshot(10.0, 90, 10, [500, 500]);
        a.manifest.sim_threads = 1;
        a.manifest.cells = vec![cell(1)];
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        b.manifest.sim_threads = 4;
        b.manifest.cells = vec![cell(4)]; // genuinely sharded
        let reasons = comparability(&a, &b);
        assert_eq!(reasons.len(), 1, "{reasons:?}");
        assert!(reasons[0].contains("effective sim_threads"), "{reasons:?}");
    }

    #[test]
    fn mixed_sim_threads_bench_walls_skipped_unless_forced() {
        let mk = |sim_threads, wall| BenchRecord {
            schema: 2,
            wall_time_secs: wall,
            cells: 22,
            cells_per_sec: 22.0 / wall,
            sim_threads,
            ..BenchRecord::default()
        };
        let mut a = snapshot(10.0, 90, 10, [500, 500]);
        let mut b = snapshot(10.0, 90, 10, [500, 500]);
        a.bench = Some(mk(1, 40.0));
        b.bench = Some(mk(4, 12.0)); // faster only because it is sharded
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(!report.rows.iter().any(|r| r.metric.starts_with("bench_")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("different sim_threads")));
        // --force compares anyway.
        let forced = diff(
            &a,
            &b,
            &DiffOptions {
                force: true,
                ..DiffOptions::default()
            },
        );
        assert!(forced
            .rows
            .iter()
            .any(|r| r.metric == "bench_wall_time_secs"));
    }

    #[test]
    fn end_to_end_perf_diff_on_written_directories() {
        let base = std::env::temp_dir().join(format!("ccraft-perfdiff-{}", std::process::id()));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        let a = snapshot(10.0, 90, 10, [500, 500]);
        let mut b = snapshot(30.0, 90, 10, [500, 500]);
        std::fs::write(dir_a.join("manifest.json"), a.manifest.to_json()).unwrap();
        std::fs::write(
            dir_a.join("profile.json"),
            serde_json::to_string_pretty(a.profile.as_ref().unwrap()).unwrap(),
        )
        .unwrap();
        std::fs::write(dir_b.join("manifest.json"), b.manifest.to_json()).unwrap();
        std::fs::write(
            dir_b.join("profile.json"),
            serde_json::to_string_pretty(b.profile.as_ref().unwrap()).unwrap(),
        )
        .unwrap();
        let report = perf_diff(&dir_a, &dir_b, &DiffOptions::default()).unwrap();
        assert!(report.regressions() >= 1);

        // Incomparable without --force; diffable with it.
        b.manifest.seed = 99;
        std::fs::write(dir_b.join("manifest.json"), b.manifest.to_json()).unwrap();
        assert!(perf_diff(&dir_a, &dir_b, &DiffOptions::default()).is_err());
        let forced = perf_diff(
            &dir_a,
            &dir_b,
            &DiffOptions {
                force: true,
                ..DiffOptions::default()
            },
        )
        .unwrap();
        assert!(forced.notes.iter().any(|n| n.contains("forced diff")));
        std::fs::remove_dir_all(&base).ok();
    }
}
