//! Typed errors for the experiment harness.
//!
//! The harness distinguishes four failure classes: bad user input
//! ([`Error::Config`]), filesystem trouble ([`Error::Io`]), a simulation
//! cell that panicked ([`Error::WorkerPanic`]), and a cell that exceeded
//! its watchdog ([`Error::Timeout`]). Binaries convert these to exit
//! status + stderr; the runner converts the last two into per-cell
//! outcomes instead of aborting the whole matrix.

use std::fmt;

/// A harness-level failure.
#[derive(Debug)]
pub enum Error {
    /// Malformed or contradictory user-supplied configuration (CLI flags,
    /// environment, spec strings).
    Config(String),
    /// An I/O operation failed; `context` names what was being done.
    Io {
        /// Human-readable description of the operation.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A simulation cell panicked.
    WorkerPanic {
        /// `workload/scheme` identifier of the cell.
        cell: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A simulation cell exceeded its per-cell watchdog.
    Timeout {
        /// `workload/scheme` identifier of the cell.
        cell: String,
        /// The configured timeout.
        secs: u64,
    },
    /// An experiment's report needed a matrix cell that is absent from
    /// the results (its simulation failed, timed out, or was never
    /// scheduled).
    MissingCell {
        /// `workload/scheme` identifier of the missing cell.
        cell: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "{msg}"),
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::WorkerPanic { cell, message } => {
                write!(f, "cell {cell} panicked: {message}")
            }
            Error::Timeout { cell, secs } => {
                write!(f, "cell {cell} timed out after {secs}s")
            }
            Error::MissingCell { cell } => {
                write!(f, "cell {cell} missing from matrix results")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_salient_fields() {
        let e = Error::config("--seed expects an integer");
        assert!(e.to_string().contains("--seed"));
        let e = Error::io(
            "writing results/x.csv",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        let s = e.to_string();
        assert!(s.contains("results/x.csv") && s.contains("denied"), "{s}");
        let e = Error::WorkerPanic {
            cell: "spmv/cachecraft".into(),
            message: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("spmv/cachecraft") && s.contains("index out of bounds"));
        let e = Error::Timeout {
            cell: "spmv/cachecraft".into(),
            secs: 30,
        };
        assert!(e.to_string().contains("30s"));
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error as _;
        let e = Error::io(
            "open",
            std::io::Error::new(std::io::ErrorKind::NotFound, "x"),
        );
        assert!(e.source().is_some());
        assert!(Error::config("bad").source().is_none());
    }
}
