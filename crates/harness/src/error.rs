//! Typed errors for the experiment harness.
//!
//! The harness distinguishes several failure classes: bad user input
//! ([`Error::Config`]), filesystem trouble ([`Error::Io`]), a persisted
//! artifact whose checksum no longer matches ([`Error::Corrupt`]), a
//! simulation cell that panicked ([`Error::WorkerPanic`]), and a cell
//! that exceeded its watchdog ([`Error::Timeout`]). Binaries convert
//! these to exit status + stderr; the runner converts the worker-side
//! pair into per-cell outcomes instead of aborting the whole matrix.
//!
//! I/O errors additionally classify as *transient* (worth a bounded,
//! deterministic retry — see [`crate::store`]) or *permanent* (retrying
//! cannot help: the disk is full, the path is gone, permissions are
//! wrong). The store consults [`io_error_is_transient`] before sleeping.

use std::fmt;

/// Whether an [`std::io::Error`] is worth retrying.
///
/// Transient kinds are interruptions the next attempt can reasonably
/// survive: `Interrupted` (EINTR / injected transient EIO), `WouldBlock`,
/// and `TimedOut`. Everything else — `NotFound`, `PermissionDenied`,
/// out-of-space conditions — is permanent and fails immediately.
pub fn io_error_is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// A harness-level failure.
#[derive(Debug)]
pub enum Error {
    /// Malformed or contradictory user-supplied configuration (CLI flags,
    /// environment, spec strings).
    Config(String),
    /// An I/O operation failed; `context` names what was being done.
    Io {
        /// Human-readable description of the operation.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A simulation cell panicked.
    WorkerPanic {
        /// `workload/scheme` identifier of the cell.
        cell: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A simulation cell exceeded its per-cell watchdog.
    Timeout {
        /// `workload/scheme` identifier of the cell.
        cell: String,
        /// The configured timeout.
        secs: u64,
    },
    /// An experiment's report needed a matrix cell that is absent from
    /// the results (its simulation failed, timed out, or was never
    /// scheduled).
    MissingCell {
        /// `workload/scheme` identifier of the missing cell.
        cell: String,
    },
    /// A persisted artifact failed checksum verification and was moved
    /// aside (quarantined) rather than silently discarded.
    Corrupt {
        /// The artifact that failed verification.
        path: String,
        /// What exactly did not check out, and where the original was
        /// preserved.
        detail: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Convenience constructor for [`Error::Corrupt`].
    pub fn corrupt(path: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Only [`Error::Io`] with a transient kind qualifies (see
    /// [`io_error_is_transient`]); corruption, configuration mistakes,
    /// and worker failures never do.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Io { source, .. } => io_error_is_transient(source),
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "{msg}"),
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::WorkerPanic { cell, message } => {
                write!(f, "cell {cell} panicked: {message}")
            }
            Error::Timeout { cell, secs } => {
                write!(f, "cell {cell} timed out after {secs}s")
            }
            Error::MissingCell { cell } => {
                write!(f, "cell {cell} missing from matrix results")
            }
            Error::Corrupt { path, detail } => {
                write!(f, "{path} failed verification: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_salient_fields() {
        let e = Error::config("--seed expects an integer");
        assert!(e.to_string().contains("--seed"));
        let e = Error::io(
            "writing results/x.csv",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        let s = e.to_string();
        assert!(s.contains("results/x.csv") && s.contains("denied"), "{s}");
        let e = Error::WorkerPanic {
            cell: "spmv/cachecraft".into(),
            message: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("spmv/cachecraft") && s.contains("index out of bounds"));
        let e = Error::Timeout {
            cell: "spmv/cachecraft".into(),
            secs: 30,
        };
        assert!(e.to_string().contains("30s"));
    }

    #[test]
    fn transient_classification() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            let e = std::io::Error::new(kind, "x");
            assert!(io_error_is_transient(&e), "{kind:?} must be transient");
            assert!(Error::io("op", e).is_transient());
        }
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::Other,
        ] {
            let e = std::io::Error::new(kind, "x");
            assert!(!io_error_is_transient(&e), "{kind:?} must be permanent");
        }
        assert!(!Error::config("bad").is_transient());
        assert!(!Error::corrupt("a.csv", "crc mismatch").is_transient());
    }

    #[test]
    fn corrupt_display_names_path_and_detail() {
        let e = Error::corrupt("results/checkpoint.json", "crc 1 != 2");
        let s = e.to_string();
        assert!(
            s.contains("checkpoint.json") && s.contains("crc 1 != 2"),
            "{s}"
        );
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error as _;
        let e = Error::io(
            "open",
            std::io::Error::new(std::io::ErrorKind::NotFound, "x"),
        );
        assert!(e.source().is_some());
        assert!(Error::config("bad").source().is_none());
    }
}
