//! Content-addressed cell result cache.
//!
//! Every matrix cell's result is keyed by a canonical digest of
//! everything that determines it: scheme (including its full config),
//! workload, machine config, size class, seed, fault-injection spec,
//! cargo feature flags, and the code version captured by
//! [`ccraft_telemetry::manifest::Provenance`]. Two processes that agree
//! on those inputs agree on the digest, so a warm `ccraft-serve` daemon
//! can answer a repeated sweep without simulating anything.
//!
//! Entries are stored durably through [`crate::store`]
//! (`write_durable`/`read_verified`), so the chaos-soak guarantees
//! extend to the cache: a corrupted entry is quarantined to
//! `<digest>.json.corrupt-<n>` on read and reported as a miss — the cell
//! is recomputed, never served from damaged bytes. In front of the disk
//! sit an in-memory index of known digests and a bloom-style negative
//! filter, so the common cold-miss path costs two hash probes, not a
//! filesystem round trip.
//!
//! `sim_threads` is deliberately NOT part of the key: sharded execution
//! is bit-identical to sequential execution at every setting (pinned by
//! `thread_count_does_not_change_stats`), so a result computed at
//! `--sim-threads 4` is valid for a request at 1. The entry records the
//! producer's value for provenance only.

use crate::error::Error;
use crate::store;
use ccraft_sim::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit offset basis (first digest half).
const FNV_BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent basis (the first basis XOR a large odd
/// constant) so the two halves of the digest are decorrelated.
const FNV_BASIS_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bloom filter size in 64-bit words (2^13 words = 512 Kibit). At the
/// few-thousand-entry scale of a sweep cache the false-positive rate is
/// negligible, and a false positive only costs one disk probe.
const BLOOM_WORDS: usize = 1 << 13;
/// Probes per digest (Kirsch–Mitzenmacher double hashing).
const BLOOM_PROBES: u64 = 4;

/// FNV-1a over `bytes` from an explicit basis. Pure arithmetic — no
/// `DefaultHasher`, whose output is allowed to vary across processes and
/// releases, which would break the cross-process digest guarantee.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Everything that determines one cell's result. All fields are part of
/// the digest; changing any single one changes the key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellKey {
    /// Scheme identity *with its configuration* — the `Debug` rendering
    /// of `SchemeKind`, which includes e.g. CacheCraft's geometry, so two
    /// schemes sharing a short name but differing in config never alias.
    pub scheme: String,
    /// Workload short name.
    pub workload: String,
    /// Machine (GPU config) description.
    pub machine: String,
    /// Size class name.
    pub size: String,
    /// Base RNG seed for the cell.
    pub seed: u64,
    /// Canonical fault-injection spec, or `"none"`.
    pub inject: String,
    /// Cargo feature flags that alter runtime behavior, sorted.
    pub features: Vec<String>,
    /// Code version (git commit + toolchain from `Provenance`).
    pub code_version: String,
}

impl CellKey {
    /// The canonical byte string the digest is computed over: one
    /// `field=value` line per field, in fixed order. Newlines inside
    /// values are escaped so no two distinct keys share a canonical form.
    pub fn canonical(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
        let mut features = self.features.clone();
        features.sort_unstable();
        format!(
            "ccraft-cellkey:v1\nscheme={}\nworkload={}\nmachine={}\nsize={}\nseed={}\ninject={}\nfeatures={}\ncode_version={}\n",
            esc(&self.scheme),
            esc(&self.workload),
            esc(&self.machine),
            esc(&self.size),
            self.seed,
            esc(&self.inject),
            esc(&features.join(",")),
            esc(&self.code_version),
        )
    }

    /// 128-bit content digest as 32 lowercase hex characters: two
    /// independent FNV-1a-64 passes over [`CellKey::canonical`].
    /// Deterministic across processes, platforms, and releases.
    pub fn digest(&self) -> String {
        let canon = self.canonical();
        let a = fnv1a64(canon.as_bytes(), FNV_BASIS_A);
        let b = fnv1a64(canon.as_bytes(), FNV_BASIS_B);
        format!("{a:016x}{b:016x}")
    }
}

/// One durable cache entry: the full key (for post-mortem and collision
/// rejection), the result, and producer provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Digest the entry was stored under.
    pub digest: String,
    /// The key that produced it, verbatim.
    pub key: CellKey,
    /// The simulated result.
    pub stats: SimStats,
    /// `sim_threads` the producer ran with (provenance only — results
    /// are bit-identical across settings, so this is not part of the key).
    pub sim_threads: u32,
}

/// Counters describing cache behavior, snapshot via
/// [`ResultCache::counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups served from a durable entry.
    pub hits: u64,
    /// Lookups that found no entry (including bloom negatives).
    pub misses: u64,
    /// Misses answered by the bloom filter without touching disk.
    pub negative_hits: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries quarantined after failing checksum or schema verification.
    pub corrupt: u64,
}

/// A directory of content-addressed cell results with an in-memory
/// digest index and a bloom-style negative filter. All methods take
/// `&self`; the cache is shared across executor threads via `Arc`.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Digests known to exist on disk.
    index: Mutex<BTreeSet<String>>,
    /// Negative filter: a digest whose probes are not all set is
    /// definitely absent.
    bloom: Box<[AtomicU64]>,
    hits: AtomicU64,
    misses: AtomicU64,
    negative_hits: AtomicU64,
    inserts: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory and indexes any
    /// existing entries. Quarantine leftovers (`*.corrupt-*`) are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory cannot be created or
    /// listed.
    pub fn open(dir: &Path) -> Result<ResultCache, Error> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating cache dir {}", dir.display()), e))?;
        let cache = ResultCache {
            dir: dir.to_path_buf(),
            index: Mutex::new(BTreeSet::new()),
            bloom: (0..BLOOM_WORDS).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        };
        let entries = std::fs::read_dir(dir)
            .map_err(|e| Error::io(format!("listing cache dir {}", dir.display()), e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(digest) = name.strip_suffix(".json") {
                if digest.len() == 32 && digest.bytes().all(|b| b.is_ascii_hexdigit()) {
                    cache.remember(digest);
                }
            }
        }
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        lock_clean(&self.index).len()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the behavior counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Marks `digest` present in the index and bloom filter.
    fn remember(&self, digest: &str) {
        lock_clean(&self.index).insert(digest.to_string());
        for bit in bloom_bits(digest) {
            self.bloom[(bit / 64) as usize % BLOOM_WORDS]
                .fetch_or(1 << (bit % 64), Ordering::Relaxed);
        }
    }

    /// True when the bloom filter cannot rule the digest out.
    fn bloom_maybe(&self, digest: &str) -> bool {
        bloom_bits(digest).into_iter().all(|bit| {
            self.bloom[(bit / 64) as usize % BLOOM_WORDS].load(Ordering::Relaxed)
                & (1 << (bit % 64))
                != 0
        })
    }

    /// Looks `key` up. Returns the verified entry on a hit; `None` on a
    /// miss — including when the durable entry exists but fails checksum
    /// or schema verification (the damaged file is quarantined by
    /// [`store::read_verified`] / moved aside here, so the caller
    /// recomputes instead of consuming corruption).
    pub fn lookup(&self, key: &CellKey) -> Option<CacheEntry> {
        let digest = key.digest();
        if !self.bloom_maybe(&digest) {
            self.negative_hits.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(&digest);
        let text = match store::read_verified_string(&path) {
            Ok((text, _verified)) => text,
            Err(Error::Corrupt { .. }) => {
                // read_verified already moved the file aside.
                self.forget(&digest);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Not on disk (bloom false positive or a racing delete).
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match serde_json::from_str::<CacheEntry>(&text) {
            // Digest collisions are astronomically unlikely but cheap to
            // reject: the stored key must match the requested one.
            Ok(entry) if entry.key == *key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            _ => {
                // Unparseable or aliased entry: quarantine and recompute.
                // A failed rename is not fatal — the entry is forgotten
                // and counted corrupt either way, and the next read will
                // retry — but it must not be silent: the cache directory
                // needs operator attention.
                if let Err(e) = store::quarantine(&path) {
                    eprintln!("cellcache: quarantine of {} failed: {e}", path.display());
                }
                self.forget(&digest);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed result under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the durable write fails; the index is
    /// only updated on success.
    pub fn insert(&self, key: &CellKey, stats: &SimStats, sim_threads: u32) -> Result<(), Error> {
        let digest = key.digest();
        let entry = CacheEntry {
            digest: digest.clone(),
            key: key.clone(),
            stats: stats.clone(),
            sim_threads,
        };
        let text = serde_json::to_string_pretty(&entry)
            .map_err(|e| Error::Config(format!("serializing cache entry {digest}: {e}")))?;
        store::write_durable(&self.entry_path(&digest), text.as_bytes())?;
        self.remember(&digest);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drops `digest` from the in-memory index (bloom bits stay set —
    /// the filter is one-sided, so a stale positive only costs a probe).
    fn forget(&self, digest: &str) {
        lock_clean(&self.index).remove(digest);
    }
}

/// The `BLOOM_PROBES` bit positions for a digest, derived from its two
/// 64-bit hex halves via double hashing. Falls back to re-hashing the
/// digest text if it is not 32 hex chars (never the case for
/// [`CellKey::digest`] output, but `open` indexes foreign files too).
fn bloom_bits(digest: &str) -> [u64; BLOOM_PROBES as usize] {
    let (h1, h2) = match (
        u64::from_str_radix(digest.get(..16).unwrap_or(""), 16),
        u64::from_str_radix(digest.get(16..32).unwrap_or(""), 16),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        _ => (
            fnv1a64(digest.as_bytes(), FNV_BASIS_A),
            fnv1a64(digest.as_bytes(), FNV_BASIS_B),
        ),
    };
    let mut bits = [0u64; BLOOM_PROBES as usize];
    for (i, bit) in bits.iter_mut().enumerate() {
        // Ensure the stride is odd so probes never collapse onto one bit.
        *bit = h1.wrapping_add((i as u64).wrapping_mul(h2 | 1)) % (BLOOM_WORDS as u64 * 64);
    }
    bits
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccraft_core::factory::{run_scheme, SchemeKind};
    use ccraft_sim::config::GpuConfig;
    use ccraft_workloads::{SizeClass, Workload};

    fn sample_key() -> CellKey {
        CellKey {
            scheme: format!("{:?}", SchemeKind::NoProtection),
            workload: "vecadd".to_string(),
            machine: "tiny".to_string(),
            size: "tiny".to_string(),
            seed: 1,
            inject: "none".to_string(),
            features: vec!["check-invariants".to_string()],
            code_version: "rustc 1.80 @ abc123".to_string(),
        }
    }

    fn sample_stats() -> SimStats {
        run_scheme(
            &GpuConfig::tiny(),
            SchemeKind::NoProtection,
            &Workload::VecAdd.generate(SizeClass::Tiny, 1),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccraft-cellcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_is_stable_and_process_independent() {
        let key = sample_key();
        // Two independent computations agree (no per-process salt) and
        // the exact value is pinned: any accidental change to the
        // canonical form or hash constants breaks cross-process and
        // cross-release cache reuse, which this test makes loud.
        assert_eq!(key.digest(), sample_key().digest());
        assert_eq!(key.digest().len(), 32);
        assert!(key.digest().bytes().all(|b| b.is_ascii_hexdigit()));
        let recomputed = {
            let a = fnv1a64(key.canonical().as_bytes(), FNV_BASIS_A);
            let b = fnv1a64(key.canonical().as_bytes(), FNV_BASIS_B);
            format!("{a:016x}{b:016x}")
        };
        assert_eq!(key.digest(), recomputed);
    }

    #[test]
    fn every_field_reaches_the_digest() {
        let base = sample_key();
        let variants = [
            CellKey {
                scheme: format!("{:?}", SchemeKind::InlineNaive { coverage: 8 }),
                ..base.clone()
            },
            CellKey {
                workload: "saxpy".to_string(),
                ..base.clone()
            },
            CellKey {
                machine: "small".to_string(),
                ..base.clone()
            },
            CellKey {
                size: "small".to_string(),
                ..base.clone()
            },
            CellKey {
                seed: 2,
                ..base.clone()
            },
            CellKey {
                inject: "symbol:p=0.0001".to_string(),
                ..base.clone()
            },
            CellKey {
                features: Vec::new(),
                ..base.clone()
            },
            CellKey {
                code_version: "rustc 1.80 @ def456".to_string(),
                ..base.clone()
            },
        ];
        let mut digests: Vec<String> = variants.iter().map(CellKey::digest).collect();
        digests.push(base.digest());
        let unique: BTreeSet<&String> = digests.iter().collect();
        assert_eq!(
            unique.len(),
            digests.len(),
            "every key field must change the digest: {digests:?}"
        );
    }

    #[test]
    fn feature_order_does_not_change_the_digest() {
        let mut a = sample_key();
        a.features = vec!["b".to_string(), "a".to_string()];
        let mut b = sample_key();
        b.features = vec!["a".to_string(), "b".to_string()];
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).expect("open cache");
        let key = sample_key();
        assert!(cache.lookup(&key).is_none(), "cold cache misses");
        let stats = sample_stats();
        cache.insert(&key, &stats, 4).expect("insert");
        let entry = cache.lookup(&key).expect("hit after insert");
        assert_eq!(entry.stats, stats);
        assert_eq!(entry.sim_threads, 4);
        assert_eq!(entry.key, key);
        // A different seed is a different cell: still a miss.
        let other = CellKey {
            seed: 99,
            ..sample_key()
        };
        assert!(cache.lookup(&other).is_none());
        let c = cache.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.inserts, 1);
        assert!(c.misses >= 2);
        assert!(
            c.negative_hits >= 1,
            "the unknown-seed miss must be answered by the bloom filter: {c:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_survives_reopen_in_a_new_instance() {
        // Same config through "two processes": a second ResultCache over
        // the same directory reindexes the entry and serves the hit.
        let dir = temp_dir("reopen");
        let key = sample_key();
        let stats = sample_stats();
        {
            let cache = ResultCache::open(&dir).expect("open cache");
            cache.insert(&key, &stats, 1).expect("insert");
        }
        let reopened = ResultCache::open(&dir).expect("reopen cache");
        assert_eq!(reopened.len(), 1);
        let entry = reopened.lookup(&key).expect("hit across instances");
        assert_eq!(entry.stats, stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_entry_is_quarantined_and_recomputed_not_served() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).expect("open cache");
        let key = sample_key();
        let stats = sample_stats();
        cache.insert(&key, &stats, 1).expect("insert");
        // Flip bytes in the durable file's payload so the crc32 footer
        // no longer matches.
        let path = dir.join(format!("{}.json", key.digest()));
        let mut bytes = std::fs::read(&path).expect("read entry");
        bytes[10] ^= 0xFF;
        bytes[11] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt entry");

        assert!(
            cache.lookup(&key).is_none(),
            "a corrupted entry must be a miss, never served"
        );
        assert!(!path.exists(), "the damaged file was moved aside");
        let quarantined = std::fs::read_dir(&dir)
            .expect("list dir")
            .flatten()
            .any(|e| e.file_name().to_string_lossy().contains(".corrupt-"));
        assert!(quarantined, "quarantine sibling must exist");
        assert_eq!(cache.counters().corrupt, 1);

        // Recompute-and-reinsert heals the cache.
        cache.insert(&key, &stats, 1).expect("reinsert");
        assert_eq!(cache.lookup(&key).expect("healed hit").stats, stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_under_same_digest_is_rejected() {
        // Simulate a digest collision by writing an entry whose stored
        // key differs from the lookup key at the colliding path.
        let dir = temp_dir("collision");
        let cache = ResultCache::open(&dir).expect("open cache");
        let key = sample_key();
        let stats = sample_stats();
        cache.insert(&key, &stats, 1).expect("insert");
        let path = dir.join(format!("{}.json", key.digest()));
        let (text, _) = store::read_verified_string(&path).expect("read back");
        let mut entry: CacheEntry = serde_json::from_str(&text).expect("parse");
        entry.key.seed = 12345; // now the stored key lies
        let forged = serde_json::to_string_pretty(&entry).expect("serialize");
        store::write_durable(&path, forged.as_bytes()).expect("rewrite");
        cache.remember(&key.digest());
        assert!(
            cache.lookup(&key).is_none(),
            "an aliased entry must not be served"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
