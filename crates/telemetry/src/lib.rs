//! Observability probes for the CacheCraft simulator.
//!
//! The simulator's headline numbers (`SimStats`) are end-of-run
//! aggregates; this crate adds the instruments needed to see *inside* a
//! run without perturbing it:
//!
//! * [`Histogram`] — log2-bucketed latency histogram with
//!   `p50`/`p90`/`p99`/`max` summaries;
//! * [`Counter`] — a named monotonic counter for probe sites;
//! * [`Sampler`] / [`Timeline`] — epoch snapshots of registered counters
//!   into a cycle-resolved time-series;
//! * [`chrome_trace`] — Chrome trace-event (Perfetto-loadable) JSON
//!   export of per-component activity;
//! * [`manifest`] — per-run `manifest.json` describing what produced a
//!   results directory.
//!
//! # Overhead discipline
//!
//! Every probe site in the simulator is gated on an `Option` (or an
//! `enabled` flag) owned by the caller. When telemetry is disabled — the
//! default — the per-cycle cost is a single predictable branch, and the
//! emitted `SimStats` are bit-identical to a build without probes.
// Library crates must not abort the process on recoverable conditions:
// panicking escapes are denied outside tests, and the few justified
// invariant panics carry scoped `#[allow]`s with a safety comment.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chrome_trace;
pub mod manifest;
pub mod profiler;

use serde::{Deserialize, Serialize};

/// Number of log2 buckets in a [`Histogram`]. Bucket 0 holds zeros,
/// bucket `b >= 1` holds values in `[2^(b-1), 2^b - 1]`, and the top
/// bucket saturates (holds everything at or above its lower bound).
pub const HIST_BUCKETS: usize = 33;

/// A log2-bucketed histogram of `u64` samples.
///
/// Recording is O(1): one `leading_zeros`, one add. Percentiles are
/// approximate — a quantile resolves to its bucket's upper bound, capped
/// at the exact observed maximum — which is plenty for latency
/// distributions spanning decades.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (for the exact mean).
    pub sum: u64,
    /// Exact maximum recorded sample.
    pub max: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
}

/// Bucket index for a sample value.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (used as the quantile
/// representative). The top bucket is unbounded, so callers cap it at
/// the observed max.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. All tallies saturate (see [`Histogram::merge`]).
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        let b = bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th sample, capped at the
    /// exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (approximate; see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (approximate).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    ///
    /// All arithmetic saturates: merging histograms whose counts or
    /// bucket tallies sum past `u64::MAX` pins at `u64::MAX` instead of
    /// wrapping (or panicking in debug builds).
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.saturating_add(*src);
        }
    }
}

/// A named monotonic counter for probe sites.
///
/// Thin wrapper over `u64`; exists so probe code reads as telemetry
/// (`probe.stall_lsu.inc()`) and so counters can be registered with a
/// [`Sampler`] by name. All arithmetic saturates: a counter that would
/// pass `u64::MAX` in a long run pins there instead of wrapping (or
/// panicking in debug builds) — same contract as [`Histogram::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one (saturating).
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// One named series of epoch samples in a [`Timeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name, e.g. `"dram.reads"`.
    pub name: String,
    /// One point per completed epoch.
    pub points: Vec<f64>,
}

/// A cycle-resolved time-series: one point per registered metric per
/// epoch of `epoch_cycles` simulated cycles.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Epoch length in cycles; point `i` of every series covers cycles
    /// `[i * epoch_cycles, (i + 1) * epoch_cycles)`.
    pub epoch_cycles: u64,
    /// The registered series, in registration order.
    pub series: Vec<Series>,
}

impl Timeline {
    /// Number of completed epochs.
    pub fn epochs(&self) -> usize {
        self.series.first().map_or(0, |s| s.points.len())
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Epoch sampler: snapshots registered counters every `epoch_cycles`
/// cycles into a [`Timeline`].
///
/// The driving loop calls [`Sampler::due`] each cycle (one compare) and,
/// when it fires, computes the current metric values and hands them to
/// [`Sampler::sample`] in registration order.
#[derive(Debug, Clone)]
pub struct Sampler {
    epoch_cycles: u64,
    next_due: u64,
    timeline: Timeline,
}

impl Sampler {
    /// Creates a sampler that fires every `epoch_cycles` cycles
    /// (minimum 1).
    pub fn new(epoch_cycles: u64) -> Self {
        let epoch_cycles = epoch_cycles.max(1);
        Sampler {
            epoch_cycles,
            next_due: epoch_cycles,
            timeline: Timeline {
                epoch_cycles,
                series: Vec::new(),
            },
        }
    }

    /// Registers a metric; returns its index for [`Sampler::sample`].
    pub fn register(&mut self, name: &str) -> usize {
        self.timeline.series.push(Series {
            name: name.to_string(),
            points: Vec::new(),
        });
        self.timeline.series.len() - 1
    }

    /// True when the epoch ending at `cycle` should be sampled.
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// Cycle at which the next epoch sample falls due.
    ///
    /// Simulators that fast-forward through idle spans must cap each
    /// jump at this cycle so every epoch boundary is still observed and
    /// sampled exactly once.
    pub fn next_due_cycle(&self) -> u64 {
        self.next_due
    }

    /// Records one point per registered series (values in registration
    /// order) and advances to the next epoch.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of registered
    /// series.
    pub fn sample(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.timeline.series.len(),
            "sample width must match registered series"
        );
        for (series, &v) in self.timeline.series.iter_mut().zip(values) {
            series.points.push(v);
        }
        self.next_due += self.epoch_cycles;
    }

    /// Epoch length in cycles.
    pub fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    /// Consumes the sampler, returning the accumulated timeline.
    pub fn finish(self) -> Timeline {
        self.timeline
    }
}

/// Run-wide telemetry switches, threaded from the CLI into the
/// simulator. `Default` is everything off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: when false, no probe allocates or records.
    pub enabled: bool,
    /// Epoch length for the time-series sampler, in cycles.
    pub epoch_cycles: u64,
    /// Collect Chrome trace events (bounded by `max_trace_events`).
    pub trace_events: bool,
    /// Hard cap on collected trace events; further events are counted
    /// but dropped.
    pub max_trace_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            epoch_cycles: 1024,
            trace_events: false,
            max_trace_events: 200_000,
        }
    }
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Timeline + histograms on, trace events off.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Everything on, including trace events.
    pub fn full() -> Self {
        TelemetryConfig {
            enabled: true,
            trace_events: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        // Top-bucket saturation: everything >= 2^31 shares the last bucket.
        assert_eq!(bucket_of(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn quantiles_are_ordered_and_capped_by_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 5, 9, 17, 33, 100, 400, 401] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        assert!(h.p50() >= 1);
        assert!(h.p90() >= h.p50());
        assert!(h.p99() >= h.p90());
        assert!(h.p99() <= h.max);
        assert_eq!(h.max, 401);
        // Single-value histogram: every quantile is that value's bucket,
        // capped at the exact max.
        let mut one = Histogram::new();
        one.record(100);
        assert_eq!(one.p50(), 100);
        assert_eq!(one.p99(), 100);
    }

    #[test]
    fn top_bucket_saturation_does_not_lose_counts() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 40);
        h.record(1 << 32);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 3);
        assert_eq!(h.count, 3);
        assert_eq!(h.p50(), h.max);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, 1000);
        assert_eq!(a.sum, 1004);
    }

    #[test]
    fn merge_saturates_at_u64_max() {
        let mut a = Histogram::new();
        a.count = u64::MAX - 1;
        a.sum = u64::MAX;
        a.max = 7;
        a.buckets[0] = u64::MAX;
        a.buckets[3] = u64::MAX - 2;
        let mut b = Histogram::new();
        b.count = 5;
        b.sum = 100;
        b.max = 9;
        b.buckets[0] = 1;
        b.buckets[3] = 5;
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.max, 9);
        assert_eq!(a.buckets[0], u64::MAX);
        assert_eq!(a.buckets[3], u64::MAX);
    }

    #[test]
    fn quantile_and_mean_on_empty_histogram() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        // Out-of-range q is clamped, not panicking, even when empty.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
    }

    #[test]
    fn quantile_and_mean_on_single_bucket_histogram() {
        // All samples land in one bucket ([4, 7] = bucket 3): every
        // quantile resolves to that bucket, capped at the exact max.
        let mut h = Histogram::new();
        for v in [4u64, 5, 6, 6, 5] {
            h.record(v);
        }
        assert_eq!(h.buckets.iter().filter(|&&n| n > 0).count(), 1);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 6, "q={q}");
        }
        assert_eq!(h.mean(), 26.0 / 5.0);
        // The zero bucket is its own single-bucket case: quantiles are 0
        // but the count is real.
        let mut z = Histogram::new();
        z.record(0);
        z.record(0);
        assert_eq!(z.count, 2);
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.quantile(1.0), 0);
        assert_eq!(z.mean(), 0.0);
    }

    #[test]
    fn sampler_next_due_at_epoch_boundaries() {
        // Zero epoch length is clamped to 1: due every cycle from 1 on.
        let s = Sampler::new(0);
        assert_eq!(s.epoch_cycles(), 1);
        assert_eq!(s.next_due_cycle(), 1);
        assert!(!s.due(0));
        assert!(s.due(1));

        // The boundary cycle itself is due; the cycle before is not,
        // and sampling moves next_due exactly one epoch forward.
        let mut s = Sampler::new(100);
        s.register("x");
        assert!(!s.due(99));
        assert!(s.due(100));
        assert_eq!(s.next_due_cycle(), 100);
        s.sample(&[1.0]);
        assert_eq!(s.next_due_cycle(), 200);
        assert!(!s.due(100));
        assert!(!s.due(199));
        assert!(s.due(200));
        // An idle fast-forward that overshoots still reads as due; the
        // cap-at-next_due contract is what keeps epochs exact.
        assert!(s.due(10_000));
        s.sample(&[2.0]);
        assert_eq!(s.next_due_cycle(), 300);
    }

    /// Shared saturation property: `Counter::inc`/`add`,
    /// `Histogram::record`/`merge`, and the profiler's `MemoStats` (which
    /// is built from `Counter`) must never wrap, for any mix of edge
    /// values. Driven by a deterministic LCG, no external inputs.
    #[test]
    fn counters_and_histograms_saturate_instead_of_wrapping() {
        use crate::profiler::MemoStats;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let edges = [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for round in 0..200 {
            let raw = next();
            let v = if round % 2 == 0 {
                edges[(raw % edges.len() as u64) as usize]
            } else {
                raw
            };

            // Counter: monotone under inc/add from any starting point.
            let mut c = Counter(u64::MAX - (raw % 3));
            let before = c.get();
            c.add(v);
            assert!(c.get() >= before, "add({v}) wrapped from {before}");
            let before = c.get();
            c.inc();
            assert!(c.get() >= before, "inc wrapped from {before}");

            // MemoStats shares Counter semantics at the profiler layer.
            let mut m = MemoStats {
                hits: Counter(u64::MAX),
                misses: Counter(v),
            };
            m.hit();
            assert_eq!(m.hits.get(), u64::MAX);
            let rate = m.hit_rate();
            assert!((0.0..=1.0).contains(&rate));

            // Histogram: record and merge saturate count/sum/buckets.
            let mut h = Histogram::new();
            h.count = u64::MAX - 1;
            h.sum = u64::MAX - 1;
            h.buckets[bucket_of(v)] = u64::MAX - 1;
            let before = h.clone();
            h.record(v);
            h.record(v);
            h.record(v);
            assert_eq!(h.count, u64::MAX);
            assert!(
                h.sum >= before.sum,
                "sum wrapped: {} -> {}",
                before.sum,
                h.sum
            );
            if v > 0 {
                assert_eq!(h.sum, u64::MAX);
            }
            assert_eq!(h.buckets[bucket_of(v)], u64::MAX);
            assert!(h.max >= before.max);

            let mut g = Histogram::new();
            g.record(v);
            g.record(raw);
            let merged_before = h.clone();
            h.merge(&g);
            assert_eq!(h.count, u64::MAX);
            assert!(h.sum >= merged_before.sum);
            for (i, (&after, &b4)) in h.buckets.iter().zip(&merged_before.buckets).enumerate() {
                assert!(after >= b4, "bucket {i} shrank: {b4} -> {after}");
            }
        }
    }

    #[test]
    fn sampler_next_due_tracks_epochs() {
        let mut s = Sampler::new(100);
        s.register("reads");
        assert_eq!(s.next_due_cycle(), 100);
        s.sample(&[1.0]);
        assert_eq!(s.next_due_cycle(), 200);
    }

    #[test]
    fn sampler_epochs() {
        let mut s = Sampler::new(100);
        let reads = s.register("reads");
        let lat = s.register("latency");
        assert_eq!((reads, lat), (0, 1));
        assert!(!s.due(99));
        assert!(s.due(100));
        s.sample(&[10.0, 250.0]);
        assert!(!s.due(150));
        assert!(s.due(200));
        s.sample(&[12.0, 240.0]);
        let t = s.finish();
        assert_eq!(t.epochs(), 2);
        assert_eq!(t.series("reads").unwrap().points, vec![10.0, 12.0]);
        assert_eq!(t.series("nope"), None);
        assert_eq!(t.epoch_cycles, 100);
    }

    #[test]
    fn histogram_serde_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 300, 1 << 20] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn timeline_serde_round_trip() {
        let mut s = Sampler::new(64);
        s.register("x");
        s.sample(&[1.5]);
        s.sample(&[2.5]);
        let t = s.finish();
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
