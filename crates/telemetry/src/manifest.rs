//! Run manifests: a `manifest.json` written next to every experiment's
//! results, recording what produced them.

use serde::{Deserialize, Serialize};
use std::time::{SystemTime, UNIX_EPOCH};

/// Description of one completed experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment name (e.g. `"f4-main"` or `"ccx-run"`).
    pub experiment: String,
    /// The argv the run was invoked with.
    pub command: Vec<String>,
    /// Size class the run used (`tiny` / `small` / `full`).
    pub size: String,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_secs: f64,
    /// Completion time, milliseconds since the Unix epoch.
    pub completed_unix_ms: u64,
    /// Free-form telemetry summary (metric name, value), e.g. matrix
    /// cell counts or headline latency percentiles.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub summary: Vec<(String, f64)>,
    /// Files written by the run, relative to the results directory.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub outputs: Vec<String>,
    /// Non-fatal problems the run survived: failed or timed-out matrix
    /// cells (with their panic messages), skipped artifacts, and similar.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub warnings: Vec<String>,
}

impl RunManifest {
    /// Creates a manifest skeleton for an experiment; the caller fills
    /// in timing, summary and outputs as the run proceeds.
    pub fn new(experiment: &str) -> Self {
        RunManifest {
            experiment: experiment.to_string(),
            command: std::env::args().collect(),
            size: String::new(),
            seed: 0,
            threads: 0,
            wall_time_secs: 0.0,
            completed_unix_ms: 0,
            summary: Vec::new(),
            outputs: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Adds a named metric to the summary.
    pub fn note(&mut self, name: &str, value: f64) {
        self.summary.push((name.to_string(), value));
    }

    /// Records a written output file.
    pub fn output(&mut self, path: &str) {
        self.outputs.push(path.to_string());
    }

    /// Records a non-fatal problem (e.g. a failed matrix cell).
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }

    /// Stamps the completion time from the system clock.
    pub fn stamp(&mut self) {
        self.completed_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
    }

    /// Serializes the manifest as pretty JSON.
    // Serializing a plain-old-data struct cannot fail; a panic here means
    // the derive or the vendored serde_json is broken.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let mut m = RunManifest::new("f4-main");
        m.size = "tiny".to_string();
        m.seed = 42;
        m.threads = 4;
        m.wall_time_secs = 1.25;
        m.note("cells", 8.0);
        m.output("f4_main.csv");
        m.warn("cell m0/spmv/cachecraft failed: boom");
        m.stamp();
        let json = m.to_json();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert!(back.completed_unix_ms > 0);
        assert_eq!(back.warnings.len(), 1);
    }

    #[test]
    fn empty_sections_are_omitted() {
        let m = RunManifest::new("x");
        let json = m.to_json();
        assert!(!json.contains("summary"));
        assert!(!json.contains("outputs"));
        assert!(!json.contains("warnings"));
    }
}
