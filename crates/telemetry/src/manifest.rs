//! Run manifests: a `manifest.json` written next to every experiment's
//! results, recording what produced them.

use serde::{Deserialize, Serialize};
use std::time::{SystemTime, UNIX_EPOCH};

/// Build/host provenance captured into the manifest so tools like
/// `ccx perf-diff` can refuse to compare runs from different toolchains
/// or machines. Every field degrades to `"unknown"` (or empty) when the
/// probe fails — provenance capture must never fail a run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Provenance {
    /// `rustc -V` of the toolchain that built the binary's environment.
    #[serde(default)]
    pub rustc: String,
    /// `git rev-parse HEAD` of the working tree, with a `-dirty` suffix
    /// when the tree had uncommitted changes; `"unknown"` outside a repo.
    #[serde(default)]
    pub git_commit: String,
    /// Hostname the run executed on.
    #[serde(default)]
    pub hostname: String,
    /// Cargo feature flags that alter runtime behavior (e.g.
    /// `check-invariants`), pushed by the caller — the library cannot see
    /// the binary's feature set.
    #[serde(default)]
    pub features: Vec<String>,
}

impl Provenance {
    /// Captures toolchain, commit, and hostname from the environment.
    /// `features` is left empty for the caller to fill.
    pub fn capture() -> Self {
        Provenance {
            rustc: probe_cmd("rustc", &["-V"]),
            git_commit: capture_git_commit(),
            hostname: capture_hostname(),
            features: Vec::new(),
        }
    }

    /// True when nothing was captured (used to omit the manifest field).
    pub fn is_empty(&self) -> bool {
        self == &Provenance::default()
    }
}

/// Runs a command and returns its trimmed stdout, or `"unknown"`.
fn probe_cmd(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn capture_git_commit() -> String {
    let commit = probe_cmd("git", &["rev-parse", "HEAD"]);
    if commit == "unknown" {
        return commit;
    }
    // `git status --porcelain` prints nothing when the tree is clean.
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{commit}-dirty")
    } else {
        commit
    }
}

fn capture_hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| probe_cmd("uname", &["-n"]))
}

/// Serde default: manifests written before sharded execution ran
/// everything single-threaded.
fn default_sim_threads() -> u32 {
    1
}

/// Per-cell execution provenance: what actually happened to one matrix
/// cell, as opposed to what was requested for the run.
///
/// The global [`RunManifest::sim_threads`] records the *requested* shard
/// count, but telemetry and fault-injection cells silently fall back to
/// the single-threaded loop, so tools that compare wall-clock (like
/// `ccx perf-diff`) must read the per-cell *effective* values recorded
/// here instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellManifest {
    /// Cell identifier (`m<call>/<workload>/<scheme>` or
    /// `<workload>/<scheme>`).
    pub cell: String,
    /// Threads the cell's cycle loop was *actually* sharded across —
    /// 1 for telemetry/fault-injection cells regardless of the request.
    #[serde(default = "default_sim_threads")]
    pub sim_threads: u32,
    /// Result-cache disposition: `"hit"` (served from the
    /// content-addressed cache, no simulation), `"miss"` (simulated and
    /// inserted), or `"uncached"` (no cache in play).
    #[serde(default)]
    pub cache: String,
    /// Final cell status (`"ok"` / `"failed"` / `"timeout"`).
    #[serde(default)]
    pub status: String,
}

/// Description of one completed experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment name (e.g. `"f4-main"` or `"ccx-run"`).
    pub experiment: String,
    /// The argv the run was invoked with.
    pub command: Vec<String>,
    /// Size class the run used (`tiny` / `small` / `full`).
    pub size: String,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Threads each simulation's cycle loop was sharded across (1 = the
    /// single-threaded loop). Stats are bit-identical at every setting,
    /// but wall-clock is not comparable across different values, so
    /// `ccx perf-diff` refuses mixed-`sim_threads` comparisons without
    /// `--force`. Defaults to 1 for manifests from before sharding.
    #[serde(default = "default_sim_threads")]
    pub sim_threads: u32,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_secs: f64,
    /// Completion time, milliseconds since the Unix epoch.
    pub completed_unix_ms: u64,
    /// Free-form telemetry summary (metric name, value), e.g. matrix
    /// cell counts or headline latency percentiles.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub summary: Vec<(String, f64)>,
    /// Files written by the run, relative to the results directory.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub outputs: Vec<String>,
    /// Non-fatal problems the run survived: failed or timed-out matrix
    /// cells (with their panic messages), skipped artifacts, and similar.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub warnings: Vec<String>,
    /// Per-cell execution provenance (effective `sim_threads`, cache
    /// disposition, status). Empty in manifests from before it existed.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub cells: Vec<CellManifest>,
    /// Build/host provenance; absent in manifests from before it existed.
    #[serde(default, skip_serializing_if = "Provenance::is_empty")]
    pub provenance: Provenance,
}

impl RunManifest {
    /// Creates a manifest skeleton for an experiment; the caller fills
    /// in timing, summary and outputs as the run proceeds.
    pub fn new(experiment: &str) -> Self {
        RunManifest {
            experiment: experiment.to_string(),
            command: std::env::args().collect(),
            size: String::new(),
            seed: 0,
            threads: 0,
            sim_threads: 1,
            wall_time_secs: 0.0,
            completed_unix_ms: 0,
            summary: Vec::new(),
            outputs: Vec::new(),
            warnings: Vec::new(),
            cells: Vec::new(),
            provenance: Provenance::default(),
        }
    }

    /// Records one cell's execution provenance.
    pub fn record_cell(&mut self, cell: CellManifest) {
        self.cells.push(cell);
    }

    /// The sorted, distinct *effective* per-cell `sim_threads` values of
    /// the run. Falls back to the global (requested) value for manifests
    /// without per-cell records, so old manifests keep their previous
    /// comparison semantics.
    pub fn effective_sim_threads(&self) -> Vec<u32> {
        if self.cells.is_empty() {
            return vec![self.sim_threads];
        }
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.sim_threads).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Adds a named metric to the summary.
    pub fn note(&mut self, name: &str, value: f64) {
        self.summary.push((name.to_string(), value));
    }

    /// Records a written output file.
    pub fn output(&mut self, path: &str) {
        self.outputs.push(path.to_string());
    }

    /// Records a non-fatal problem (e.g. a failed matrix cell).
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }

    /// Stamps the completion time from the system clock and captures
    /// build/host provenance if the caller has not already set it
    /// (feature flags already pushed into `provenance` are preserved).
    pub fn stamp(&mut self) {
        self.completed_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        if self.provenance.rustc.is_empty() {
            let features = std::mem::take(&mut self.provenance.features);
            self.provenance = Provenance::capture();
            self.provenance.features = features;
        }
    }

    /// Serializes the manifest as pretty JSON.
    // Serializing a plain-old-data struct cannot fail; a panic here means
    // the derive or the vendored serde_json is broken.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let mut m = RunManifest::new("f4-main");
        m.size = "tiny".to_string();
        m.seed = 42;
        m.threads = 4;
        m.wall_time_secs = 1.25;
        m.note("cells", 8.0);
        m.output("f4_main.csv");
        m.warn("cell m0/spmv/cachecraft failed: boom");
        m.stamp();
        let json = m.to_json();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert!(back.completed_unix_ms > 0);
        assert_eq!(back.warnings.len(), 1);
        // stamp() captured provenance; fields are never empty strings.
        assert!(!back.provenance.rustc.is_empty());
        assert!(!back.provenance.git_commit.is_empty());
        assert!(!back.provenance.hostname.is_empty());
    }

    #[test]
    fn empty_sections_are_omitted() {
        let m = RunManifest::new("x");
        let json = m.to_json();
        assert!(!json.contains("summary"));
        assert!(!json.contains("outputs"));
        assert!(!json.contains("warnings"));
        assert!(!json.contains("provenance"));
    }

    #[test]
    fn stamp_preserves_caller_features() {
        let mut m = RunManifest::new("x");
        m.provenance.features = vec!["check-invariants".to_string()];
        m.stamp();
        assert_eq!(m.provenance.features, vec!["check-invariants"]);
        assert!(!m.provenance.rustc.is_empty());
    }

    #[test]
    fn effective_sim_threads_reads_per_cell_truth() {
        let mut m = RunManifest::new("x");
        m.sim_threads = 4; // requested
                           // No per-cell records: fall back to the global value.
        assert_eq!(m.effective_sim_threads(), vec![4]);
        // Fault-injection cells fell back to single-threaded: the
        // effective set reflects that, not the request.
        m.record_cell(CellManifest {
            cell: "m0/vecadd/cachecraft".to_string(),
            sim_threads: 1,
            cache: "uncached".to_string(),
            status: "ok".to_string(),
        });
        m.record_cell(CellManifest {
            cell: "m0/saxpy/cachecraft".to_string(),
            sim_threads: 1,
            cache: "uncached".to_string(),
            status: "ok".to_string(),
        });
        assert_eq!(m.effective_sim_threads(), vec![1]);
        // A genuinely sharded cell widens the set (sorted, distinct).
        m.record_cell(CellManifest {
            cell: "m1/vecadd/cachecraft".to_string(),
            sim_threads: 4,
            cache: "miss".to_string(),
            status: "ok".to_string(),
        });
        assert_eq!(m.effective_sim_threads(), vec![1, 4]);
        // And the records round-trip through JSON.
        let back: RunManifest = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back.cells.len(), 3);
        assert_eq!(back.effective_sim_threads(), vec![1, 4]);
    }

    #[test]
    fn manifests_without_provenance_still_parse() {
        let json = r#"{
            "experiment": "old",
            "command": ["exp-all"],
            "size": "tiny",
            "seed": 1,
            "threads": 2,
            "wall_time_secs": 0.5,
            "completed_unix_ms": 123
        }"#;
        let m: RunManifest = serde_json::from_str(json).unwrap();
        assert!(m.provenance.is_empty());
        // Pre-sharding manifests read back as single-threaded simulation.
        assert_eq!(m.sim_threads, 1);
    }
}
