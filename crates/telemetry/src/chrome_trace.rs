//! Chrome trace-event export.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...], "displayTimeUnit": "ms"}` where each
//! event is a *complete* event (`"ph": "X"`) with a start timestamp and a
//! duration. Simulated cycles map 1:1 onto trace microseconds, so one
//! trace millisecond reads as a thousand GPU cycles.

use serde::{Serialize, Value};

/// Process id used for all simulator events (the trace has one process).
const PID: u32 = 1;

/// One complete ("X") trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label shown on the slice.
    pub name: String,
    /// Category, e.g. `"dram"`, `"sm"`, `"l2"`.
    pub cat: String,
    /// Track (thread) id; one lane per simulated component.
    pub tid: u32,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (rendered with a minimum of 1 so zero-length
    /// events stay visible).
    pub dur: u64,
    /// Extra key/value payload shown in the event details pane.
    pub args: Vec<(String, f64)>,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("cat".to_string(), Value::String(self.cat.clone())),
            ("ph".to_string(), Value::String("X".to_string())),
            ("ts".to_string(), Value::Int(i128::from(self.ts))),
            ("dur".to_string(), Value::Int(i128::from(self.dur.max(1)))),
            ("pid".to_string(), Value::Int(i128::from(PID))),
            ("tid".to_string(), Value::Int(i128::from(self.tid))),
        ];
        if !self.args.is_empty() {
            obj.push((
                "args".to_string(),
                Value::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Float(*v)))
                        .collect(),
                ),
            ));
        }
        Value::Object(obj)
    }
}

/// A bounded collection of trace events plus track-naming metadata.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
    /// `(tid, name)` pairs emitted as `thread_name` metadata events.
    tracks: Vec<(u32, String)>,
    cap: usize,
    dropped: u64,
}

impl ChromeTrace {
    /// Creates a trace that keeps at most `cap` events (0 = unlimited).
    pub fn new(cap: usize) -> Self {
        ChromeTrace {
            events: Vec::new(),
            tracks: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Names a track (component lane) in the viewer.
    pub fn name_track(&mut self, tid: u32, name: &str) {
        self.tracks.push((tid, name.to_string()));
    }

    /// Appends a complete event; silently counts it as dropped once the
    /// cap is reached.
    pub fn complete(&mut self, event: TraceEvent) {
        if self.cap != 0 && self.events.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded after the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes the trace as a Chrome/Perfetto-loadable JSON object.
    // Serializing an owned Value tree cannot fail; a panic here means the
    // vendored serde_json itself is broken.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        let mut all: Vec<Value> = Vec::with_capacity(self.events.len() + self.tracks.len());
        for (tid, name) in &self.tracks {
            all.push(Value::Object(vec![
                ("name".to_string(), Value::String("thread_name".to_string())),
                ("ph".to_string(), Value::String("M".to_string())),
                ("pid".to_string(), Value::Int(i128::from(PID))),
                ("tid".to_string(), Value::Int(i128::from(*tid))),
                (
                    "args".to_string(),
                    Value::Object(vec![("name".to_string(), Value::String(name.clone()))]),
                ),
            ]));
        }
        all.extend(self.events.iter().map(Serialize::to_value));
        let root = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(all)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        serde_json::to_string(&Raw(root)).expect("trace serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test".to_string(),
            tid: 3,
            ts,
            dur,
            args: vec![("v".to_string(), 1.5)],
        }
    }

    #[test]
    fn emits_complete_events_and_track_names() {
        let mut t = ChromeTrace::new(0);
        t.name_track(3, "dram ch0");
        t.complete(event("read", 100, 40));
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("dram ch0"));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn zero_duration_renders_as_one() {
        let mut t = ChromeTrace::new(0);
        t.complete(event("tick", 5, 0));
        assert!(t.to_json().contains("\"dur\":1"));
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = ChromeTrace::new(2);
        for i in 0..5 {
            t.complete(event("e", i, 1));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
