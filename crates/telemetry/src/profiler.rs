//! Self-profiling primitives: host wall-time attribution for the
//! simulator and the report types serialized into `results/profile.json`
//! by `ccx run --profile`.
//!
//! # Why host time lives here
//!
//! The determinism lint (`cargo xtask lint`) bans wall-clock tokens in
//! the simulator crates because simulated behavior must never depend on
//! host time. Profiling is the one sanctioned exception: its *output*
//! is host time, and that output is never fed back into the simulation.
//! All `Instant` mentions are confined to this module behind
//! [`HostStamp`] / [`PhaseTimer`], each carrying a documented
//! `lint: allow(wall-clock)` waiver, so simulator code can time itself
//! without naming a clock.
//!
//! # Overhead discipline
//!
//! Same contract as the rest of this crate: every probe is gated on an
//! `Option` (or the `None` arm of [`PhaseTimer`]). Disabled profiling
//! costs one predictable branch per probe site and leaves `SimStats`
//! bit-identical — the golden corpus enforces this.

use crate::{Counter, Histogram};
use serde::{Deserialize, Serialize};
use std::time::Instant; // lint: allow(wall-clock) reason=host-time profiler: wall time is the measured output here and never feeds back into simulated state

/// Schema version stamped into `profile.json` (see [`ProfileReport`]).
pub const PROFILE_SCHEMA: u32 = 1;

/// An opaque host-clock reading. The only way to extract anything from
/// it is a duration relative to another reading, so simulated state
/// cannot absorb absolute host time.
#[derive(Debug, Clone, Copy)]
pub struct HostStamp(Instant); // lint: allow(wall-clock) reason=host-time profiler: opaque stamp type; only durations escape

impl HostStamp {
    /// Reads the host clock now.
    pub fn now() -> Self {
        HostStamp(Instant::now()) // lint: allow(wall-clock) reason=host-time profiler: the single clock-read site behind PhaseTimer
    }

    /// Nanoseconds from this stamp to now (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds from `earlier` to this stamp (0 if not actually
    /// earlier; `Instant::duration_since` saturates).
    pub fn since(&self, earlier: HostStamp) -> u64 {
        u64::try_from(self.0.duration_since(earlier.0).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A restartable lap timer for hot loops.
///
/// Built disabled ([`PhaseTimer::start`] with `enabled == false`) it
/// holds no stamp and [`PhaseTimer::lap`] is a branch returning 0 — the
/// simulator threads one of these through its cycle loop unconditionally
/// and pays nothing when profiling is off.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer(Option<HostStamp>);

impl PhaseTimer {
    /// Starts a timer; a disabled timer never reads the clock.
    pub fn start(enabled: bool) -> Self {
        PhaseTimer(if enabled {
            Some(HostStamp::now())
        } else {
            None
        })
    }

    /// Nanoseconds since the previous lap (or start), and resets the
    /// reference point. Returns 0 when disabled.
    pub fn lap(&mut self) -> u64 {
        match &mut self.0 {
            Some(stamp) => {
                let now = HostStamp::now();
                let ns = now.since(*stamp);
                *stamp = now;
                ns
            }
            None => 0,
        }
    }

    /// Resets the reference point without attributing the elapsed span
    /// anywhere (used to drop uninteresting sections).
    pub fn reset(&mut self) {
        if let Some(stamp) = &mut self.0 {
            *stamp = HostStamp::now();
        }
    }

    /// True when this timer actually reads the clock.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Hit/miss tally for a memoization site (SM sleep memo, FR-FCFS
/// scan-sleep memo). Uses [`Counter`] so saturation semantics are shared
/// with every other probe counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoStats {
    /// Times the memo short-circuited the work.
    pub hits: Counter,
    /// Times the work actually ran.
    pub misses: Counter,
}

impl MemoStats {
    /// Records a memo hit.
    pub fn hit(&mut self) {
        self.hits.inc();
    }

    /// Records a memo miss.
    pub fn miss(&mut self) {
        self.misses.inc();
    }

    /// Total lookups (saturating).
    pub fn total(&self) -> u64 {
        self.hits.get().saturating_add(self.misses.get())
    }

    /// Fraction of lookups served by the memo, in `[0, 1]` (0 when
    /// nothing was recorded).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &MemoStats) {
        self.hits.add(other.hits.get());
        self.misses.add(other.misses.get());
    }
}

/// Per-channel load row in the imbalance report: how much work one
/// memory channel (and its 1:1 L2 slice + controller) absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelLoad {
    /// Channel index.
    pub channel: u32,
    /// DRAM read commands issued (data + ECC).
    pub reads: u64,
    /// DRAM write commands issued (data + ECC).
    pub writes: u64,
    /// Cycles the controller had work queued.
    pub busy_cycles: u64,
    /// Row-buffer hits among issued commands.
    pub row_hits: u64,
    /// Row-buffer empties + conflicts among issued commands.
    pub row_misses: u64,
    /// Host nanoseconds spent ticking this channel's slice domain
    /// (L2 slice + controller + DRAM scheduling).
    pub host_ns: u64,
}

impl ChannelLoad {
    /// Total DRAM commands issued on this channel.
    pub fn requests(&self) -> u64 {
        self.reads.saturating_add(self.writes)
    }
}

/// Host-time split of one shard worker in a channel-sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Shard (worker thread) index.
    pub shard: u32,
    /// Channel lanes this shard owned.
    pub lanes: u32,
    /// Host nanoseconds ticking lanes (epoch work).
    pub busy_ns: u64,
    /// Host nanoseconds waiting for the next epoch command (idle at
    /// the barrier while other shards or the SM phase still ran).
    pub wait_ns: u64,
}

/// A self-profile of one simulator run: where host wall-time went per
/// component, how effective the idle/sleep memos were, and how evenly
/// load spread across channels.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimProfile {
    /// Simulated cycles covered by the profile.
    pub cycles: u64,
    /// Host nanoseconds for the whole instrumented run.
    pub host_ns_total: u64,
    /// Host nanoseconds attributed per component, in a fixed emission
    /// order (`sm`, `l1`, `xbar`, `l2`, `mc`, `dram`, `flush`,
    /// `idle_probe`, `other`). A vec of pairs rather than a map so JSON
    /// key order is deterministic.
    pub components: Vec<(String, u64)>,
    /// Idle fast-forward jumps taken.
    pub idle_jumps: u64,
    /// Simulated cycles skipped by idle fast-forward.
    pub idle_cycles_skipped: u64,
    /// Distribution of idle fast-forward span lengths, in cycles.
    pub idle_spans: Histogram,
    /// Per-SM sleep memo effectiveness (hit = SM tick skipped).
    pub sm_sleep: MemoStats,
    /// FR-FCFS scan-sleep memo effectiveness (hit = queue scan skipped),
    /// summed over channels.
    pub scan_memo: MemoStats,
    /// Window entries examined per performed first-ready scan, summed
    /// over channels.
    pub scan_depth: Histogram,
    /// Per-channel load table (the shard-balance evidence for
    /// ROADMAP item 1).
    pub channels: Vec<ChannelLoad>,
    /// Per-shard host-time split when the run used the channel-sharded
    /// engine; empty for single-threaded runs (and absent from their
    /// serialized profiles, keeping them byte-compatible).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shards: Vec<ShardLoad>,
    /// Epochs executed by the sharded prologue (0 when unsharded).
    #[serde(default, skip_serializing_if = "shard_field_is_zero")]
    pub shard_epochs: u64,
    /// Host nanoseconds the main thread spent blocked at shard epoch
    /// barriers waiting on the slowest lane.
    #[serde(default, skip_serializing_if = "shard_field_is_zero")]
    pub shard_sm_wait_ns: u64,
}

/// `skip_serializing_if` helper for the shard-only profile fields.
fn shard_field_is_zero(v: &u64) -> bool {
    *v == 0
}

impl SimProfile {
    /// Adds `ns` to the named component bucket (appending it if new).
    pub fn add_component_ns(&mut self, name: &str, ns: u64) {
        if let Some((_, total)) = self.components.iter_mut().find(|(n, _)| n == name) {
            *total = total.saturating_add(ns);
        } else {
            self.components.push((name.to_string(), ns));
        }
    }

    /// Host nanoseconds attributed to `name` (0 if absent).
    pub fn component_ns(&self, name: &str) -> u64 {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Busy-cycle imbalance across channels: max/mean of
    /// [`ChannelLoad::busy_cycles`]. 1.0 is perfectly balanced; returns
    /// 1.0 when there are no channels or no busy cycles at all.
    pub fn busy_imbalance(&self) -> f64 {
        imbalance(self.channels.iter().map(|c| c.busy_cycles))
    }

    /// Request-count imbalance across channels: max/mean of
    /// [`ChannelLoad::requests`].
    pub fn request_imbalance(&self) -> f64 {
        imbalance(self.channels.iter().map(ChannelLoad::requests))
    }

    /// Shard load imbalance: max/mean of per-shard busy time. 1.0 when
    /// perfectly balanced (or when the run was not sharded); large
    /// values mean the epoch barrier waits on one hot lane.
    pub fn shard_imbalance(&self) -> f64 {
        imbalance(self.shards.iter().map(|s| s.busy_ns))
    }
}

/// max/mean over a sequence (1.0 for empty or all-zero input).
fn imbalance(values: impl Iterator<Item = u64>) -> f64 {
    let mut n = 0u64;
    let mut sum = 0u64;
    let mut max = 0u64;
    for v in values {
        n += 1;
        sum = sum.saturating_add(v);
        max = max.max(v);
    }
    if n == 0 || sum == 0 {
        1.0
    } else {
        max as f64 / (sum as f64 / n as f64)
    }
}

/// One matrix cell's profile inside a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellProfile {
    /// Workload name.
    pub workload: String,
    /// Protection-scheme name.
    pub scheme: String,
    /// The cell's simulator self-profile.
    pub profile: SimProfile,
}

/// Root of `results/profile.json`: one entry per simulated matrix cell.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Format version ([`PROFILE_SCHEMA`]).
    pub schema: u32,
    /// Per-cell profiles in execution order.
    pub cells: Vec<CellProfile>,
}

impl ProfileReport {
    /// Creates an empty report at the current schema version.
    pub fn new() -> Self {
        ProfileReport {
            schema: PROFILE_SCHEMA,
            cells: Vec::new(),
        }
    }

    /// Mean over cells of a per-profile metric (0 when empty).
    fn mean_over_cells(&self, f: impl Fn(&SimProfile) -> f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.cells.iter().map(|c| f(&c.profile)).sum();
        sum / self.cells.len() as f64
    }

    /// Mean SM sleep-memo hit rate across cells.
    pub fn mean_sm_sleep_hit_rate(&self) -> f64 {
        self.mean_over_cells(|p| p.sm_sleep.hit_rate())
    }

    /// Mean FR-FCFS scan-memo hit rate across cells.
    pub fn mean_scan_memo_hit_rate(&self) -> f64 {
        self.mean_over_cells(|p| p.scan_memo.hit_rate())
    }

    /// Mean per-channel busy-cycle imbalance across cells.
    pub fn mean_busy_imbalance(&self) -> f64 {
        self.mean_over_cells(SimProfile::busy_imbalance)
    }

    /// Total host nanoseconds across cells.
    pub fn total_host_ns(&self) -> u64 {
        self.cells
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.profile.host_ns_total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_phase_timer_is_inert() {
        let mut t = PhaseTimer::start(false);
        assert!(!t.is_enabled());
        assert_eq!(t.lap(), 0);
        t.reset();
        assert_eq!(t.lap(), 0);
    }

    #[test]
    fn enabled_phase_timer_laps_monotonically() {
        let mut t = PhaseTimer::start(true);
        assert!(t.is_enabled());
        // Spin a little so at least some time elapses; laps are always
        // representable and never panic.
        let mut acc = 0u64;
        for i in 0..1000u64 {
            acc = acc.wrapping_add(i);
        }
        assert!(acc > 0);
        let a = t.lap();
        let b = t.lap();
        // Durations are non-negative by construction (u64); just check
        // the timer keeps producing values after a reset.
        t.reset();
        let c = t.lap();
        let _ = (a, b, c);
    }

    #[test]
    fn host_stamp_since_saturates_to_zero_backwards() {
        let a = HostStamp::now();
        let b = HostStamp::now();
        // a is not later than b, so the reversed query is 0.
        assert_eq!(a.since(b), 0);
        assert!(b.since(a) < u64::MAX);
    }

    #[test]
    fn memo_stats_rates() {
        let mut m = MemoStats::default();
        assert_eq!(m.hit_rate(), 0.0);
        m.hit();
        m.hit();
        m.hit();
        m.miss();
        assert_eq!(m.total(), 4);
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
        let mut other = MemoStats::default();
        other.hit();
        m.merge(&other);
        assert_eq!(m.hits.get(), 4);
    }

    #[test]
    fn imbalance_of_uniform_load_is_one() {
        let mut p = SimProfile::default();
        for ch in 0..4u32 {
            p.channels.push(ChannelLoad {
                channel: ch,
                reads: 100,
                writes: 50,
                busy_cycles: 1000,
                ..Default::default()
            });
        }
        assert!((p.busy_imbalance() - 1.0).abs() < 1e-12);
        assert!((p.request_imbalance() - 1.0).abs() < 1e-12);
        // Skew one channel: imbalance rises above 1.
        p.channels[0].busy_cycles = 4000;
        assert!(p.busy_imbalance() > 1.0);
        // Degenerate cases pin at 1.0.
        assert_eq!(SimProfile::default().busy_imbalance(), 1.0);
    }

    #[test]
    fn component_buckets_accumulate() {
        let mut p = SimProfile::default();
        p.add_component_ns("sm", 10);
        p.add_component_ns("l2", 5);
        p.add_component_ns("sm", u64::MAX);
        assert_eq!(p.component_ns("sm"), u64::MAX);
        assert_eq!(p.component_ns("l2"), 5);
        assert_eq!(p.component_ns("nope"), 0);
        assert_eq!(p.components.len(), 2);
    }

    #[test]
    fn profile_report_serde_round_trip() {
        let mut report = ProfileReport::new();
        let mut profile = SimProfile {
            cycles: 1234,
            host_ns_total: 99_000,
            idle_jumps: 3,
            idle_cycles_skipped: 700,
            ..Default::default()
        };
        profile.add_component_ns("sm", 40_000);
        profile.add_component_ns("dram", 9_000);
        profile.idle_spans.record(233);
        profile.sm_sleep.hit();
        profile.sm_sleep.miss();
        profile.scan_memo.hit();
        profile.scan_depth.record(4);
        profile.channels.push(ChannelLoad {
            channel: 0,
            reads: 10,
            writes: 2,
            busy_cycles: 55,
            row_hits: 7,
            row_misses: 5,
            host_ns: 12_000,
        });
        report.cells.push(CellProfile {
            workload: "vecadd".into(),
            scheme: "cachecraft".into(),
            profile,
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(back.schema, PROFILE_SCHEMA);
        assert!(back.mean_sm_sleep_hit_rate() > 0.0);
        assert_eq!(back.total_host_ns(), 99_000);
    }
}
