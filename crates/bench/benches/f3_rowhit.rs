//! F3 bench: reserved-region vs row-colocated ECC placement (C1).

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::MonteCarlo); // the row-locality-bound case
    let mut g = c.benchmark_group("f3_rowhit");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("reserved-region", |b| {
        b.iter(|| run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace))
    });
    g.bench_function("colocated", |b| {
        b.iter(|| {
            run_scheme(
                &cfg,
                SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()),
                &trace,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
