//! Hot-path micro benches: the three paths the cycle loop spends its
//! time in — the FR-FCFS issue scan in the memory controller, the L2
//! slice lookup pipeline, and a whole-kernel tiny run (the end-to-end
//! canary `scripts/bench_smoke` runs in CI).

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::factory::{run_scheme, run_scheme_exec, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_sim::dram::MapOrder;
use ccraft_sim::mem_ctrl::{DramRequest, DramTag, MemCtrl};
use ccraft_sim::msg::L2Request;
use ccraft_sim::protection::{ChannelInterleave, NoProtection, ProtectionScheme};
use ccraft_sim::types::{AccessKind, PhysLoc, SmId, TrafficClass};
use ccraft_sim::ExecConfig;
use ccraft_sim::{l2::L2Slice, types::Cycle};
use ccraft_telemetry::TelemetryConfig;
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

/// Transactions pushed through the memory controller per iteration.
const MC_REQS: u64 = 4096;
/// Read accesses pushed through the L2 slice per iteration.
const L2_ACCESSES: u64 = 4096;
/// Distinct atoms the L2 bench cycles over (fits in the tiny slice, so
/// steady state is lookup-hit dominated).
const L2_FOOTPRINT: u64 = 256;

/// Drains a mixed row-hit / row-conflict read stream through one memory
/// controller: exercises `pick_and_issue` (the FR-FCFS scan) plus the
/// completion pop path.
fn mc_issue_drain(cfg: &GpuConfig) -> u64 {
    let mut mc = MemCtrl::new(&cfg.mem, MapOrder::RoBaCo);
    let mut pushed = 0u64;
    let mut done = 0u64;
    let mut now: Cycle = 0;
    while done < MC_REQS {
        while pushed < MC_REQS && mc.can_accept_read() {
            // Alternate a streaming run with a large stride so the queue
            // holds both row hits and conflicts — the scan has real work.
            let atom = if pushed.is_multiple_of(2) {
                pushed / 2
            } else {
                (pushed / 2) * 977 % (MC_REQS * 8)
            };
            mc.push(
                DramRequest {
                    atom,
                    class: TrafficClass::DataRead,
                    tag: DramTag::DemandData { mshr: 0 },
                },
                now,
            );
            pushed += 1;
        }
        mc.tick(now);
        done += mc.pop_completions(now).len() as u64;
        now += 1;
    }
    now
}

/// Streams reads over a small footprint through one L2 slice: after the
/// first pass everything hits, so the timed region is dominated by the
/// lookup path (tag match + MSHR map probe).
fn l2_lookup_stream(cfg: &GpuConfig, scheme: &mut dyn ProtectionScheme) -> u64 {
    let mut slice = L2Slice::new(cfg, 0, MapOrder::RoBaCo, 0);
    let mut resp_buf = Vec::new();
    let mut pushed = 0u64;
    let mut got = 0u64;
    let mut now: Cycle = 0;
    while got < L2_ACCESSES {
        while pushed < L2_ACCESSES && slice.can_accept() {
            slice.push(L2Request {
                loc: PhysLoc::new(0, pushed % L2_FOOTPRINT),
                kind: AccessKind::Read,
                src: SmId(0),
                l1_mshr: 0,
            });
            pushed += 1;
        }
        slice.tick(scheme, now);
        slice.pop_responses_into(now, &mut resp_buf);
        got += resp_buf.len() as u64;
        now += 1;
    }
    now
}

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();

    let mut g = c.benchmark_group("hot_mem_ctrl");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("fr_fcfs_issue_4k_reads", |b| {
        b.iter(|| mc_issue_drain(&cfg))
    });
    g.finish();

    let mut g = c.benchmark_group("hot_l2_lookup");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("read_stream_4k_hits", |b| {
        b.iter(|| {
            let mut scheme = NoProtection::new(ChannelInterleave::new(
                cfg.mem.channels,
                cfg.mem.interleave_atoms,
            ));
            l2_lookup_stream(&cfg, &mut scheme)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("hot_whole_kernel");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let trace = bench_trace(Workload::VecAdd);
    for kind in [
        SchemeKind::NoProtection,
        SchemeKind::CacheCraft(ccraft_core::CacheCraftConfig::for_machine(&cfg)),
    ] {
        g.bench_with_input(
            criterion::BenchmarkId::new("tiny_vecadd", kind.name()),
            &kind,
            |b, &kind| b.iter(|| run_scheme(&cfg, kind, &trace)),
        );
    }
    g.finish();

    // Channel-sharded execution sweep: the same whole-kernel run on the
    // 8-channel GDDR6 machine at 1/4/8 sim threads. Statistics are
    // bit-identical across the sweep (asserted below); only wall time
    // moves, which is exactly what this group measures.
    let wide_cfg = GpuConfig::gddr6();
    let wide_trace = bench_trace(Workload::Triad);
    let kind = SchemeKind::CacheCraft(ccraft_core::CacheCraftConfig::for_machine(&wide_cfg));
    let baseline = run_scheme(&wide_cfg, kind, &wide_trace);
    let mut g = c.benchmark_group("hot_sim_threads");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for sim_threads in [1u32, 4, 8] {
        let s = run_scheme_exec(
            &wide_cfg,
            kind,
            &wide_trace,
            &TelemetryConfig::disabled(),
            None,
            false,
            &ExecConfig { sim_threads },
        )
        .stats;
        assert_eq!(baseline, s, "sharded run diverged at {sim_threads} threads");
        g.bench_with_input(
            criterion::BenchmarkId::new("gddr6_triad_cachecraft", sim_threads),
            &sim_threads,
            |b, &sim_threads| {
                b.iter(|| {
                    run_scheme_exec(
                        &wide_cfg,
                        kind,
                        &wide_trace,
                        &TelemetryConfig::disabled(),
                        None,
                        false,
                        &ExecConfig { sim_threads },
                    )
                    .stats
                })
            },
        );
    }
    g.finish();

    // Coarse perf canary for CI logs: simulated cycles per wall second on
    // the whole-kernel path.
    let start = Instant::now();
    let stats = run_scheme(&cfg, SchemeKind::NoProtection, &trace);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "whole_kernel tiny_vecadd: {} sim cycles in {:.3}s = {:.0} cycles/sec",
        stats.cycles,
        secs,
        stats.cycles as f64 / secs
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
