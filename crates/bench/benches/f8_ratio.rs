//! F8 bench: ECC coverage-ratio sensitivity.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::Triad);
    let mut g = c.benchmark_group("f8_coverage_ratio");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for coverage in [8u32, 16, 32] {
        g.bench_with_input(
            BenchmarkId::new("ecc-cache", format!("1to{coverage}")),
            &coverage,
            |b, &coverage| {
                b.iter(|| {
                    run_scheme(
                        &cfg,
                        SchemeKind::EccCache {
                            coverage,
                            capacity_per_mc: 4 << 10,
                        },
                        &trace,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
