//! F1/F2 bench: ECC-off vs naive inline ECC on the streaming archetype.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::VecAdd);
    let mut g = c.benchmark_group("f1_motivation");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("ecc-off", |b| {
        b.iter(|| run_scheme(&cfg, SchemeKind::NoProtection, &trace))
    });
    g.bench_function("inline-naive", |b| {
        b.iter(|| run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
