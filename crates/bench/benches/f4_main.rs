//! F4/F5 bench: the four headline schemes on a stream and an irregular
//! kernel.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("f4_main_result");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for w in [Workload::VecAdd, Workload::Spmv] {
        let trace = bench_trace(w);
        for kind in SchemeKind::headline(&cfg) {
            g.bench_with_input(
                BenchmarkId::new(kind.name(), w.name()),
                &kind,
                |b, &kind| b.iter(|| run_scheme(&cfg, kind, &trace)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
