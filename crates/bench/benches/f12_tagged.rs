//! F12 bench: implicit-memory-tagging codec throughput (the zero-overhead
//! claim is about DRAM traffic; this shows the on-chip decode cost).

use ccraft_ecc::tagged::TaggedSecDed;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f12_tagged");
    g.sample_size(30).measurement_time(Duration::from_secs(3));
    let codec = TaggedSecDed::new(4).unwrap();
    let data = *b"pointers";
    let check = codec.encode(&data, 0x9);
    g.throughput(Throughput::Bytes(8));
    g.bench_function("encode-tagged", |b| {
        b.iter(|| codec.encode(std::hint::black_box(&data), 0x9))
    });
    g.bench_function("decode-match", |b| {
        b.iter(|| {
            let mut d = data;
            codec.decode(std::hint::black_box(&mut d), &check, 0x9)
        })
    });
    g.bench_function("decode-mismatch", |b| {
        b.iter(|| {
            let mut d = data;
            codec.decode(std::hint::black_box(&mut d), &check, 0x3)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
