//! F10 bench: ECC-structure capacity sweep.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::Histogram);
    let mut g = c.benchmark_group("f10_ecc_capacity");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for kib in [1u64, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("ecc-cache", format!("{kib}K")),
            &kib,
            |b, &kib| {
                b.iter(|| {
                    run_scheme(
                        &cfg,
                        SchemeKind::EccCache {
                            coverage: 8,
                            capacity_per_mc: kib << 10,
                        },
                        &trace,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
