//! F7 bench: CacheCraft ablation variants.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::Saxpy);
    let variants: Vec<(&str, CacheCraftConfig)> = vec![
        ("c1", CacheCraftConfig::colocate_only()),
        (
            "c2",
            CacheCraftConfig {
                fragment_bytes_per_slice: 2 << 10,
                ..CacheCraftConfig::fragments_only()
            },
        ),
        ("c3", CacheCraftConfig::reconstruct_only()),
        ("full", CacheCraftConfig::for_machine(&cfg)),
    ];
    let mut g = c.benchmark_group("f7_ablation");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (name, cc) in variants {
        g.bench_function(name, |b| {
            b.iter(|| run_scheme(&cfg, SchemeKind::CacheCraft(cc), &trace))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
