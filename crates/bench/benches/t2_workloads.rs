//! T2 bench: workload trace-generation throughput (one bench per kernel
//! archetype family).

use ccraft_workloads::{SizeClass, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_workload_generation");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for w in [
        Workload::VecAdd,
        Workload::Gemm,
        Workload::Transpose,
        Workload::Spmv,
        Workload::MonteCarlo,
    ] {
        g.bench_function(w.name(), |b| {
            b.iter(|| w.generate(SizeClass::Tiny, std::hint::black_box(7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
