//! F11 bench: channel-count scaling.

use ccraft_bench::bench_trace;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let trace = bench_trace(Workload::VecAdd);
    let mut g = c.benchmark_group("f11_channels");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for channels in [1u16, 2, 4] {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.channels = channels;
        cfg.validate().unwrap();
        g.bench_with_input(BenchmarkId::new("naive", channels), &cfg, |b, cfg| {
            b.iter(|| run_scheme(cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
