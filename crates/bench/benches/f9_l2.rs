//! F9 bench: L2 capacity sensitivity.

use ccraft_bench::bench_trace;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_sim::config::GpuConfig;
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let trace = bench_trace(Workload::Stencil2D);
    let mut g = c.benchmark_group("f9_l2_capacity");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for kib in [8u64, 16, 32] {
        let mut cfg = GpuConfig::tiny();
        cfg.l2.capacity_bytes = kib << 10;
        cfg.validate().unwrap();
        g.bench_with_input(
            BenchmarkId::new("naive", format!("{kib}K")),
            &cfg,
            |b, cfg| b.iter(|| run_scheme(cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
