//! F6 bench: dedicated ECC cache vs CacheCraft fragment store.

use ccraft_bench::{bench_cfg, bench_trace};
use ccraft_core::cachecraft::CacheCraftConfig;
use ccraft_core::factory::{run_scheme, SchemeKind};
use ccraft_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let trace = bench_trace(Workload::Spmv);
    let mut g = c.benchmark_group("f6_ecchit");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("dedicated-16k", |b| {
        b.iter(|| {
            run_scheme(
                &cfg,
                SchemeKind::EccCache {
                    coverage: 8,
                    capacity_per_mc: 16 << 10,
                },
                &trace,
            )
        })
    });
    g.bench_function("fragments", |b| {
        b.iter(|| {
            run_scheme(
                &cfg,
                SchemeKind::CacheCraft(CacheCraftConfig {
                    reconstruct: false,
                    fragment_bytes_per_slice: 2 << 10, // scaled to the tiny L2
                    ..CacheCraftConfig::default()
                }),
                &trace,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
