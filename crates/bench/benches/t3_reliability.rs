//! T3 bench: codec encode/decode throughput and fault-injection campaign
//! rate.

use ccraft_core::reliability::{Campaign, CodecKind};
use ccraft_ecc::code::Codec;
use ccraft_ecc::inject::ErrorPattern;
use ccraft_ecc::rs::ReedSolomon;
use ccraft_ecc::secded::SecDed64;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_codecs");
    g.sample_size(30).measurement_time(Duration::from_secs(3));
    let secded = SecDed64::new();
    let word = *b"12345678";
    g.throughput(Throughput::Bytes(8));
    g.bench_function("secded64-encode", |b| {
        b.iter(|| secded.encode(std::hint::black_box(&word)))
    });
    let check = secded.encode(&word);
    g.bench_function("secded64-decode-clean", |b| {
        b.iter(|| {
            let mut d = word;
            secded.decode(std::hint::black_box(&mut d), &check)
        })
    });
    let rs = ReedSolomon::new(36, 32).unwrap();
    let data: Vec<u8> = (0..32).collect();
    g.throughput(Throughput::Bytes(32));
    g.bench_function("rs36_32-encode", |b| {
        b.iter(|| rs.encode(std::hint::black_box(&data)))
    });
    let rcheck = rs.encode(&data);
    g.bench_function("rs36_32-decode-2err", |b| {
        b.iter(|| {
            let mut d = data.clone();
            d[3] ^= 0xFF;
            d[17] ^= 0x42;
            rs.decode(std::hint::black_box(&mut d), &rcheck)
        })
    });
    g.throughput(Throughput::Elements(200));
    g.bench_function("campaign-200-trials", |b| {
        b.iter(|| {
            Campaign {
                codec: CodecKind::Rs36_32,
                pattern: ErrorPattern::SymbolError,
                trials: 200,
                seed: 1,
            }
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
