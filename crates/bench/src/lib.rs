//! # ccraft-bench — Criterion benchmark harness
//!
//! One benchmark group per table/figure of the reconstructed evaluation
//! (DESIGN.md §6), in `benches/`. The benches run the same simulations as
//! the `exp-*` binaries but at `SizeClass::Tiny` so Criterion can iterate;
//! the *relative* timings across schemes mirror the full-size experiments.
//! Shared fixtures live here.

#![warn(missing_docs)]

use ccraft_sim::config::GpuConfig;
use ccraft_sim::trace::KernelTrace;
use ccraft_workloads::{SizeClass, Workload};

/// The machine used by all benches: the tiny preset (simulations complete
/// in milliseconds, keeping Criterion iteration counts reasonable).
pub fn bench_cfg() -> GpuConfig {
    GpuConfig::tiny()
}

/// A pre-generated tiny trace for `workload` (generation is excluded from
/// the timed region).
pub fn bench_trace(workload: Workload) -> KernelTrace {
    workload.generate(SizeClass::Tiny, 0xBE7C)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_usable() {
        let cfg = bench_cfg();
        cfg.validate().unwrap();
        let t = bench_trace(Workload::VecAdd);
        assert!(t.total_ops() > 0);
        assert!(t.warps().len() <= cfg.core.sms as usize * cfg.core.warps_per_sm as usize);
    }
}
