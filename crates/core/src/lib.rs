//! # ccraft-core — CacheCraft and its baselines
//!
//! The contribution crate of the reproduction: memory-protection schemes
//! plugged into the [`ccraft-sim`](ccraft_sim) GPU simulator, the
//! functional reliability pipeline over the [`ccraft-ecc`](ccraft_ecc)
//! codecs, and on-chip storage accounting.
//!
//! ## Schemes
//!
//! | Scheme | Module | What it models |
//! |--------|--------|----------------|
//! | `no-protection` | [`ccraft_sim::protection::NoProtection`] | ECC off (upper bound) |
//! | `inline-naive`  | [`naive`] | inline ECC with no on-chip ECC state |
//! | `ecc-cache`     | [`ecc_cache`] | dedicated per-MC ECC cache (industry practice) |
//! | `cachecraft`    | [`cachecraft`] | reconstructed caching (C1 co-location, C2 fragment store, C3 reconstruction + coalescing) |
//!
//! ## Quick start
//!
//! ```
//! use ccraft_core::factory::{run_scheme, SchemeKind};
//! use ccraft_sim::config::GpuConfig;
//! use ccraft_workloads::{SizeClass, Workload};
//!
//! let cfg = GpuConfig::tiny();
//! let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
//! let baseline = run_scheme(&cfg, SchemeKind::NoProtection, &trace);
//! let craft = run_scheme(
//!     &cfg,
//!     SchemeKind::CacheCraft(ccraft_core::cachecraft::CacheCraftConfig::for_machine(&cfg)),
//!     &trace,
//! );
//! // Normalized performance: CacheCraft relative to ECC-off.
//! let normalized = baseline.exec_cycles as f64 / craft.exec_cycles as f64;
//! assert!(normalized > 0.0);
//! ```
// Library crates must not abort the process on recoverable conditions:
// panicking escapes are denied outside tests, and the few justified
// invariant panics carry scoped `#[allow]`s with a safety comment.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cachecraft;
pub mod ecc_cache;
pub mod factory;
pub mod frugal;
pub mod inline_map;
pub mod naive;
pub mod reliability;
pub mod storage;

pub use cachecraft::{CacheCraft, CacheCraftConfig};
pub use ecc_cache::EccCache;
pub use factory::{
    run_scheme, run_scheme_instrumented, run_scheme_profiled, run_scheme_with_telemetry, SchemeKind,
};
pub use frugal::CompressedInline;
pub use naive::InlineNaive;
