//! Compression-backed inline ECC (Frugal-ECC-style baseline).
//!
//! An alternative way to hide inline-ECC traffic, following Kim et al.'s
//! Frugal ECC (SC'15) and related compressed-protection designs: compress
//! each 32-byte atom by at least the check-bit budget so data *and* its
//! ECC fit in one DRAM transaction. Compressible atoms then pay **zero**
//! extra traffic in either direction; incompressible atoms spill to an
//! exception region and pay like naive inline ECC (an extra read per
//! fill, a read-modify-write per write-back).
//!
//! Real compressibility depends on data values, which a timing trace does
//! not carry; we model it as a deterministic per-atom Bernoulli draw with
//! configurable probability, matching the coverage rates the Frugal ECC
//! paper reports for its coverage-oriented compressor (84–100 % across
//! SPEC/SPLASH; GPU data is less compressible, so the evaluation sweeps
//! the rate). DESIGN.md records this substitution.

use crate::inline_map::InlineMap;
use ccraft_ecc::layout::EccPlacement;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::protection::{
    ChannelScheme, FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan,
};
use ccraft_sim::types::{Cycle, LogicalAtom, PhysLoc};

/// Deterministic per-atom compressibility draw (splitmix64 hash), shared
/// by the whole-scheme and per-channel faces so they agree atom for atom.
fn compressible_draw(atom: u64, compress_pct: u8) -> bool {
    let mut z = atom.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 100) < compress_pct as u64
}

/// The compression-backed inline-ECC scheme.
#[derive(Debug)]
pub struct CompressedInline {
    map: InlineMap,
    /// Percentage (0–100) of atoms that compress below 32 - check bytes.
    compress_pct: u8,
    stats: ProtectionStats,
}

impl CompressedInline {
    /// Builds the scheme with the given compressibility percentage.
    ///
    /// # Panics
    ///
    /// Panics if `compress_pct > 100` or the machine geometry cannot host
    /// the exception region.
    pub fn new(cfg: &GpuConfig, coverage: u32, compress_pct: u8) -> Self {
        assert!(compress_pct <= 100, "compressibility is a percentage");
        CompressedInline {
            // The exception region reuses the reserved-region layout: one
            // exception atom per `coverage` data atoms, same as ECC.
            map: InlineMap::new(cfg, EccPlacement::ReservedRegion, coverage),
            compress_pct,
            stats: ProtectionStats::default(),
        }
    }

    /// Deterministic per-atom compressibility draw.
    fn compressible(&self, atom: u64) -> bool {
        compressible_draw(atom, self.compress_pct)
    }

    /// The configured compressibility percentage.
    pub fn compress_pct(&self) -> u8 {
        self.compress_pct
    }
}

impl ProtectionScheme for CompressedInline {
    fn name(&self) -> &str {
        "compressed-inline"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        self.map.map(logical)
    }

    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        if self.compressible(loc.atom) {
            self.stats.ecc_fetch_hits += 1; // counted as an avoided fetch
            FillPlan::none()
        } else {
            self.stats.ecc_demand_fetches += 1;
            FillPlan {
                ecc_fetches: vec![self.map.ecc_atom(loc)],
            }
        }
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        if self.compressible(loc.atom) {
            self.stats.absorbed_writebacks += 1;
            WritebackPlan::none()
        } else {
            self.stats.rmw_writebacks += 1;
            let exc = self.map.ecc_atom(loc);
            WritebackPlan {
                ecc_reads: vec![exc],
                ecc_writes: vec![exc],
            }
        }
    }

    fn drain_ecc_writes(&mut self, _channel: u16, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn flush(&mut self) {}

    fn is_drained(&self) -> bool {
        true
    }

    fn fault_codec(&self) -> ccraft_sim::faults::ProtectionCodec {
        // Compressed layouts still decode SEC-DED codewords.
        ccraft_sim::faults::ProtectionCodec::SecDed64
    }

    fn stats(&self) -> ProtectionStats {
        self.stats
    }

    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        // No buffered state: each channel object carries `Copy` replicas
        // of the map and rate plus fresh counters, merged back into
        // `self.stats` at attach so totals match a single-threaded run.
        Some(
            (0..self.map.channels())
                .map(|_| {
                    Box::new(CompressedInlineChannel {
                        map: self.map,
                        compress_pct: self.compress_pct,
                        stats: ProtectionStats::default(),
                    }) as Box<dyn ChannelScheme>
                })
                .collect(),
        )
    }

    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        debug_assert_eq!(channels.len(), self.map.channels() as usize);
        for c in channels {
            match c.into_any().downcast::<CompressedInlineChannel>() {
                Ok(c) => self.stats.merge(&c.stats),
                // The boxes a scheme re-attaches are the ones its own
                // detach produced; anything else is an engine bug.
                Err(_) => unreachable!("foreign channel object at attach"),
            }
        }
    }
}

/// The per-channel face of [`CompressedInline`]: the same deterministic
/// draw and traffic policy, counting into channel-local stats.
#[derive(Debug)]
struct CompressedInlineChannel {
    map: InlineMap,
    compress_pct: u8,
    stats: ProtectionStats,
}

impl ChannelScheme for CompressedInlineChannel {
    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        if compressible_draw(loc.atom, self.compress_pct) {
            self.stats.ecc_fetch_hits += 1; // counted as an avoided fetch
            FillPlan::none()
        } else {
            self.stats.ecc_demand_fetches += 1;
            FillPlan {
                ecc_fetches: vec![self.map.ecc_atom(loc)],
            }
        }
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        if compressible_draw(loc.atom, self.compress_pct) {
            self.stats.absorbed_writebacks += 1;
            WritebackPlan::none()
        } else {
            self.stats.rmw_writebacks += 1;
            let exc = self.map.ecc_atom(loc);
            WritebackPlan {
                ecc_reads: vec![exc],
                ecc_writes: vec![exc],
            }
        }
    }

    fn drain_ecc_writes(&mut self, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(pct: u8) -> CompressedInline {
        CompressedInline::new(&GpuConfig::tiny(), 8, pct)
    }

    #[test]
    fn compressibility_rate_matches_configuration() {
        for pct in [0u8, 30, 70, 100] {
            let s = scheme(pct);
            let hits = (0..100_000u64).filter(|&a| s.compressible(a)).count();
            let rate = hits as f64 / 100_000.0;
            assert!(
                (rate - pct as f64 / 100.0).abs() < 0.01,
                "pct {pct}: measured {rate}"
            );
        }
    }

    #[test]
    fn compressible_atoms_pay_nothing() {
        let mut s = scheme(100);
        let loc = s.map(LogicalAtom(7));
        assert_eq!(s.demand_fill(loc, 0), FillPlan::none());
        let mut res = |_: u64| false;
        assert_eq!(s.writeback(loc, 0, &mut res), WritebackPlan::none());
        assert_eq!(s.stats().ecc_demand_fetches, 0);
        assert_eq!(s.stats().rmw_writebacks, 0);
    }

    #[test]
    fn incompressible_atoms_pay_like_naive() {
        let mut s = scheme(0);
        let loc = s.map(LogicalAtom(7));
        assert_eq!(s.demand_fill(loc, 0).ecc_fetches.len(), 1);
        let mut res = |_: u64| true; // residency is irrelevant here
        let plan = s.writeback(loc, 0, &mut res);
        assert_eq!(plan.ecc_reads.len(), 1);
        assert_eq!(plan.ecc_writes.len(), 1);
    }

    #[test]
    fn draw_is_deterministic_and_mixed() {
        let s = scheme(50);
        let a: Vec<bool> = (0..64).map(|i| s.compressible(i)).collect();
        let b: Vec<bool> = (0..64).map(|i| s.compressible(i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn always_drained() {
        let mut s = scheme(50);
        assert!(s.is_drained());
        s.flush();
        assert!(s.drain_ecc_writes(0, 0, 16).is_empty());
        assert_eq!(s.l2_tax_bytes(), 0);
        assert_eq!(s.name(), "compressed-inline");
    }
}
