//! Shared machinery for inline-ECC protection schemes: the address mapping
//! pipeline and the on-chip ECC store used by the ECC-cache baseline and
//! CacheCraft's fragment store.

use ccraft_ecc::layout::{EccPlacement, InlineLayout};
use ccraft_sim::cache::SectorCache;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::fxmap::FxHashSet;
use ccraft_sim::protection::ChannelInterleave;
use ccraft_sim::types::{LogicalAtom, PhysLoc};
use std::collections::VecDeque;

/// The logical→physical pipeline of an inline-ECC GPU:
/// channel interleave first, then the per-channel inline layout (identical
/// across channels, as in real memory partitions).
#[derive(Debug, Clone, Copy)]
pub struct InlineMap {
    interleave: ChannelInterleave,
    layout: InlineLayout,
}

impl InlineMap {
    /// Builds the map for a machine, with ECC `coverage` data atoms per
    /// ECC atom and the given placement.
    ///
    /// # Panics
    ///
    /// Panics if the layout parameters are inconsistent with the machine
    /// geometry (see [`InlineLayout::new`]).
    pub fn new(cfg: &GpuConfig, placement: EccPlacement, coverage: u32) -> Self {
        let interleave = ChannelInterleave::new(cfg.mem.channels, cfg.mem.interleave_atoms);
        let layout = InlineLayout::new(placement, coverage, cfg.mem.atoms_per_channel());
        InlineMap { interleave, layout }
    }

    /// The per-channel layout.
    pub fn layout(&self) -> &InlineLayout {
        &self.layout
    }

    /// Maps a software-visible atom to its physical location.
    pub fn map(&self, logical: LogicalAtom) -> PhysLoc {
        let (channel, local) = self.interleave.split(logical);
        PhysLoc::new(channel, self.layout.logical_to_physical(local))
    }

    /// The channel-local ECC atom protecting the given physical data atom.
    pub fn ecc_atom(&self, loc: PhysLoc) -> u64 {
        self.layout.ecc_atom_for(loc.atom)
    }

    /// The physical data atoms sharing `loc`'s ECC atom, as
    /// `(first, count)` in channel-local physical space.
    pub fn ecc_group(&self, loc: PhysLoc) -> (u64, u64) {
        self.layout.covered_data_atoms(self.ecc_atom(loc))
    }
}

/// An on-chip store of ECC atoms (a dedicated ECC cache or CacheCraft's
/// repurposed-L2 fragment store): set-associative at ECC-atom granularity,
/// with in-flight-fetch merging and a dirty-eviction write queue.
#[derive(Debug)]
pub struct EccStore {
    caches: Vec<SectorCache>,
    inflight: Vec<FxHashSet<u64>>,
    pending_writes: Vec<VecDeque<u64>>,
}

/// Outcome of probing the store on a demand fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreProbe {
    /// The ECC atom is resident: no DRAM fetch needed.
    Hit,
    /// A fetch for this atom is already in flight: piggyback, no new fetch.
    InFlight,
    /// Not present: fetch required (now registered as in flight).
    Miss,
}

impl EccStore {
    /// Builds a store with `bytes_per_channel` capacity per channel,
    /// `ways`-associative.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (capacity must give a
    /// power-of-two set count).
    pub fn new(channels: u16, bytes_per_channel: u64, ways: u32) -> Self {
        EccStore {
            caches: (0..channels)
                .map(|_| SectorCache::with_capacity_hashed(bytes_per_channel, ways, 1))
                .collect(),
            inflight: (0..channels).map(|_| FxHashSet::default()).collect(),
            pending_writes: (0..channels).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Capacity per channel in bytes.
    pub fn capacity_per_channel(&self) -> u64 {
        self.caches[0].capacity_bytes()
    }

    /// Probes for a demand fill: on a miss the atom is registered as in
    /// flight, so concurrent misses to the same ECC atom fetch once.
    pub fn probe_fill(&mut self, channel: u16, ecc_atom: u64) -> StoreProbe {
        let ch = channel as usize;
        if self.caches[ch].probe(ecc_atom) {
            // Refresh LRU.
            let _ = self.caches[ch].lookup_read(ecc_atom);
            StoreProbe::Hit
        } else if self.inflight[ch].contains(&ecc_atom) {
            StoreProbe::InFlight
        } else {
            self.inflight[ch].insert(ecc_atom);
            StoreProbe::Miss
        }
    }

    /// Installs an ECC atom that arrived from DRAM (clears its in-flight
    /// entry). Dirty evictions join the write queue.
    pub fn install(&mut self, channel: u16, ecc_atom: u64, dirty: bool) {
        let ch = channel as usize;
        self.inflight[ch].remove(&ecc_atom);
        if let Some(ev) = self.caches[ch].fill(ecc_atom, dirty) {
            for atom in ev.dirty_atoms {
                self.pending_writes[ch].push_back(atom);
            }
        }
    }

    /// Attempts to absorb a write-back's ECC update: returns `true` when
    /// the atom is resident (now marked dirty) and no DRAM traffic is
    /// needed.
    pub fn absorb_write(&mut self, channel: u16, ecc_atom: u64) -> bool {
        let ch = channel as usize;
        if self.caches[ch].probe(ecc_atom) {
            let _ = self.caches[ch].lookup_write(ecc_atom);
            true
        } else {
            false
        }
    }

    /// Dirty-eviction (and flush) write queue for `channel`, up to
    /// `budget` atoms.
    pub fn drain_writes(&mut self, channel: u16, budget: usize) -> Vec<u64> {
        let q = &mut self.pending_writes[channel as usize];
        let n = budget.min(q.len());
        q.drain(..n).collect()
    }

    /// Moves every dirty resident atom into the write queue (end of
    /// kernel).
    pub fn flush(&mut self) {
        for ch in 0..self.caches.len() {
            let dirty: Vec<u64> = self.caches[ch]
                .iter_valid()
                .filter(|&(_, d)| d)
                .map(|(a, _)| a)
                .collect();
            for a in dirty {
                self.caches[ch].clean(a);
                self.pending_writes[ch].push_back(a);
            }
        }
    }

    /// `true` when no pending writes remain in any channel.
    pub fn is_drained(&self) -> bool {
        self.pending_writes.iter().all(|q| q.is_empty())
    }

    /// Number of dirty-eviction writes that have been queued but not yet
    /// drained (diagnostics).
    pub fn pending_write_count(&self) -> usize {
        self.pending_writes.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(placement: EccPlacement) -> InlineMap {
        InlineMap::new(&GpuConfig::tiny(), placement, 8)
    }

    #[test]
    fn map_is_injective_across_channels() {
        let m = map(EccPlacement::ReservedRegion);
        let mut seen = ccraft_sim::fxmap::FxHashSet::default();
        for a in 0..50_000u64 {
            let loc = m.map(LogicalAtom(a));
            assert!(seen.insert((loc.channel, loc.atom)), "collision at {a}");
        }
    }

    #[test]
    fn ecc_atom_is_in_same_channel_row_when_colocated() {
        let cfg = GpuConfig::tiny();
        let row_atoms = cfg.mem.row_atoms();
        let m = InlineMap::new(
            &cfg,
            EccPlacement::RowColocated {
                row_atoms: row_atoms as u32,
            },
            8,
        );
        for a in (0..100_000u64).step_by(997) {
            let loc = m.map(LogicalAtom(a));
            let ecc = m.ecc_atom(loc);
            assert_eq!(
                loc.atom / row_atoms,
                ecc / row_atoms,
                "atom {a} ECC in another row"
            );
        }
    }

    #[test]
    fn ecc_group_contains_self() {
        let m = map(EccPlacement::ReservedRegion);
        let loc = m.map(LogicalAtom(1234));
        let (first, count) = m.ecc_group(loc);
        assert!((first..first + count).contains(&loc.atom));
        assert!(count <= 8);
    }

    #[test]
    fn store_probe_transitions() {
        let mut s = EccStore::new(2, 1024, 4);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::Miss);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::InFlight);
        s.install(0, 5, false);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::Hit);
        // Channels are independent.
        assert_eq!(s.probe_fill(1, 5), StoreProbe::Miss);
    }

    #[test]
    fn dirty_eviction_queues_write() {
        // 1024 B, 4-way, atom granularity -> 32 entries total. Installing
        // more dirty atoms than the capacity must evict (set indices are
        // hashed, so overfill the whole store rather than one set).
        let mut s = EccStore::new(1, 1024, 4);
        for i in 0..48u64 {
            s.install(0, i * 8, true);
        }
        assert!(s.pending_write_count() >= 16);
        let w = s.drain_writes(0, 100);
        assert!(w.len() >= 16);
        assert!(s.is_drained());
    }

    #[test]
    fn absorb_write_requires_residency() {
        let mut s = EccStore::new(1, 1024, 4);
        assert!(!s.absorb_write(0, 3));
        s.install(0, 3, false);
        assert!(s.absorb_write(0, 3));
        // Flushing pushes the now-dirty atom to the write queue.
        s.flush();
        assert_eq!(s.drain_writes(0, 10), vec![3]);
        // Flush is idempotent.
        s.flush();
        assert!(s.is_drained());
    }

    #[test]
    fn drain_respects_budget() {
        let mut s = EccStore::new(1, 256, 1); // 8 sets, direct mapped
        for i in 0..8u64 {
            s.install(0, i, true);
        }
        s.flush();
        assert_eq!(s.drain_writes(0, 3).len(), 3);
        assert_eq!(s.drain_writes(0, 100).len(), 5);
    }
}
