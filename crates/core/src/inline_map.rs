//! Shared machinery for inline-ECC protection schemes: the address mapping
//! pipeline and the on-chip ECC store used by the ECC-cache baseline and
//! CacheCraft's fragment store.

use ccraft_ecc::layout::{EccPlacement, InlineLayout};
use ccraft_sim::cache::SectorCache;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::fxmap::FxHashSet;
use ccraft_sim::protection::ChannelInterleave;
use ccraft_sim::types::{LogicalAtom, PhysLoc};
use std::collections::VecDeque;

/// The logical→physical pipeline of an inline-ECC GPU:
/// channel interleave first, then the per-channel inline layout (identical
/// across channels, as in real memory partitions).
#[derive(Debug, Clone, Copy)]
pub struct InlineMap {
    interleave: ChannelInterleave,
    layout: InlineLayout,
}

impl InlineMap {
    /// Builds the map for a machine, with ECC `coverage` data atoms per
    /// ECC atom and the given placement.
    ///
    /// # Panics
    ///
    /// Panics if the layout parameters are inconsistent with the machine
    /// geometry (see [`InlineLayout::new`]).
    pub fn new(cfg: &GpuConfig, placement: EccPlacement, coverage: u32) -> Self {
        let interleave = ChannelInterleave::new(cfg.mem.channels, cfg.mem.interleave_atoms);
        let layout = InlineLayout::new(placement, coverage, cfg.mem.atoms_per_channel());
        InlineMap { interleave, layout }
    }

    /// The per-channel layout.
    pub fn layout(&self) -> &InlineLayout {
        &self.layout
    }

    /// Number of memory channels the map stripes across.
    pub fn channels(&self) -> u16 {
        self.interleave.channels()
    }

    /// Maps a software-visible atom to its physical location.
    pub fn map(&self, logical: LogicalAtom) -> PhysLoc {
        let (channel, local) = self.interleave.split(logical);
        PhysLoc::new(channel, self.layout.logical_to_physical(local))
    }

    /// The channel-local ECC atom protecting the given physical data atom.
    pub fn ecc_atom(&self, loc: PhysLoc) -> u64 {
        self.layout.ecc_atom_for(loc.atom)
    }

    /// The physical data atoms sharing `loc`'s ECC atom, as
    /// `(first, count)` in channel-local physical space.
    pub fn ecc_group(&self, loc: PhysLoc) -> (u64, u64) {
        self.layout.covered_data_atoms(self.ecc_atom(loc))
    }
}

/// An on-chip store of ECC atoms (a dedicated ECC cache or CacheCraft's
/// repurposed-L2 fragment store): set-associative at ECC-atom granularity,
/// with in-flight-fetch merging and a dirty-eviction write queue.
///
/// Internally one independent [`ChannelStore`] per channel; sharded
/// execution detaches those channel stores so each shard worker can own
/// its channel's ECC state (see
/// [`ProtectionScheme::detach_channels`](ccraft_sim::protection::ProtectionScheme::detach_channels)).
#[derive(Debug)]
pub struct EccStore {
    channels: Vec<ChannelStore>,
}

/// One channel's slice of an on-chip ECC store. All state is channel-local,
/// so a detached `ChannelStore` ticks without synchronization.
#[derive(Debug)]
pub struct ChannelStore {
    cache: SectorCache,
    inflight: FxHashSet<u64>,
    pending_writes: VecDeque<u64>,
}

impl ChannelStore {
    /// Builds one channel's store with `bytes` capacity, `ways`-associative.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (capacity must give a power-of-two
    /// set count).
    pub fn new(bytes: u64, ways: u32) -> Self {
        ChannelStore {
            cache: SectorCache::with_capacity_hashed(bytes, ways, 1),
            inflight: FxHashSet::default(),
            pending_writes: VecDeque::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    /// Probes for a demand fill: on a miss the atom is registered as in
    /// flight, so concurrent misses to the same ECC atom fetch once.
    pub fn probe_fill(&mut self, ecc_atom: u64) -> StoreProbe {
        if self.cache.probe(ecc_atom) {
            // Refresh LRU.
            let _ = self.cache.lookup_read(ecc_atom);
            StoreProbe::Hit
        } else if self.inflight.contains(&ecc_atom) {
            StoreProbe::InFlight
        } else {
            self.inflight.insert(ecc_atom);
            StoreProbe::Miss
        }
    }

    /// Installs an ECC atom that arrived from DRAM (clears its in-flight
    /// entry). Dirty evictions join the write queue.
    pub fn install(&mut self, ecc_atom: u64, dirty: bool) {
        self.inflight.remove(&ecc_atom);
        if let Some(ev) = self.cache.fill(ecc_atom, dirty) {
            for atom in ev.dirty_atoms {
                self.pending_writes.push_back(atom);
            }
        }
    }

    /// Attempts to absorb a write-back's ECC update: returns `true` when
    /// the atom is resident (now marked dirty) and no DRAM traffic is
    /// needed.
    pub fn absorb_write(&mut self, ecc_atom: u64) -> bool {
        if self.cache.probe(ecc_atom) {
            let _ = self.cache.lookup_write(ecc_atom);
            true
        } else {
            false
        }
    }

    /// Dirty-eviction (and flush) write queue, up to `budget` atoms.
    pub fn drain_writes(&mut self, budget: usize) -> Vec<u64> {
        let n = budget.min(self.pending_writes.len());
        self.pending_writes.drain(..n).collect()
    }

    /// Moves every dirty resident atom into the write queue (end of
    /// kernel).
    pub fn flush(&mut self) {
        let dirty: Vec<u64> = self
            .cache
            .iter_valid()
            .filter(|&(_, d)| d)
            .map(|(a, _)| a)
            .collect();
        for a in dirty {
            self.cache.clean(a);
            self.pending_writes.push_back(a);
        }
    }

    /// `true` when no pending writes remain.
    pub fn is_drained(&self) -> bool {
        self.pending_writes.is_empty()
    }

    /// Queued-but-undrained dirty-eviction writes (diagnostics).
    pub fn pending_write_count(&self) -> usize {
        self.pending_writes.len()
    }
}

/// Outcome of probing the store on a demand fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreProbe {
    /// The ECC atom is resident: no DRAM fetch needed.
    Hit,
    /// A fetch for this atom is already in flight: piggyback, no new fetch.
    InFlight,
    /// Not present: fetch required (now registered as in flight).
    Miss,
}

impl EccStore {
    /// Builds a store with `bytes_per_channel` capacity per channel,
    /// `ways`-associative.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (capacity must give a
    /// power-of-two set count).
    pub fn new(channels: u16, bytes_per_channel: u64, ways: u32) -> Self {
        EccStore {
            channels: (0..channels)
                .map(|_| ChannelStore::new(bytes_per_channel, ways))
                .collect(),
        }
    }

    /// Capacity per channel in bytes.
    pub fn capacity_per_channel(&self) -> u64 {
        self.channels[0].capacity_bytes()
    }

    /// Probes for a demand fill: on a miss the atom is registered as in
    /// flight, so concurrent misses to the same ECC atom fetch once.
    pub fn probe_fill(&mut self, channel: u16, ecc_atom: u64) -> StoreProbe {
        self.channels[channel as usize].probe_fill(ecc_atom)
    }

    /// Installs an ECC atom that arrived from DRAM (clears its in-flight
    /// entry). Dirty evictions join the write queue.
    pub fn install(&mut self, channel: u16, ecc_atom: u64, dirty: bool) {
        self.channels[channel as usize].install(ecc_atom, dirty)
    }

    /// Attempts to absorb a write-back's ECC update: returns `true` when
    /// the atom is resident (now marked dirty) and no DRAM traffic is
    /// needed.
    pub fn absorb_write(&mut self, channel: u16, ecc_atom: u64) -> bool {
        self.channels[channel as usize].absorb_write(ecc_atom)
    }

    /// Dirty-eviction (and flush) write queue for `channel`, up to
    /// `budget` atoms.
    pub fn drain_writes(&mut self, channel: u16, budget: usize) -> Vec<u64> {
        self.channels[channel as usize].drain_writes(budget)
    }

    /// Moves every dirty resident atom into the write queue (end of
    /// kernel).
    pub fn flush(&mut self) {
        for ch in &mut self.channels {
            ch.flush();
        }
    }

    /// `true` when no pending writes remain in any channel.
    pub fn is_drained(&self) -> bool {
        self.channels.iter().all(|c| c.is_drained())
    }

    /// Number of dirty-eviction writes that have been queued but not yet
    /// drained (diagnostics).
    pub fn pending_write_count(&self) -> usize {
        self.channels.iter().map(|c| c.pending_write_count()).sum()
    }

    /// Moves the per-channel stores out for shard ownership; the store is
    /// empty (and must not be queried) until [`attach`](Self::attach).
    pub fn detach(&mut self) -> Vec<ChannelStore> {
        std::mem::take(&mut self.channels)
    }

    /// Restores channel stores previously produced by
    /// [`detach`](Self::detach), in channel order.
    pub fn attach(&mut self, channels: Vec<ChannelStore>) {
        debug_assert!(self.channels.is_empty(), "attach over live channels");
        self.channels = channels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(placement: EccPlacement) -> InlineMap {
        InlineMap::new(&GpuConfig::tiny(), placement, 8)
    }

    #[test]
    fn map_is_injective_across_channels() {
        let m = map(EccPlacement::ReservedRegion);
        let mut seen = ccraft_sim::fxmap::FxHashSet::default();
        for a in 0..50_000u64 {
            let loc = m.map(LogicalAtom(a));
            assert!(seen.insert((loc.channel, loc.atom)), "collision at {a}");
        }
    }

    #[test]
    fn ecc_atom_is_in_same_channel_row_when_colocated() {
        let cfg = GpuConfig::tiny();
        let row_atoms = cfg.mem.row_atoms();
        let m = InlineMap::new(
            &cfg,
            EccPlacement::RowColocated {
                row_atoms: row_atoms as u32,
            },
            8,
        );
        for a in (0..100_000u64).step_by(997) {
            let loc = m.map(LogicalAtom(a));
            let ecc = m.ecc_atom(loc);
            assert_eq!(
                loc.atom / row_atoms,
                ecc / row_atoms,
                "atom {a} ECC in another row"
            );
        }
    }

    #[test]
    fn ecc_group_contains_self() {
        let m = map(EccPlacement::ReservedRegion);
        let loc = m.map(LogicalAtom(1234));
        let (first, count) = m.ecc_group(loc);
        assert!((first..first + count).contains(&loc.atom));
        assert!(count <= 8);
    }

    #[test]
    fn store_probe_transitions() {
        let mut s = EccStore::new(2, 1024, 4);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::Miss);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::InFlight);
        s.install(0, 5, false);
        assert_eq!(s.probe_fill(0, 5), StoreProbe::Hit);
        // Channels are independent.
        assert_eq!(s.probe_fill(1, 5), StoreProbe::Miss);
    }

    #[test]
    fn dirty_eviction_queues_write() {
        // 1024 B, 4-way, atom granularity -> 32 entries total. Installing
        // more dirty atoms than the capacity must evict (set indices are
        // hashed, so overfill the whole store rather than one set).
        let mut s = EccStore::new(1, 1024, 4);
        for i in 0..48u64 {
            s.install(0, i * 8, true);
        }
        assert!(s.pending_write_count() >= 16);
        let w = s.drain_writes(0, 100);
        assert!(w.len() >= 16);
        assert!(s.is_drained());
    }

    #[test]
    fn absorb_write_requires_residency() {
        let mut s = EccStore::new(1, 1024, 4);
        assert!(!s.absorb_write(0, 3));
        s.install(0, 3, false);
        assert!(s.absorb_write(0, 3));
        // Flushing pushes the now-dirty atom to the write queue.
        s.flush();
        assert_eq!(s.drain_writes(0, 10), vec![3]);
        // Flush is idempotent.
        s.flush();
        assert!(s.is_drained());
    }

    #[test]
    fn drain_respects_budget() {
        let mut s = EccStore::new(1, 256, 1); // 8 sets, direct mapped
        for i in 0..8u64 {
            s.install(0, i, true);
        }
        s.flush();
        assert_eq!(s.drain_writes(0, 3).len(), 3);
        assert_eq!(s.drain_writes(0, 100).len(), 5);
    }
}
