//! Functional reliability pipeline: end-to-end fault-injection campaigns.
//!
//! The timing simulator treats ECC as traffic; this module verifies the
//! *functional* side — that the codecs the schemes rely on actually
//! deliver their protection — by Monte-Carlo injection over the codeword
//! layouts the schemes store in DRAM (experiment T3):
//!
//! * `SecDed64` — four SEC-DED(72,64) words per 32-byte atom (the 12.5 %
//!   inline-ECC budget),
//! * `Rs36_32` — one RS(36,32) symbol codeword per atom (chipkill-class,
//!   same budget),
//! * `Rs18_16` — RS(18,16) per half atom (t=1 symbol),
//! * `Crc32` — detection-only,
//! * `Tagged4` — SEC-DED with a 4-bit implicit memory tag.
//!
//! Every trial encodes random data, injects one error pattern, decodes,
//! and compares against ground truth. Outcomes distinguish **benign**
//! (decoder saw nothing, data intact), **corrected**, **DUE** (detected
//! uncorrectable) and **SDC** (silent data corruption: the decoder
//! believed an outcome whose data is wrong).

use ccraft_ecc::code::{Codec, DecodeOutcome};
use ccraft_ecc::crc::Crc;
use ccraft_ecc::inject::{ErrorPattern, Injector};
use ccraft_ecc::rs::ReedSolomon;
use ccraft_ecc::secded::SecDed64;
use ccraft_ecc::tagged::TaggedSecDed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The codecs evaluated in the reliability table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodecKind {
    /// SEC-DED(72,64): 8 B data + 1 B check per word.
    SecDed64,
    /// RS(36,32): 32 B data + 4 B check, corrects 2 symbols.
    Rs36_32,
    /// RS(18,16): 16 B data + 2 B check, corrects 1 symbol.
    Rs18_16,
    /// CRC-32 over 32 B: detection only.
    Crc32,
    /// SEC-DED(72,64) carrying a 4-bit implicit memory tag.
    Tagged4,
}

impl CodecKind {
    /// All codecs, in report order.
    pub const ALL: [CodecKind; 5] = [
        CodecKind::SecDed64,
        CodecKind::Rs36_32,
        CodecKind::Rs18_16,
        CodecKind::Crc32,
        CodecKind::Tagged4,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::SecDed64 => "SEC-DED(72,64)",
            CodecKind::Rs36_32 => "RS(36,32)",
            CodecKind::Rs18_16 => "RS(18,16)",
            CodecKind::Crc32 => "CRC-32",
            CodecKind::Tagged4 => "Tagged SEC-DED (4b)",
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome classification of one trial, against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialOutcome {
    /// Decoder reported clean and the data is intact (error hit only
    /// redundancy it tolerates silently, or didn't land).
    Benign,
    /// Decoder corrected; data matches ground truth.
    Corrected,
    /// Detected uncorrectable error — data quarantined.
    Due,
    /// Silent data corruption: decoder said usable but data is wrong.
    Sdc,
}

/// Aggregate results of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Benign outcomes.
    pub benign: u64,
    /// Successful corrections.
    pub corrected: u64,
    /// Detected uncorrectable errors.
    pub due: u64,
    /// Silent data corruptions.
    pub sdc: u64,
}

impl CampaignResult {
    /// Fraction of trials that ended usable **and correct**.
    pub fn success_rate(&self) -> f64 {
        (self.benign + self.corrected) as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials that silently corrupted data.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials detected-but-uncorrectable.
    pub fn due_rate(&self) -> f64 {
        self.due as f64 / self.trials.max(1) as f64
    }
}

/// A fault-injection campaign: one codec, one error pattern, many trials.
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Codec under test.
    pub codec: CodecKind,
    /// Error pattern injected each trial.
    pub pattern: ErrorPattern,
    /// Number of trials.
    pub trials: u32,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
}

// The RS parameters here are compile-time constants known to satisfy
// n > k and n <= 255; `new` cannot fail on them.
#[allow(clippy::expect_used)]
fn build_codec(kind: CodecKind) -> Box<dyn Codec> {
    match kind {
        CodecKind::SecDed64 => Box::new(SecDed64::new()),
        CodecKind::Rs36_32 => Box::new(ReedSolomon::new(36, 32).expect("valid params")),
        CodecKind::Rs18_16 => Box::new(ReedSolomon::new(18, 16).expect("valid params")),
        CodecKind::Crc32 => Box::new(Crc::crc32()),
        CodecKind::Tagged4 => unreachable!("tagged codec handled separately"),
    }
}

impl Campaign {
    /// Runs the campaign.
    pub fn run(&self) -> CampaignResult {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let injector = Injector::new(self.pattern);
        let mut result = CampaignResult {
            trials: self.trials as u64,
            ..CampaignResult::default()
        };
        for _ in 0..self.trials {
            let outcome = match self.codec {
                CodecKind::Tagged4 => Self::tagged_trial(&injector, &mut rng),
                kind => {
                    let codec = build_codec(kind);
                    Self::codec_trial(codec.as_ref(), &injector, &mut rng)
                }
            };
            match outcome {
                TrialOutcome::Benign => result.benign += 1,
                TrialOutcome::Corrected => result.corrected += 1,
                TrialOutcome::Due => result.due += 1,
                TrialOutcome::Sdc => result.sdc += 1,
            }
        }
        result
    }

    fn classify(outcome: DecodeOutcome, data_ok: bool) -> TrialOutcome {
        match outcome {
            DecodeOutcome::Clean => {
                if data_ok {
                    TrialOutcome::Benign
                } else {
                    TrialOutcome::Sdc
                }
            }
            DecodeOutcome::Corrected { .. } => {
                if data_ok {
                    TrialOutcome::Corrected
                } else {
                    TrialOutcome::Sdc
                }
            }
            DecodeOutcome::DetectedUncorrectable | DecodeOutcome::TagMismatch => TrialOutcome::Due,
        }
    }

    fn codec_trial<R: Rng>(codec: &dyn Codec, injector: &Injector, rng: &mut R) -> TrialOutcome {
        let k = codec.data_len();
        let original: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
        let check = codec.encode(&original);
        // Inject into the full stored codeword: data ++ check.
        let mut buf = original.clone();
        buf.extend_from_slice(&check);
        let _ = injector.apply(&mut buf, rng);
        let (data_part, check_part) = buf.split_at_mut(k);
        let mut data: Vec<u8> = data_part.to_vec();
        let outcome = codec.decode(&mut data, check_part);
        Self::classify(outcome, data == original)
    }

    // 4-bit tags are a compile-time constant within TaggedSecDed's range.
    #[allow(clippy::expect_used)]
    fn tagged_trial<R: Rng>(injector: &Injector, rng: &mut R) -> TrialOutcome {
        let codec = TaggedSecDed::new(4).expect("4-bit tags fit");
        let tag: u8 = rng.gen_range(0..16);
        let original: [u8; 8] = rng.gen();
        let check = codec.encode(&original, tag);
        let mut buf = original.to_vec();
        buf.extend_from_slice(&check);
        let _ = injector.apply(&mut buf, rng);
        let (data_part, check_part) = buf.split_at_mut(8);
        let mut data = data_part.to_vec();
        let outcome = codec.decode(&mut data, check_part, tag);
        Self::classify(outcome, data == original)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(codec: CodecKind, pattern: ErrorPattern) -> CampaignResult {
        Campaign {
            codec,
            pattern,
            trials: 400,
            seed: 0xCAFE,
        }
        .run()
    }

    #[test]
    fn single_bit_errors_always_corrected_by_secded() {
        let r = run(CodecKind::SecDed64, ErrorPattern::RandomBits { count: 1 });
        assert_eq!(r.corrected + r.benign, r.trials);
        assert_eq!(r.sdc, 0);
        assert!((r.success_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn double_bit_errors_detected_by_secded() {
        let r = run(CodecKind::SecDed64, ErrorPattern::RandomBits { count: 2 });
        assert_eq!(r.sdc, 0, "SEC-DED must never SDC on double errors");
        assert_eq!(r.due, r.trials);
    }

    #[test]
    fn triple_bit_errors_can_escape_secded_but_not_rs() {
        let sec = run(CodecKind::SecDed64, ErrorPattern::RandomBits { count: 3 });
        // SEC-DED mis-corrects many 3-bit patterns.
        assert!(sec.sdc > 0, "expected SDCs from SEC-DED on 3-bit errors");
        // RS(36,32) corrects any 3 bit flips that land in <=2 symbols and
        // detects nearly everything else.
        let rs = run(CodecKind::Rs36_32, ErrorPattern::RandomBits { count: 3 });
        assert!(
            rs.sdc_rate() < sec.sdc_rate() / 4.0,
            "RS {} vs SEC-DED {}",
            rs.sdc_rate(),
            sec.sdc_rate()
        );
    }

    #[test]
    fn chip_errors_corrected_by_symbol_codes_only() {
        let rs = run(CodecKind::Rs36_32, ErrorPattern::SymbolError);
        assert_eq!(rs.sdc, 0);
        assert_eq!(rs.corrected + rs.benign, rs.trials, "{rs:?}");
        let sec = run(CodecKind::SecDed64, ErrorPattern::SymbolError);
        // Whole-symbol errors exceed SEC-DED correction most of the time.
        assert!(sec.due > sec.trials / 3, "{sec:?}");
    }

    #[test]
    fn rs18_corrects_one_symbol_not_two() {
        let one = run(CodecKind::Rs18_16, ErrorPattern::SymbolError);
        assert_eq!(one.sdc, 0);
        assert_eq!(one.corrected + one.benign, one.trials);
        let two = run(CodecKind::Rs18_16, ErrorPattern::RandomBits { count: 16 });
        assert!(two.due > 0);
    }

    #[test]
    fn crc_detects_but_never_corrects() {
        let r = run(CodecKind::Crc32, ErrorPattern::AdjacentBurst { len: 8 });
        assert_eq!(r.corrected, 0);
        assert_eq!(r.sdc, 0, "CRC-32 catches all bursts <= 32 bits");
        assert_eq!(r.due, r.trials);
    }

    #[test]
    fn tagged_codec_still_corrects_single_bits() {
        let r = run(CodecKind::Tagged4, ErrorPattern::RandomBits { count: 1 });
        assert_eq!(r.sdc, 0);
        assert_eq!(r.corrected + r.benign, r.trials);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = run(CodecKind::Rs36_32, ErrorPattern::AdjacentBurst { len: 5 });
        let b = run(CodecKind::Rs36_32, ErrorPattern::AdjacentBurst { len: 5 });
        assert_eq!(a, b);
    }

    #[test]
    fn rates_sum_to_one() {
        let r = run(CodecKind::SecDed64, ErrorPattern::AdjacentBurst { len: 4 });
        let total = r.benign + r.corrected + r.due + r.sdc;
        assert_eq!(total, r.trials);
        assert!((r.success_rate() + r.due_rate() + r.sdc_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn codec_names_nonempty() {
        for k in CodecKind::ALL {
            assert!(!k.name().is_empty());
            assert!(!k.to_string().is_empty());
        }
    }
}
