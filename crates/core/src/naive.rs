//! The naive inline-ECC baseline: every protected access pays for its ECC
//! in DRAM traffic.
//!
//! * Demand fill → one ECC-atom read per data-atom fetch, gating the fill.
//! * Dirty write-back → ECC read-modify-write (one ECC read + one ECC
//!   write).
//! * ECC atoms live in a reserved region at the top of memory (the default
//!   firmware layout), so ECC fetches routinely conflict with data rows.
//!
//! This models inline ECC with no on-chip ECC caching at all — the
//! motivation baseline of the evaluation (experiment F1/F2).

use crate::inline_map::InlineMap;
use ccraft_ecc::layout::EccPlacement;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::protection::{
    ChannelScheme, FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan,
};
use ccraft_sim::types::{Cycle, LogicalAtom, PhysLoc};

/// The naive inline-ECC scheme.
#[derive(Debug)]
pub struct InlineNaive {
    map: InlineMap,
    stats: ProtectionStats,
}

impl InlineNaive {
    /// Builds the scheme for a machine, with one ECC atom per `coverage`
    /// data atoms (8 → 12.5 % redundancy).
    pub fn new(cfg: &GpuConfig, coverage: u32) -> Self {
        InlineNaive {
            map: InlineMap::new(cfg, EccPlacement::ReservedRegion, coverage),
            stats: ProtectionStats::default(),
        }
    }
}

impl ProtectionScheme for InlineNaive {
    fn name(&self) -> &str {
        "inline-naive"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        self.map.map(logical)
    }

    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        self.stats.ecc_demand_fetches += 1;
        FillPlan {
            ecc_fetches: vec![self.map.ecc_atom(loc)],
        }
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        self.stats.rmw_writebacks += 1;
        let ecc = self.map.ecc_atom(loc);
        WritebackPlan {
            ecc_reads: vec![ecc],
            ecc_writes: vec![ecc],
        }
    }

    fn drain_ecc_writes(&mut self, _channel: u16, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn flush(&mut self) {}

    fn is_drained(&self) -> bool {
        true
    }

    fn fault_codec(&self) -> ccraft_sim::faults::ProtectionCodec {
        // SEC-DED(72,64) per inline codeword.
        ccraft_sim::faults::ProtectionCodec::SecDed64
    }

    fn stats(&self) -> ProtectionStats {
        self.stats
    }

    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        // No buffered state: each channel object carries only a `Copy` of
        // the map and fresh counters, merged back into `self.stats` at
        // attach so totals match a single-threaded run exactly.
        Some(
            (0..self.map.channels())
                .map(|_| {
                    Box::new(InlineNaiveChannel {
                        map: self.map,
                        stats: ProtectionStats::default(),
                    }) as Box<dyn ChannelScheme>
                })
                .collect(),
        )
    }

    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        debug_assert_eq!(channels.len(), self.map.channels() as usize);
        for c in channels {
            match c.into_any().downcast::<InlineNaiveChannel>() {
                Ok(c) => self.stats.merge(&c.stats),
                // The boxes a scheme re-attaches are the ones its own
                // detach produced; anything else is an engine bug.
                Err(_) => unreachable!("foreign channel object at attach"),
            }
        }
    }
}

/// The per-channel face of [`InlineNaive`]: the same stateless fetch
/// policy, counting into channel-local stats.
#[derive(Debug)]
struct InlineNaiveChannel {
    map: InlineMap,
    stats: ProtectionStats,
}

impl ChannelScheme for InlineNaiveChannel {
    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        self.stats.ecc_demand_fetches += 1;
        FillPlan {
            ecc_fetches: vec![self.map.ecc_atom(loc)],
        }
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        self.stats.rmw_writebacks += 1;
        let ecc = self.map.ecc_atom(loc);
        WritebackPlan {
            ecc_reads: vec![ecc],
            ecc_writes: vec![ecc],
        }
    }

    fn drain_ecc_writes(&mut self, _now: Cycle, _budget: usize) -> Vec<u64> {
        Vec::new()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fill_fetches_ecc() {
        let cfg = GpuConfig::tiny();
        let mut s = InlineNaive::new(&cfg, 8);
        let loc = s.map(LogicalAtom(100));
        let plan = s.demand_fill(loc, 0);
        assert_eq!(plan.ecc_fetches.len(), 1);
        assert_ne!(plan.ecc_fetches[0], loc.atom);
        assert_eq!(s.stats().ecc_demand_fetches, 1);
        // Repeated fill of the same atom fetches again (no caching).
        let plan2 = s.demand_fill(loc, 1);
        assert_eq!(plan2.ecc_fetches, plan.ecc_fetches);
        assert_eq!(s.stats().ecc_demand_fetches, 2);
    }

    #[test]
    fn every_writeback_is_rmw() {
        let cfg = GpuConfig::tiny();
        let mut s = InlineNaive::new(&cfg, 8);
        let loc = s.map(LogicalAtom(7));
        let mut resident = |_: u64| true; // residency is irrelevant to naive
        let plan = s.writeback(loc, 0, &mut resident);
        assert_eq!(plan.ecc_reads.len(), 1);
        assert_eq!(plan.ecc_writes, plan.ecc_reads);
        assert_eq!(s.stats().rmw_writebacks, 1);
    }

    #[test]
    fn neighbours_share_an_ecc_atom() {
        let cfg = GpuConfig::tiny();
        let mut s = InlineNaive::new(&cfg, 8);
        // Atoms 0..8 are one interleave block on channel 0: one ECC group.
        let a = s.map(LogicalAtom(0));
        let b = s.map(LogicalAtom(7));
        assert_eq!(a.channel, b.channel);
        let ea = s.demand_fill(a, 0).ecc_fetches[0];
        let eb = s.demand_fill(b, 0).ecc_fetches[0];
        assert_eq!(ea, eb);
    }

    #[test]
    fn trivially_drained() {
        let cfg = GpuConfig::tiny();
        let mut s = InlineNaive::new(&cfg, 8);
        assert!(s.is_drained());
        s.flush();
        assert!(s.drain_ecc_writes(0, 0, 8).is_empty());
        assert_eq!(s.l2_tax_bytes(), 0);
    }
}
