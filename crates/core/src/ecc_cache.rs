//! The industry-practice baseline: a small dedicated ECC cache in each
//! memory controller.
//!
//! Real inline-ECC GPUs attach a modest SRAM cache of ECC atoms to each
//! memory partition. Demand fills whose ECC atom is resident (or already
//! being fetched) skip the DRAM ECC read; write-backs whose ECC atom is
//! resident update it in place (write-allocate-on-RMW), and dirty entries
//! are written to DRAM on eviction. The structure is *dedicated* SRAM — it
//! does not tax the L2 — but its reach is limited by its size and it has no
//! visibility into what the L2 already holds, which is exactly the gap
//! CacheCraft exploits.

use crate::inline_map::{ChannelStore, InlineMap, StoreProbe};
use ccraft_ecc::layout::EccPlacement;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::protection::{
    ChannelScheme, FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan,
};
use ccraft_sim::types::{Cycle, LogicalAtom, PhysLoc};

/// Default dedicated capacity per memory controller (16 KiB, as in the
/// evaluation's T1 configuration).
pub const DEFAULT_CAPACITY_PER_MC: u64 = 16 << 10;

/// One memory controller's dedicated ECC cache plus channel-local
/// counters. The scheme logic lives here — [`EccCache`] routes each
/// channel-scoped call to the owning channel, and sharded execution
/// detaches these objects for lock-free shard ownership.
#[derive(Debug)]
struct EccCacheChannel {
    map: InlineMap,
    store: ChannelStore,
    stats: ProtectionStats,
}

impl ChannelScheme for EccCacheChannel {
    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        let ecc = self.map.ecc_atom(loc);
        match self.store.probe_fill(ecc) {
            StoreProbe::Hit | StoreProbe::InFlight => {
                self.stats.ecc_fetch_hits += 1;
                FillPlan::none()
            }
            StoreProbe::Miss => {
                self.stats.ecc_demand_fetches += 1;
                FillPlan {
                    ecc_fetches: vec![ecc],
                }
            }
        }
    }

    fn ecc_arrived(&mut self, loc: PhysLoc, _now: Cycle) {
        self.store.install(loc.atom, false);
    }

    fn writeback(
        &mut self,
        loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        let ecc = self.map.ecc_atom(loc);
        if self.store.absorb_write(ecc) {
            self.stats.absorbed_writebacks += 1;
            return WritebackPlan::none();
        }
        // RMW with write-allocation: read the ECC atom now, keep the
        // merged result resident and dirty; DRAM sees the write when the
        // entry is evicted or flushed.
        self.stats.rmw_writebacks += 1;
        self.store.install(ecc, true);
        WritebackPlan {
            ecc_reads: vec![ecc],
            ecc_writes: Vec::new(),
        }
    }

    fn drain_ecc_writes(&mut self, _now: Cycle, budget: usize) -> Vec<u64> {
        let drained = self.store.drain_writes(budget);
        self.stats.ecc_structure_writebacks += drained.len() as u64;
        drained
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// The dedicated-ECC-cache scheme.
#[derive(Debug)]
pub struct EccCache {
    map: InlineMap,
    /// One dedicated cache per channel; empty while detached for sharding.
    channels: Vec<EccCacheChannel>,
}

impl EccCache {
    /// Builds the scheme with `capacity_per_mc` bytes of dedicated ECC
    /// cache per channel.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not form a valid 8-way cache geometry.
    pub fn new(cfg: &GpuConfig, coverage: u32, capacity_per_mc: u64) -> Self {
        let map = InlineMap::new(cfg, EccPlacement::ReservedRegion, coverage);
        EccCache {
            map,
            channels: (0..cfg.mem.channels)
                .map(|_| EccCacheChannel {
                    map,
                    store: ChannelStore::new(capacity_per_mc, 8),
                    stats: ProtectionStats::default(),
                })
                .collect(),
        }
    }

    /// Builds the scheme with the default 16 KiB/MC capacity.
    pub fn with_default_capacity(cfg: &GpuConfig, coverage: u32) -> Self {
        Self::new(cfg, coverage, DEFAULT_CAPACITY_PER_MC)
    }

    /// Dedicated SRAM bytes per channel.
    pub fn capacity_per_mc(&self) -> u64 {
        self.channels[0].store.capacity_bytes()
    }
}

impl ProtectionScheme for EccCache {
    fn name(&self) -> &str {
        "ecc-cache"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        self.map.map(logical)
    }

    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan {
        self.channels[loc.channel as usize].demand_fill(loc, now)
    }

    fn ecc_arrived(&mut self, loc: PhysLoc, now: Cycle) {
        self.channels[loc.channel as usize].ecc_arrived(loc, now)
    }

    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        self.channels[loc.channel as usize].writeback(loc, now, resident)
    }

    fn drain_ecc_writes(&mut self, channel: u16, now: Cycle, budget: usize) -> Vec<u64> {
        ChannelScheme::drain_ecc_writes(&mut self.channels[channel as usize], now, budget)
    }

    fn flush(&mut self) {
        for ch in &mut self.channels {
            ch.store.flush();
        }
    }

    fn is_drained(&self) -> bool {
        self.channels.iter().all(|c| c.store.is_drained())
    }

    fn fault_codec(&self) -> ccraft_sim::faults::ProtectionCodec {
        // Same SEC-DED storage code as inline-naive; only fetch policy differs.
        ccraft_sim::faults::ProtectionCodec::SecDed64
    }

    fn stats(&self) -> ProtectionStats {
        // Counters sum across channels (order-independent merge), matching
        // the single-struct aggregate a pre-split EccCache reported.
        let mut total = ProtectionStats::default();
        for c in &self.channels {
            total.merge(&c.stats);
        }
        total
    }

    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        Some(
            std::mem::take(&mut self.channels)
                .into_iter()
                .map(|c| Box::new(c) as Box<dyn ChannelScheme>)
                .collect(),
        )
    }

    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        debug_assert!(self.channels.is_empty(), "attach over live channels");
        self.channels = channels
            .into_iter()
            .map(|c| match c.into_any().downcast::<EccCacheChannel>() {
                Ok(c) => *c,
                // The boxes a scheme re-attaches are the ones its own
                // detach produced; anything else is an engine bug.
                Err(_) => unreachable!("foreign channel object at attach"),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> EccCache {
        EccCache::with_default_capacity(&GpuConfig::tiny(), 8)
    }

    #[test]
    fn first_fill_fetches_second_hits() {
        let mut s = scheme();
        let loc = s.map(LogicalAtom(0));
        assert_eq!(s.demand_fill(loc, 0).ecc_fetches.len(), 1);
        // Before arrival: a sibling fill merges with the in-flight fetch.
        let sib = s.map(LogicalAtom(1));
        assert!(s.demand_fill(sib, 1).ecc_fetches.is_empty());
        // After arrival: resident.
        let ecc = s.map.ecc_atom(loc);
        s.ecc_arrived(PhysLoc::new(loc.channel, ecc), 2);
        assert!(s.demand_fill(loc, 3).ecc_fetches.is_empty());
        let st = s.stats();
        assert_eq!(st.ecc_demand_fetches, 1);
        assert_eq!(st.ecc_fetch_hits, 2);
    }

    #[test]
    fn writeback_hits_are_absorbed() {
        let mut s = scheme();
        let loc = s.map(LogicalAtom(0));
        let ecc = s.map.ecc_atom(loc);
        s.ecc_arrived(PhysLoc::new(loc.channel, ecc), 0); // make resident
        let mut res = |_: u64| false;
        let plan = s.writeback(loc, 1, &mut res);
        assert_eq!(plan, WritebackPlan::none());
        assert_eq!(s.stats().absorbed_writebacks, 1);
        // The dirty entry is written out on flush.
        s.flush();
        let w = s.drain_ecc_writes(loc.channel, 2, 8);
        assert_eq!(w, vec![ecc]);
        assert!(s.is_drained());
    }

    #[test]
    fn writeback_miss_reads_and_allocates() {
        let mut s = scheme();
        let loc = s.map(LogicalAtom(0));
        let mut res = |_: u64| false;
        let plan = s.writeback(loc, 0, &mut res);
        assert_eq!(plan.ecc_reads.len(), 1);
        assert!(plan.ecc_writes.is_empty(), "write deferred to eviction");
        assert_eq!(s.stats().rmw_writebacks, 1);
        // Now resident: a second write-back to the same group is free.
        let sib = s.map(LogicalAtom(2));
        let plan2 = s.writeback(sib, 1, &mut res);
        assert_eq!(plan2, WritebackPlan::none());
    }

    #[test]
    fn capacity_bounds_reach() {
        // A stream of distinct ECC groups larger than the cache causes
        // repeated fetches.
        let cfg = GpuConfig::tiny();
        let mut s = EccCache::new(&cfg, 8, 1024); // 32 ECC atoms per channel
        let mut fetches = 0;
        // Interleave blocks are 8 atoms; block k of channel 0 is logical
        // 2k blocks (2 channels) -> logical atoms 16k*... use map directly.
        for i in 0..20_000u64 {
            let loc = s.map(LogicalAtom(i * 8));
            if loc.channel == 0 {
                fetches += s.demand_fill(loc, i).ecc_fetches.len();
                let ecc = s.map.ecc_atom(loc);
                s.ecc_arrived(PhysLoc::new(loc.channel, ecc), i);
            }
        }
        // Every group is new: all must fetch.
        assert!(fetches >= 9_000, "only {fetches} fetches");
        assert_eq!(s.l2_tax_bytes(), 0, "dedicated SRAM, no L2 tax");
    }
}
