//! CacheCraft: reconstructed caching for GPU memory protection.
//!
//! Our reconstruction of the MICRO'24 design (see DESIGN.md §1 for the
//! provenance caveat) combines three mechanisms:
//!
//! * **C1 — ECC co-location.** The inline layout carves ECC atoms out of
//!   the tail of each DRAM row instead of a distant reserved region, so
//!   the ECC fetches that do reach DRAM are row-buffer hits alongside
//!   their data.
//! * **C2 — Reconstructed ECC residency (fragment store).** A slice-local
//!   store of ECC atoms *repurposed from L2 capacity* (the simulator
//!   shrinks the L2 by the configured budget). Because it is an order of
//!   magnitude larger than a dedicated MC-side ECC cache and is filled on
//!   every demand miss, one installed ECC atom serves the misses of all
//!   its 8–16 covered neighbours.
//! * **C3 — On-chip codeword reconstruction + write coalescing.** When a
//!   dirty atom is written back and *all* sibling atoms of its ECC group
//!   are on chip (still resident in L2, or leaving in the same eviction),
//!   the ECC atom is re-encoded from on-chip data: the read half of the
//!   RMW disappears. Outgoing ECC writes are merged in a small per-channel
//!   coalescing buffer so k dirty atoms under one ECC atom cost one DRAM
//!   write.
//!
//! Every mechanism can be disabled independently ([`CacheCraftConfig`]) for
//! the ablation study (experiment F7).

use crate::inline_map::{ChannelStore, InlineMap, StoreProbe};
use ccraft_ecc::layout::EccPlacement;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::fxmap::FxHashMap;
use ccraft_sim::protection::{
    ChannelScheme, FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan,
};
use ccraft_sim::types::{Cycle, LogicalAtom, PhysLoc};
use std::collections::VecDeque;

/// Configuration of the CacheCraft mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCraftConfig {
    /// Data atoms per ECC atom (8 → 12.5 % redundancy).
    pub coverage: u32,
    /// C1: co-locate ECC atoms with their data rows.
    pub colocate: bool,
    /// C2: enable the repurposed-L2 fragment store.
    pub fragment_store: bool,
    /// C2: fragment-store budget per L2 slice, in bytes (taxed from L2).
    pub fragment_bytes_per_slice: u64,
    /// C3: enable codeword reconstruction and write coalescing.
    pub reconstruct: bool,
    /// C3: coalescing-buffer capacity per channel (ECC atoms).
    pub coalesce_entries: usize,
    /// C3: age (cycles) after which a buffered ECC write is emitted.
    pub coalesce_age: Cycle,
}

impl Default for CacheCraftConfig {
    fn default() -> Self {
        CacheCraftConfig {
            coverage: 8,
            colocate: true,
            fragment_store: true,
            fragment_bytes_per_slice: 64 << 10,
            reconstruct: true,
            coalesce_entries: 32,
            coalesce_age: 256,
        }
    }
}

impl CacheCraftConfig {
    /// The full design with all mechanisms enabled.
    pub fn full() -> Self {
        Self::default()
    }

    /// The full design with the fragment budget scaled to the machine:
    /// the default 64 KiB per slice, capped at 1/8 of the slice capacity
    /// (so tiny test machines keep a working L2).
    pub fn for_machine(gpu: &ccraft_sim::config::GpuConfig) -> Self {
        let cap = (gpu.l2.capacity_bytes / 8).max(1 << 10);
        CacheCraftConfig {
            fragment_bytes_per_slice: (64 << 10).min(cap),
            ..Self::default()
        }
    }

    /// C1 only (co-location; fills and write-backs otherwise naive).
    pub fn colocate_only() -> Self {
        CacheCraftConfig {
            fragment_store: false,
            reconstruct: false,
            ..Self::default()
        }
    }

    /// C2 only (fragment store over the reserved-region layout).
    pub fn fragments_only() -> Self {
        CacheCraftConfig {
            colocate: false,
            reconstruct: false,
            ..Self::default()
        }
    }

    /// C3 only (reconstruction + coalescing over the reserved-region
    /// layout, no fragment store).
    pub fn reconstruct_only() -> Self {
        CacheCraftConfig {
            colocate: false,
            fragment_store: false,
            ..Self::default()
        }
    }
}

/// Per-channel ECC write-coalescing buffer (C3).
#[derive(Debug, Default)]
struct CoalesceBuffer {
    /// FIFO of `(ecc_atom, due_cycle)`.
    queue: VecDeque<(u64, Cycle)>,
    /// Pending atoms mapped to the number of writes folded into their
    /// entry (1 = fresh entry, no merges yet).
    members: FxHashMap<u64, u64>,
}

impl CoalesceBuffer {
    /// Inserts or merges a pending ECC write. Returns `Some(depth)` — the
    /// entry's merge chain length — if merged into an existing entry,
    /// `None` if a fresh entry was created.
    fn push(&mut self, atom: u64, due: Cycle) -> Option<u64> {
        if let Some(count) = self.members.get_mut(&atom) {
            *count += 1;
            Some(*count)
        } else {
            self.members.insert(atom, 1);
            self.queue.push_back((atom, due));
            None
        }
    }

    /// Folds one more write into an already-pending entry, returning the
    /// new merge chain length.
    ///
    /// # Panics
    ///
    /// Panics if the atom is not pending; callers check
    /// [`contains`](Self::contains) first.
    // Documented invariant panic: callers check `contains` first.
    #[allow(clippy::expect_used)]
    fn merge_into(&mut self, atom: u64) -> u64 {
        let count = self
            .members
            .get_mut(&atom)
            .expect("caller checked membership");
        *count += 1;
        *count
    }

    fn contains(&self, atom: u64) -> bool {
        self.members.contains_key(&atom)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    /// Pops entries that are due at `now` or overflow `capacity`, up to
    /// `budget`.
    fn drain(&mut self, now: Cycle, capacity: usize, budget: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < budget {
            let Some(&(atom, due)) = self.queue.front() else {
                break;
            };
            if due <= now || self.queue.len() > capacity {
                self.queue.pop_front();
                self.members.remove(&atom);
                out.push(atom);
            } else {
                break;
            }
        }
        out
    }

    fn make_all_due(&mut self) {
        for entry in &mut self.queue {
            entry.1 = 0;
        }
    }

    /// Due cycle of the oldest pending entry, if any. Dues are stamped
    /// monotonically (`now + coalesce_age` with a constant age), so the
    /// FIFO front is the minimum.
    fn next_due(&self) -> Option<Cycle> {
        self.queue.front().map(|&(_, due)| due)
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// One channel's worth of CacheCraft state: the coalescing buffer, the
/// channel's fragment-store slice, and channel-local counters. The scheme
/// logic lives here — [`CacheCraft`] routes every channel-scoped call to
/// the owning channel, and sharded execution detaches these objects so
/// shard workers tick them without synchronization. `cfg` and `map` are
/// `Copy` replicas, so detaching moves no shared state.
#[derive(Debug)]
struct CacheCraftChannel {
    cfg: CacheCraftConfig,
    map: InlineMap,
    coalesce: CoalesceBuffer,
    store: Option<ChannelStore>,
    stats: ProtectionStats,
}

impl CacheCraftChannel {
    fn new(cfg: CacheCraftConfig, map: InlineMap) -> Self {
        CacheCraftChannel {
            cfg,
            map,
            coalesce: CoalesceBuffer::default(),
            store: cfg
                .fragment_store
                .then(|| ChannelStore::new(cfg.fragment_bytes_per_slice, 8)),
            stats: ProtectionStats::default(),
        }
    }

    /// Queues an outgoing ECC write, via the coalescing buffer when C3 is
    /// enabled. Returns `None` when the write was buffered or merged;
    /// `Some(atom)` when it must be issued immediately.
    fn queue_ecc_write(&mut self, ecc: u64, now: Cycle) -> Option<u64> {
        if self.cfg.reconstruct {
            match self.coalesce.push(ecc, now + self.cfg.coalesce_age) {
                Some(depth) => {
                    self.stats.coalesced_ecc_writes += 1;
                    self.stats.coalesce_max_merge_depth =
                        self.stats.coalesce_max_merge_depth.max(depth);
                }
                None => {
                    self.stats.coalesce_peak_occupancy = self
                        .stats
                        .coalesce_peak_occupancy
                        .max(self.coalesce.len() as u64);
                }
            }
            None
        } else {
            Some(ecc)
        }
    }

    fn flush(&mut self) {
        self.coalesce.make_all_due();
        if let Some(store) = &mut self.store {
            store.flush();
        }
    }

    fn is_drained(&self) -> bool {
        self.coalesce.is_empty() && self.store.as_ref().is_none_or(|s| s.is_drained())
    }
}

impl ChannelScheme for CacheCraftChannel {
    fn demand_fill(&mut self, loc: PhysLoc, _now: Cycle) -> FillPlan {
        let ecc = self.map.ecc_atom(loc);
        // A pending coalesced write holds the freshest ECC on chip.
        if self.cfg.reconstruct && self.coalesce.contains(ecc) {
            self.stats.ecc_fetch_hits += 1;
            return FillPlan::none();
        }
        if let Some(store) = &mut self.store {
            match store.probe_fill(ecc) {
                probe @ (StoreProbe::Hit | StoreProbe::InFlight) => {
                    self.stats.ecc_fetch_hits += 1;
                    if probe == StoreProbe::Hit {
                        self.stats.fragment_store_hits += 1;
                    }
                    FillPlan::none()
                }
                StoreProbe::Miss => {
                    self.stats.ecc_demand_fetches += 1;
                    FillPlan {
                        ecc_fetches: vec![ecc],
                    }
                }
            }
        } else {
            self.stats.ecc_demand_fetches += 1;
            FillPlan {
                ecc_fetches: vec![ecc],
            }
        }
    }

    fn ecc_arrived(&mut self, loc: PhysLoc, _now: Cycle) {
        if let Some(store) = &mut self.store {
            store.install(loc.atom, false);
        }
    }

    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        let ecc = self.map.ecc_atom(loc);
        // 1. Fragment-store hit: merge on chip, write on eviction.
        if let Some(store) = &mut self.store {
            if store.absorb_write(ecc) {
                self.stats.absorbed_writebacks += 1;
                return WritebackPlan::none();
            }
        }
        // 2. Pending coalesced write to the same ECC atom: merge.
        if self.cfg.reconstruct && self.coalesce.contains(ecc) {
            let depth = self.coalesce.merge_into(ecc);
            self.stats.coalesced_ecc_writes += 1;
            self.stats.coalesce_max_merge_depth = self.stats.coalesce_max_merge_depth.max(depth);
            self.stats.absorbed_writebacks += 1;
            return WritebackPlan::none();
        }
        // 3. Reconstruction: all siblings on chip → re-encode, no RMW read.
        if self.cfg.reconstruct {
            let (first, count) = self.map.ecc_group(loc);
            if (first..first + count).all(resident) {
                self.stats.reconstructed_writebacks += 1;
                let immediate = self.queue_ecc_write(ecc, now);
                return WritebackPlan {
                    ecc_reads: Vec::new(),
                    ecc_writes: immediate.into_iter().collect(),
                };
            }
        }
        // 4. Fall back to a read-modify-write.
        self.stats.rmw_writebacks += 1;
        if let Some(store) = &mut self.store {
            // Write-allocate the merged result in the fragment store.
            store.install(ecc, true);
            WritebackPlan {
                ecc_reads: vec![ecc],
                ecc_writes: Vec::new(),
            }
        } else {
            let immediate = self.queue_ecc_write(ecc, now);
            WritebackPlan {
                ecc_reads: vec![ecc],
                ecc_writes: immediate.into_iter().collect(),
            }
        }
    }

    fn drain_ecc_writes(&mut self, now: Cycle, budget: usize) -> Vec<u64> {
        let mut out = self.coalesce.drain(now, self.cfg.coalesce_entries, budget);
        if out.len() < budget {
            if let Some(store) = &mut self.store {
                out.extend(store.drain_writes(budget - out.len()));
            }
        }
        self.stats.ecc_structure_writebacks += out.len() as u64;
        out
    }

    fn next_timed_event(&self) -> Option<Cycle> {
        // The coalesce buffer is the channel's only age-triggered state:
        // an entry that yields nothing today drains by itself once its
        // due cycle passes, so idle fast-forwards must stop there. (The
        // fragment store drains purely on demand/capacity and needs no
        // event.) After `flush` all dues are 0, which reads as "busy now"
        // and correctly pins the end-of-kernel drain to real cycles.
        self.coalesce.next_due()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// The CacheCraft protection scheme.
#[derive(Debug)]
pub struct CacheCraft {
    cfg: CacheCraftConfig,
    map: InlineMap,
    /// One state block per channel; empty while detached for sharding.
    channels: Vec<CacheCraftChannel>,
}

impl CacheCraft {
    /// Builds CacheCraft for a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent with the machine
    /// geometry (e.g. the fragment budget does not form a valid cache, or
    /// the row size cannot host the carve-out).
    pub fn new(gpu: &GpuConfig, cfg: CacheCraftConfig) -> Self {
        let placement = if cfg.colocate {
            EccPlacement::RowColocated {
                row_atoms: gpu.mem.row_atoms() as u32,
            }
        } else {
            EccPlacement::ReservedRegion
        };
        let map = InlineMap::new(gpu, placement, cfg.coverage);
        CacheCraft {
            cfg,
            map,
            channels: (0..gpu.mem.channels)
                .map(|_| CacheCraftChannel::new(cfg, map))
                .collect(),
        }
    }

    /// Builds the full design with default parameters.
    pub fn full(gpu: &GpuConfig) -> Self {
        Self::new(gpu, CacheCraftConfig::full())
    }

    /// The active configuration.
    pub fn config(&self) -> CacheCraftConfig {
        self.cfg
    }
}

impl ProtectionScheme for CacheCraft {
    fn name(&self) -> &str {
        "cachecraft"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        self.map.map(logical)
    }

    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan {
        self.channels[loc.channel as usize].demand_fill(loc, now)
    }

    fn ecc_arrived(&mut self, loc: PhysLoc, now: Cycle) {
        self.channels[loc.channel as usize].ecc_arrived(loc, now)
    }

    fn writeback(
        &mut self,
        loc: PhysLoc,
        now: Cycle,
        resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        self.channels[loc.channel as usize].writeback(loc, now, resident)
    }

    fn drain_ecc_writes(&mut self, channel: u16, now: Cycle, budget: usize) -> Vec<u64> {
        ChannelScheme::drain_ecc_writes(&mut self.channels[channel as usize], now, budget)
    }

    fn flush(&mut self) {
        for ch in &mut self.channels {
            ch.flush();
        }
    }

    fn is_drained(&self) -> bool {
        self.channels.iter().all(|c| c.is_drained())
    }

    fn next_timed_event(&self) -> Option<Cycle> {
        self.channels
            .iter()
            .filter_map(|c| c.next_timed_event())
            .min()
    }

    fn l2_tax_bytes(&self) -> u64 {
        if self.cfg.fragment_store {
            self.cfg.fragment_bytes_per_slice
        } else {
            0
        }
    }

    fn fault_codec(&self) -> ccraft_sim::faults::ProtectionCodec {
        // Reconstructed codewords use the symbol-correcting RS(36,32) code.
        ccraft_sim::faults::ProtectionCodec::Rs36_32
    }

    fn stats(&self) -> ProtectionStats {
        // Counters sum and watermarks max across channels
        // (order-independent), reproducing the single-struct aggregate a
        // pre-split CacheCraft reported.
        let mut total = ProtectionStats::default();
        for c in &self.channels {
            total.merge(&c.stats);
        }
        total
    }

    fn detach_channels(&mut self) -> Option<Vec<Box<dyn ChannelScheme>>> {
        Some(
            std::mem::take(&mut self.channels)
                .into_iter()
                .map(|c| Box::new(c) as Box<dyn ChannelScheme>)
                .collect(),
        )
    }

    fn attach_channels(&mut self, channels: Vec<Box<dyn ChannelScheme>>) {
        debug_assert!(self.channels.is_empty(), "attach over live channels");
        self.channels = channels
            .into_iter()
            .map(|c| match c.into_any().downcast::<CacheCraftChannel>() {
                Ok(c) => *c,
                // Reaching this is an engine bookkeeping bug: the boxes a
                // scheme re-attaches are the ones its own detach produced.
                Err(_) => unreachable!("foreign channel object at attach"),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(cfg: CacheCraftConfig) -> CacheCraft {
        CacheCraft::new(&GpuConfig::tiny(), cfg)
    }

    #[test]
    fn colocation_keeps_ecc_in_row() {
        let gpu = GpuConfig::tiny();
        let s = CacheCraft::full(&gpu);
        let row_atoms = gpu.mem.row_atoms();
        for a in (0..50_000u64).step_by(61) {
            let loc = s.map(LogicalAtom(a));
            let ecc = s.map.ecc_atom(loc);
            assert_eq!(loc.atom / row_atoms, ecc / row_atoms);
        }
    }

    #[test]
    fn fragment_store_serves_neighbourhood() {
        let mut s = scheme(CacheCraftConfig::full());
        let loc = s.map(LogicalAtom(0));
        assert_eq!(s.demand_fill(loc, 0).ecc_fetches.len(), 1);
        let ecc = s.map.ecc_atom(loc);
        s.ecc_arrived(PhysLoc::new(loc.channel, ecc), 1);
        // All 7 siblings now fill without ECC traffic.
        for i in 1..8u64 {
            let sib = s.map(LogicalAtom(i));
            assert_eq!(sib.channel, loc.channel);
            assert!(s.demand_fill(sib, 2).ecc_fetches.is_empty(), "sibling {i}");
        }
        assert_eq!(s.stats().ecc_demand_fetches, 1);
        assert_eq!(s.stats().ecc_fetch_hits, 7);
    }

    #[test]
    fn reconstruction_eliminates_rmw_read() {
        let mut s = scheme(CacheCraftConfig::reconstruct_only());
        let loc = s.map(LogicalAtom(0));
        // All siblings resident -> reconstruct, no ECC read, write buffered.
        let mut all_resident = |_: u64| true;
        let plan = s.writeback(loc, 0, &mut all_resident);
        assert!(plan.ecc_reads.is_empty());
        assert!(plan.ecc_writes.is_empty(), "write goes through the buffer");
        assert_eq!(s.stats().reconstructed_writebacks, 1);
        assert!(!s.is_drained());
        // Sibling write-back coalesces into the same pending ECC write.
        let sib = s.map(LogicalAtom(1));
        let plan2 = s.writeback(sib, 1, &mut all_resident);
        assert_eq!(plan2, WritebackPlan::none());
        assert_eq!(s.stats().coalesced_ecc_writes, 1);
        // Drain after the age threshold: exactly one ECC write.
        let writes = s.drain_ecc_writes(loc.channel, 10_000, 8);
        assert_eq!(writes.len(), 1);
        assert!(s.is_drained());
    }

    #[test]
    fn partial_residency_falls_back_to_rmw() {
        let mut s = scheme(CacheCraftConfig::reconstruct_only());
        let loc = s.map(LogicalAtom(0));
        let mut none_resident = |_: u64| false;
        let plan = s.writeback(loc, 0, &mut none_resident);
        assert_eq!(plan.ecc_reads.len(), 1);
        assert_eq!(s.stats().rmw_writebacks, 1);
        assert_eq!(s.stats().reconstructed_writebacks, 0);
    }

    #[test]
    fn pending_write_serves_demand_fill() {
        let mut s = scheme(CacheCraftConfig::reconstruct_only());
        let loc = s.map(LogicalAtom(0));
        let mut all = |_: u64| true;
        let _ = s.writeback(loc, 0, &mut all); // buffers the ECC write
                                               // A demand fill of a sibling finds the ECC on chip.
        let sib = s.map(LogicalAtom(3));
        assert!(s.demand_fill(sib, 1).ecc_fetches.is_empty());
        assert_eq!(s.stats().ecc_fetch_hits, 1);
    }

    #[test]
    fn coalesce_age_controls_drain() {
        let cfg = CacheCraftConfig {
            coalesce_age: 100,
            ..CacheCraftConfig::reconstruct_only()
        };
        let mut s = scheme(cfg);
        let loc = s.map(LogicalAtom(0));
        let mut all = |_: u64| true;
        let _ = s.writeback(loc, 50, &mut all);
        assert!(
            s.drain_ecc_writes(loc.channel, 100, 8).is_empty(),
            "not due yet"
        );
        assert_eq!(s.drain_ecc_writes(loc.channel, 150, 8).len(), 1);
    }

    #[test]
    fn overflow_forces_early_drain() {
        let cfg = CacheCraftConfig {
            coalesce_entries: 4,
            coalesce_age: 1_000_000,
            ..CacheCraftConfig::reconstruct_only()
        };
        let mut s = scheme(cfg);
        let mut all = |_: u64| true;
        // 6 distinct ECC groups on channel 0: logical blocks are
        // interleaved ch0, ch1, ch0, ... -> every other 8-atom block.
        for k in 0..6u64 {
            let loc = s.map(LogicalAtom(k * 16));
            assert_eq!(loc.channel, 0);
            let _ = s.writeback(loc, k, &mut all);
        }
        let drained = s.drain_ecc_writes(0, 10, 8);
        assert_eq!(drained.len(), 2, "entries beyond capacity must spill");
    }

    #[test]
    fn merge_depth_and_peak_occupancy_are_tracked() {
        let mut s = scheme(CacheCraftConfig::reconstruct_only());
        let mut all = |_: u64| true;
        // Three write-backs under one ECC atom: one entry, merge depth 3.
        for k in 0..3u64 {
            let loc = s.map(LogicalAtom(k));
            let _ = s.writeback(loc, k, &mut all);
        }
        // A second distinct ECC group on the same channel: occupancy 2.
        let other = s.map(LogicalAtom(16));
        assert_eq!(other.channel, s.map(LogicalAtom(0)).channel);
        let _ = s.writeback(other, 10, &mut all);
        let st = s.stats();
        assert_eq!(st.coalesce_max_merge_depth, 3);
        assert_eq!(st.coalesce_peak_occupancy, 2);
        assert_eq!(st.coalesced_ecc_writes, 2);
    }

    #[test]
    fn fragment_store_hits_counted_separately_from_inflight() {
        let mut s = scheme(CacheCraftConfig::fragments_only());
        let loc = s.map(LogicalAtom(0));
        // Miss registers the fetch as in flight.
        assert_eq!(s.demand_fill(loc, 0).ecc_fetches.len(), 1);
        // Sibling while in flight: a hit for traffic purposes, but not a
        // resident fragment-store hit.
        let sib = s.map(LogicalAtom(1));
        assert!(s.demand_fill(sib, 1).ecc_fetches.is_empty());
        assert_eq!(s.stats().fragment_store_hits, 0);
        // After arrival, further siblings are true store hits.
        let ecc = s.map.ecc_atom(loc);
        s.ecc_arrived(PhysLoc::new(loc.channel, ecc), 2);
        let sib2 = s.map(LogicalAtom(2));
        assert!(s.demand_fill(sib2, 3).ecc_fetches.is_empty());
        assert_eq!(s.stats().fragment_store_hits, 1);
        assert_eq!(s.stats().ecc_fetch_hits, 2);
    }

    #[test]
    fn flush_drains_everything() {
        let mut s = scheme(CacheCraftConfig::full());
        let loc = s.map(LogicalAtom(0));
        let mut all = |_: u64| true;
        let _ = s.writeback(loc, 0, &mut all);
        assert!(!s.is_drained());
        s.flush();
        let mut total = 0;
        for ch in 0..2 {
            total += s.drain_ecc_writes(ch, 1, 64).len();
        }
        assert_eq!(total, 1);
        assert!(s.is_drained());
    }

    #[test]
    fn ablation_flags_shape_behaviour() {
        // C1 only: fills always fetch; l2 untaxed.
        let mut c1 = scheme(CacheCraftConfig::colocate_only());
        let loc = c1.map(LogicalAtom(0));
        assert_eq!(c1.demand_fill(loc, 0).ecc_fetches.len(), 1);
        assert_eq!(c1.demand_fill(loc, 1).ecc_fetches.len(), 1);
        assert_eq!(c1.l2_tax_bytes(), 0);
        // C2 only: taxes L2, uses reserved region.
        let c2 = scheme(CacheCraftConfig::fragments_only());
        assert_eq!(c2.l2_tax_bytes(), 64 << 10);
        let gpu = GpuConfig::tiny();
        let row_atoms = gpu.mem.row_atoms();
        let loc = c2.map(LogicalAtom(0));
        let ecc = c2.map.ecc_atom(loc);
        assert_ne!(
            loc.atom / row_atoms,
            ecc / row_atoms,
            "reserved region: different row"
        );
        // Full: taxed and co-located.
        let full = scheme(CacheCraftConfig::full());
        assert_eq!(full.l2_tax_bytes(), 64 << 10);
    }

    #[test]
    fn naive_rmw_without_any_mechanism() {
        let cfg = CacheCraftConfig {
            colocate: false,
            fragment_store: false,
            reconstruct: false,
            ..CacheCraftConfig::default()
        };
        let mut s = scheme(cfg);
        let loc = s.map(LogicalAtom(0));
        let mut none = |_: u64| false;
        let plan = s.writeback(loc, 0, &mut none);
        assert_eq!(plan.ecc_reads.len(), 1);
        assert_eq!(plan.ecc_writes.len(), 1, "no buffer: immediate RMW write");
        assert!(s.is_drained());
    }
}
